#!/bin/sh
# Runs the analysis benchmarks and condenses Criterion's estimates into a
# single BENCH_analysis.json at the repo root: { "<bench id>": median_ns }.
# Covers every group in benches/analysis.rs, including the `reconstruction`
# and `extract_spans` (dense fast paths vs references) and `pipeline`
# (end-to-end simulate → reconstruct → calibrate → detect) groups, plus
# the `event_queue` hold-model bench (timing wheel vs reference heap), the
# `streaming_pipeline` bench (batch vs sharded online extraction), the
# `parallel_sim` bench (sequential reference vs population-sharded lockstep
# fleets across worker counts), the `capture_format/chunked_*` benches
# (FGBDCAP2 columnar write + 1/4-thread parallel read vs the flat FGBDCAP1
# baseline on the 200k-record fixture), and the `online_detect` bench
# (streaming per-record push at several live-window widths vs the batch
# detector over the same materialized capture), the `ps_integrator` bench
# (lane/cached-tournament PS hold + probe vs the heap reference, with a
# freeze-churn spill variant), the `simulate_hot_loop` bench
# (events/s of the end-to-end single-core simulate stage across baseline,
# DVFS, and serial-GC schedules), and the `capture_cursor` bench (lazy
# chunk cursor vs the batch FGBDCAP2 reader: full vs projected column
# decode, time-range chunk pruning, and the mmap-backed pass).
#
# If any run manifests exist under out/manifests/ (written by the
# fgbd-repro binaries, see crates/obsv), the newest one's per-stage wall
# times are folded in as "manifest:<run>/<span path>": total_ns keys, so
# one file tracks both microbenchmark medians and real-run stage costs.
#
#   scripts/bench.sh            # bench + summarize
#   scripts/bench.sh --no-run   # summarize an existing target/criterion
set -e
cd "$(dirname "$0")/.."

if [ "$1" != "--no-run" ]; then
    cargo bench -p fgbd-bench --bench analysis
    cargo bench -p fgbd-bench --bench event_queue
    cargo bench -p fgbd-bench --bench streaming
    cargo bench -p fgbd-bench --bench parallel_sim
    cargo bench -p fgbd-bench --bench online_detect
    cargo bench -p fgbd-bench --bench ps_integrator
    cargo bench -p fgbd-bench --bench simulate_hot_loop
    cargo bench -p fgbd-bench --bench capture_cursor
fi

python3 - <<'EOF'
import json
import os

# Criterion normally writes to the workspace target dir, but depending on
# CARGO_TARGET_DIR / cwd the tree can land under the bench package instead.
roots = [r for r in ("target/criterion", "crates/bench/target/criterion")
         if os.path.isdir(r)]
# Start from the committed summary so a partial run (--no-run with no
# criterion tree, or a filtered bench) refreshes rather than wipes it.
out = {}
if os.path.exists("BENCH_analysis.json"):
    with open("BENCH_analysis.json") as f:
        out = json.load(f)
for root in roots:
    for dirpath, _dirnames, filenames in os.walk(root):
        if "estimates.json" not in filenames:
            continue
        # Criterion writes <id>/new/estimates.json (and keeps a <id>/base
        # copy); only the fresh measurement is wanted.
        if os.path.basename(dirpath) != "new":
            continue
        bench_id = os.path.relpath(os.path.dirname(dirpath), root)
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        out[bench_id] = est["median"]["point_estimate"]

# Fold in the newest run manifest's per-stage wall times, if any exist.
# Stages come from the span tree (crates/obsv), so the keys mirror the
# collapsed-stack paths: "manifest:fig06/pipeline;detect". Every
# "manifest:" key from previous summaries is dropped first: those values
# are machine-local single-run timings, so carrying stale ones forward
# would mix runs and accumulate keys for renamed/removed stages.
manifest_dir = "out/manifests"
if os.path.isdir(manifest_dir):
    manifests = [os.path.join(manifest_dir, n)
                 for n in os.listdir(manifest_dir) if n.endswith(".json")]
    if manifests:
        newest = max(manifests, key=os.path.getmtime)
        with open(newest) as f:
            doc = json.load(f)
        out = {k: v for k, v in out.items() if not k.startswith("manifest:")}
        for stage in doc.get("stages", []):
            key = f"manifest:{doc.get('name', '?')}/{stage['path']}"
            out[key] = stage["total_ns"]
        # Peak RSS rides along with the stage times (crates/repro/harness
        # stamps vm_hwm_kib into every manifest on Linux) so memory
        # regressions in the zero-copy path show up next to time ones.
        if "vm_hwm_kib" in doc:
            out[f"manifest:{doc.get('name', '?')}/vm_hwm_kib"] = doc["vm_hwm_kib"]
        print(f"folded {len(doc.get('stages', []))} stages from {newest}")

with open("BENCH_analysis.json", "w") as f:
    json.dump(dict(sorted(out.items())), f, indent=2)
    f.write("\n")
print(f"wrote BENCH_analysis.json ({len(out)} benches)")
EOF
