#!/bin/sh
# Runs the analysis benchmarks and condenses Criterion's estimates into a
# single BENCH_analysis.json at the repo root: { "<bench id>": median_ns }.
# Covers every group in benches/analysis.rs, including the `reconstruction`
# (dense fast path vs reference) and `pipeline` (end-to-end simulate →
# reconstruct → calibrate → detect) groups.
#
#   scripts/bench.sh            # bench + summarize
#   scripts/bench.sh --no-run   # summarize an existing target/criterion
set -e
cd "$(dirname "$0")/.."

if [ "$1" != "--no-run" ]; then
    cargo bench -p fgbd-bench --bench analysis
fi

python3 - <<'EOF'
import json
import os

# Criterion normally writes to the workspace target dir, but depending on
# CARGO_TARGET_DIR / cwd the tree can land under the bench package instead.
roots = [r for r in ("target/criterion", "crates/bench/target/criterion")
         if os.path.isdir(r)]
out = {}
for root in roots:
    for dirpath, _dirnames, filenames in os.walk(root):
        if "estimates.json" not in filenames:
            continue
        # Criterion writes <id>/new/estimates.json (and keeps a <id>/base
        # copy); only the fresh measurement is wanted.
        if os.path.basename(dirpath) != "new":
            continue
        bench_id = os.path.relpath(os.path.dirname(dirpath), root)
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        out[bench_id] = est["median"]["point_estimate"]

with open("BENCH_analysis.json", "w") as f:
    json.dump(dict(sorted(out.items())), f, indent=2)
    f.write("\n")
print(f"wrote BENCH_analysis.json ({len(out)} benches)")
EOF
