//! Hierarchical span timers with thread-local collection.
//!
//! Every thread accumulates `(path → calls, nanoseconds)` into a private
//! map (no synchronization on the enter/exit path beyond one relaxed
//! atomic load for the enabled check). The map drains into a process
//! global when the thread exits, or explicitly via [`flush_thread`] —
//! worker pools call it before joining so [`snapshot`] sees a complete,
//! coherent tree.
//!
//! Fork/join integration: a worker pool captures the caller's
//! [`current_path`] once and each worker [`adopt_path`]s it, so spans
//! opened on worker threads root *under* the span that spawned the work
//! instead of floating at top level. Nested pools that re-enter inline on
//! the same worker thread need nothing special — their spans nest
//! naturally on that thread's stack.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregate statistics of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span closed.
    pub calls: u64,
    /// Total wall time across those calls, in nanoseconds.
    pub ns: u64,
}

type PathMap = HashMap<Vec<&'static str>, SpanStat>;

#[derive(Default)]
struct Collector {
    stack: Vec<&'static str>,
    stats: PathMap,
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Thread exit: hand the thread's accumulated tree to the global.
        merge_into_global(&mut self.stats);
    }
}

thread_local! {
    static TLS: RefCell<Collector> = RefCell::new(Collector::default());
}

fn global() -> &'static Mutex<PathMap> {
    static GLOBAL: OnceLock<Mutex<PathMap>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

fn merge_into_global(stats: &mut PathMap) {
    if stats.is_empty() {
        return;
    }
    let mut g = global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (path, stat) in stats.drain() {
        let e = g.entry(path).or_default();
        e.calls += stat.calls;
        e.ns += stat.ns;
    }
}

/// Closes its span when dropped. Inert (records nothing, pops nothing)
/// when telemetry was disabled at [`enter`] time.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens the span `name` under the current thread's span path and
/// returns a guard that closes it on drop. Prefer the [`crate::span!`]
/// macro for whole-scope spans.
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    TLS.with(|c| c.borrow_mut().stack.push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        TLS.with(|c| {
            let mut c = c.borrow_mut();
            let path = c.stack.clone();
            let stat = c.stats.entry(path).or_default();
            stat.calls += 1;
            stat.ns += ns;
            c.stack.pop();
        });
    }
}

/// The current thread's open span path, outermost first. Cheap: a clone
/// of a small `Vec<&'static str>`.
pub fn current_path() -> Vec<&'static str> {
    TLS.with(|c| c.borrow().stack.clone())
}

/// Roots this thread's future spans under `base` — called once by worker
/// threads with the spawning caller's [`current_path`], so worker span
/// trees merge under the span that forked the work. A no-op if the
/// thread already has open spans (adoption is only meaningful on a fresh
/// worker).
pub fn adopt_path(base: &[&'static str]) {
    TLS.with(|c| {
        let mut c = c.borrow_mut();
        if c.stack.is_empty() {
            c.stack.extend_from_slice(base);
        }
    });
}

/// Drains the current thread's span statistics into the process-global
/// aggregate. Worker threads call this after their last span closes and
/// before terminating — the thread-exit backstop (the TLS collector's
/// `Drop`) is not guaranteed to run before a joiner observes the thread
/// as finished, so an explicit flush is what makes the worker's spans
/// visible to the joiner's [`snapshot`]. The thread whose view you
/// snapshot is flushed automatically by [`snapshot`] itself.
pub fn flush_thread() {
    TLS.with(|c| merge_into_global(&mut c.borrow_mut().stats));
}

/// A point-in-time copy of the process-global span aggregate, keyed by
/// the `;`-joined span path (the flamegraph collapsed-stack convention).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `path → stat`, ordered by path.
    pub spans: BTreeMap<String, SpanStat>,
}

/// Takes a snapshot of every span closed so far (flushing the calling
/// thread first). Spans still held open on other threads are not
/// included until they close and those threads flush.
pub fn snapshot() -> SpanSnapshot {
    flush_thread();
    let g = global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    SpanSnapshot {
        spans: g.iter().map(|(k, v)| (k.join(";"), *v)).collect(),
    }
}

impl SpanSnapshot {
    /// The spans accumulated since `earlier` — per-run views over a
    /// process-cumulative aggregate. Paths with no new calls are dropped.
    pub fn delta(&self, earlier: &SpanSnapshot) -> SpanSnapshot {
        let spans = self
            .spans
            .iter()
            .filter_map(|(path, stat)| {
                let base = earlier.spans.get(path).copied().unwrap_or_default();
                let calls = stat.calls.saturating_sub(base.calls);
                if calls == 0 {
                    return None;
                }
                Some((
                    path.clone(),
                    SpanStat {
                        calls,
                        ns: stat.ns.saturating_sub(base.ns),
                    },
                ))
            })
            .collect();
        SpanSnapshot { spans }
    }

    /// Renders the snapshot in the flamegraph *collapsed stack* format:
    /// one `path microseconds` line per span path. The format expects
    /// *self* (exclusive) time per stack — the renderer sums children back
    /// into parent frame widths — so each path's value is its total minus
    /// its direct children's totals (clamped at zero: fork/join child time
    /// accumulated on several workers can exceed the parent's wall time).
    /// Feed the dump to any `flamegraph.pl`-compatible tool to visualize
    /// where a run spent its time.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.spans {
            let prefix = format!("{path};");
            let child_ns: u64 = self
                .spans
                .iter()
                .filter(|(p, _)| {
                    p.strip_prefix(&prefix)
                        .is_some_and(|rest| !rest.contains(';'))
                })
                .map(|(_, s)| s.ns)
                .sum();
            out.push_str(path);
            out.push(' ');
            out.push_str(&(stat.ns.saturating_sub(child_ns) / 1_000).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_aggregate_by_path() {
        let _g = crate::test_sync::hold();
        let before = snapshot();
        {
            let _a = enter("t_outer");
            for _ in 0..3 {
                let _b = enter("t_inner");
            }
        }
        let after = snapshot().delta(&before);
        assert_eq!(after.spans["t_outer"].calls, 1);
        assert_eq!(after.spans["t_outer;t_inner"].calls, 3);
        assert!(after.spans["t_outer"].ns >= after.spans["t_outer;t_inner"].ns);
    }

    #[test]
    fn disabled_spans_record_nothing_and_balance_the_stack() {
        let _g = crate::test_sync::hold();
        let before = snapshot();
        crate::set_enabled(false);
        {
            let _a = enter("t_disabled_outer");
            let _b = enter("t_disabled_inner");
        }
        crate::set_enabled(true);
        assert!(
            current_path().is_empty(),
            "disabled guards must not leak stack entries"
        );
        let after = snapshot().delta(&before);
        assert!(!after.spans.contains_key("t_disabled_outer"));
    }

    #[test]
    fn worker_thread_spans_merge_under_adopted_path() {
        let _g = crate::test_sync::hold();
        let before = snapshot();
        {
            let _root = enter("t_fork_root");
            let base = current_path();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let base = base.clone();
                    s.spawn(move || {
                        adopt_path(&base);
                        {
                            let _w = enter("t_fork_worker");
                        }
                        // After all spans close: the thread-exit backstop is
                        // not ordered before the scope join, so workers flush
                        // explicitly.
                        flush_thread();
                    });
                }
            });
        }
        let after = snapshot().delta(&before);
        assert_eq!(after.spans["t_fork_root;t_fork_worker"].calls, 2);
        assert!(!after.spans.contains_key("t_fork_worker"));
    }

    #[test]
    fn collapsed_dump_lists_paths_with_microseconds() {
        let _g = crate::test_sync::hold();
        let before = snapshot();
        {
            let _a = enter("t_collapsed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let after = snapshot().delta(&before);
        let dump = after.collapsed();
        let line = dump
            .lines()
            .find(|l| l.starts_with("t_collapsed "))
            .expect("span line present");
        let us: u64 = line.split(' ').nth(1).unwrap().parse().unwrap();
        assert!(us >= 1_000, "2 ms sleep should read >= 1000 us, got {us}");
    }

    #[test]
    fn collapsed_dump_emits_self_time_not_inclusive() {
        let mut spans = BTreeMap::new();
        spans.insert(
            "root".to_string(),
            SpanStat {
                calls: 1,
                ns: 10_000_000,
            },
        );
        spans.insert(
            "root;child".to_string(),
            SpanStat {
                calls: 2,
                ns: 6_000_000,
            },
        );
        // Fork/join: leaf time summed across workers exceeds the parent.
        spans.insert(
            "root;child;leaf".to_string(),
            SpanStat {
                calls: 4,
                ns: 9_000_000,
            },
        );
        let dump = SpanSnapshot { spans }.collapsed();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(
            lines,
            ["root 4000", "root;child 0", "root;child;leaf 9000"],
            "self time = total minus direct children, clamped at zero"
        );
    }
}
