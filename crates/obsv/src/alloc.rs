//! An opt-in counting global allocator — the steady-state allocation
//! audit technique, packaged.
//!
//! Install it per binary (typically an integration-test binary, since it
//! counts for the whole process):
//!
//! ```ignore
//! use fgbd_obsv::alloc::AllocGauge;
//!
//! #[global_allocator]
//! static GLOBAL: AllocGauge = AllocGauge::new();
//!
//! let before = GLOBAL.allocs();
//! // ... hot section ...
//! let during = GLOBAL.allocs() - before;
//! ```
//!
//! Two things are tracked, each one relaxed atomic RMW per operation:
//!
//! * allocation *events* (alloc, realloc, alloc_zeroed) — the
//!   steady-state "does this loop allocate?" audit;
//! * *live bytes* and their high-water mark — the bounded-memory audit
//!   the online monitor's flat-memory test uses ([`AllocGauge::peak_bytes`]
//!   relative to a [`AllocGauge::reset_peak`] baseline approximates VmHWM
//!   without reading `/proc`, and works on any platform).
//!
//! The gauge is always live once installed; it does not consult
//! [`crate::enabled`] because the counting itself is the opt-in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the [`System`] allocator.
#[derive(Debug)]
pub struct AllocGauge {
    allocs: AtomicU64,
    live: AtomicU64,
    peak: AtomicU64,
}

impl AllocGauge {
    /// A zeroed gauge, usable in `#[global_allocator]` position.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> AllocGauge {
        AllocGauge {
            allocs: AtomicU64::new(0),
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Total allocation events since process start.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`AllocGauge::live_bytes`] since process start
    /// (or the last [`AllocGauge::reset_peak`]).
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current live size, so a test
    /// can measure the peak of one section in isolation.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    #[inline]
    fn grow(&self, bytes: u64) {
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    #[inline]
    fn shrink(&self, bytes: u64) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

// SAFETY: defers to `System` for every operation; only adds counters.
unsafe impl GlobalAlloc for AllocGauge {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.grow(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.shrink(layout.size() as u64);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Success moves the block: the old size is gone, the new size
            // is live. (On failure the original block stays untouched.)
            self.shrink(layout.size() as u64);
            self.grow(new_size as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            self.grow(layout.size() as u64);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_counts_through_the_global_alloc_interface() {
        // Not installed as the global allocator here; exercise the trait
        // directly so the test stays hermetic.
        let gauge = AllocGauge::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = gauge.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(gauge.live_bytes(), 64);
            let p = gauge.realloc(p, layout, 128);
            assert!(!p.is_null());
            assert_eq!(gauge.live_bytes(), 128);
            gauge.dealloc(p, Layout::from_size_align(128, 8).unwrap());
            let q = gauge.alloc_zeroed(layout);
            assert!(!q.is_null());
            gauge.dealloc(q, layout);
        }
        assert_eq!(gauge.allocs(), 3);
        assert_eq!(gauge.live_bytes(), 0);
        // Peak saw the 128-byte realloc high point and survives the frees…
        assert_eq!(gauge.peak_bytes(), 128);
        // …until reset re-anchors it at the (now zero) live size.
        gauge.reset_peak();
        assert_eq!(gauge.peak_bytes(), 0);
    }
}
