//! An opt-in counting global allocator — the steady-state allocation
//! audit technique, packaged.
//!
//! Install it per binary (typically an integration-test binary, since it
//! counts for the whole process):
//!
//! ```ignore
//! use fgbd_obsv::alloc::AllocGauge;
//!
//! #[global_allocator]
//! static GLOBAL: AllocGauge = AllocGauge::new();
//!
//! let before = GLOBAL.allocs();
//! // ... hot section ...
//! let during = GLOBAL.allocs() - before;
//! ```
//!
//! Only allocation *events* are counted (alloc, realloc, alloc_zeroed) —
//! one relaxed `fetch_add` each; deallocation is passthrough. The gauge
//! is always live once installed; it does not consult [`crate::enabled`]
//! because the counting itself is the opt-in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the [`System`] allocator.
#[derive(Debug)]
pub struct AllocGauge {
    allocs: AtomicU64,
}

impl AllocGauge {
    /// A zeroed gauge, usable in `#[global_allocator]` position.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> AllocGauge {
        AllocGauge {
            allocs: AtomicU64::new(0),
        }
    }

    /// Total allocation events since process start.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }
}

// SAFETY: defers to `System` for every operation; only adds a counter.
unsafe impl GlobalAlloc for AllocGauge {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_counts_through_the_global_alloc_interface() {
        // Not installed as the global allocator here; exercise the trait
        // directly so the test stays hermetic.
        let gauge = AllocGauge::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = gauge.alloc(layout);
            assert!(!p.is_null());
            let p = gauge.realloc(p, layout, 128);
            assert!(!p.is_null());
            gauge.dealloc(p, Layout::from_size_align(128, 8).unwrap());
            let q = gauge.alloc_zeroed(layout);
            assert!(!q.is_null());
            gauge.dealloc(q, layout);
        }
        assert_eq!(gauge.allocs(), 3);
    }
}
