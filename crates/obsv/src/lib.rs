#![warn(missing_docs)]

//! # fgbd-obsv — zero-dependency observability for the fgbd workspace
//!
//! The paper's thesis is that coarse monitoring hides what matters; this
//! crate applies the same medicine to the reproduction pipeline itself.
//! It provides always-on, low-overhead self-telemetry with **no external
//! dependencies** (std only), so the workspace stays offline-verifiable:
//!
//! * [`span!`] — hierarchical wall-time span timers with thread-local
//!   collection. Spans opened on [`par_map`]-style worker threads merge
//!   into the caller's tree via [`span::adopt_path`] /
//!   [`span::flush_thread`].
//! * [`counter!`] / [`histogram!`] / [`gauge!`] — monotonic counters,
//!   fixed-bucket log2 histograms, and last-value gauges, registered
//!   lazily and cached per call site.
//! * [`jsonl::JsonlWriter`] — flushed-per-line JSON event files (the
//!   live monitor's heartbeat and verdict streams).
//! * [`alloc::AllocGauge`] — an opt-in counting `#[global_allocator]`
//!   wrapper (the technique from the steady-state allocation tests).
//! * [`manifest::RunManifest`] — one structured JSON document per run
//!   (config, per-stage wall time, counter/histogram snapshots, artifact
//!   paths) plus a Prometheus-style text exposition and a
//!   flamegraph-compatible collapsed-stack dump.
//! * [`log!`] — a uniformly prefixed, machine-parseable stdout sink with
//!   a quiet mode.
//!
//! ## Overhead contract
//!
//! Every probe is guarded by [`enabled`], a single relaxed atomic load.
//! Building with the `disabled` cargo feature turns [`enabled`] into
//! `const false`, compiling the probes out entirely. Hot loops (the DES
//! event loop, the PS integrator) never touch an atomic per event: they
//! accumulate plain integers locally and flush one delta per run.
//!
//! [`par_map`]: span::adopt_path

pub mod alloc;
pub mod json;
pub mod jsonl;
pub mod manifest;
pub mod metrics;
pub mod sink;
pub mod span;

#[cfg(not(feature = "disabled"))]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicBool as QuietBool, Ordering};

#[cfg(not(feature = "disabled"))]
static ENABLED: AtomicBool = AtomicBool::new(true);
static QUIET: QuietBool = QuietBool::new(false);

/// `true` while telemetry collection is on. The runtime default is *on*;
/// flip it with [`set_enabled`] or the `FGBD_OBSV=0` environment variable
/// (via [`init_from_env`]). With the `disabled` cargo feature this is
/// `const false` and every probe compiles out.
#[cfg(not(feature = "disabled"))]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Compile-time-off variant: always `false` (`disabled` feature).
#[cfg(feature = "disabled")]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Turns telemetry collection on or off at runtime. A no-op when the
/// crate is built with the `disabled` feature.
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "disabled"))]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(feature = "disabled")]
    let _ = on;
}

/// `true` while the [`log!`] sink is muted (`--quiet`).
#[inline]
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Mutes or unmutes the [`log!`] sink. Telemetry collection and manifest
/// emission are unaffected; only terminal output is suppressed.
pub fn set_quiet(on: bool) {
    QUIET.store(on, Ordering::Relaxed);
}

/// Applies the `FGBD_OBSV` (`0`/`false`/`off` → [`set_enabled`]`(false)`)
/// and `FGBD_QUIET` (`1`/`true`/`on` → [`set_quiet`]`(true)`) environment
/// variables. Call once at process start.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("FGBD_OBSV") {
        if matches!(v.as_str(), "0" | "false" | "off") {
            set_enabled(false);
        }
    }
    if let Ok(v) = std::env::var("FGBD_QUIET") {
        if matches!(v.as_str(), "1" | "true" | "on") {
            set_quiet(true);
        }
    }
}

/// Opens a hierarchical span timer that closes at the end of the
/// enclosing scope:
///
/// ```
/// fn reconstruct() {
///     fgbd_obsv::span!("reconstruct");
///     // ... timed work ...
/// }
/// ```
///
/// Spans nest by scope; the same path aggregates `calls` and total
/// nanoseconds. For explicit control over the span's extent use
/// [`span::enter`] and hold the guard. When telemetry is disabled this
/// costs one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obsv_span_guard = $crate::span::enter($name);
    };
}

/// Adds to a named monotonic counter: `counter!("des.events", n)`, or
/// labeled `counter!("scenario.runs", "speedstep_off", 1)`. The unlabeled
/// form caches the registry lookup per call site in a `OnceLock`; both
/// are no-ops (one relaxed load) when telemetry is disabled.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static OBSV_COUNTER: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
                ::std::sync::OnceLock::new();
            OBSV_COUNTER
                .get_or_init(|| $crate::metrics::counter($name))
                .add(($n) as u64);
        }
    };
    ($name:expr, $label:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::metrics::counter_labeled($name, $label).add(($n) as u64);
        }
    };
}

/// Records a value into a named fixed-bucket log2 histogram:
/// `histogram!("des.events_per_run", delta)`. Cached per call site like
/// [`counter!`]; a no-op when telemetry is disabled.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static OBSV_HISTOGRAM: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
                ::std::sync::OnceLock::new();
            OBSV_HISTOGRAM
                .get_or_init(|| $crate::metrics::histogram($name))
                .record(($v) as u64);
        }
    };
}

/// Sets a named last-value gauge: `gauge!("monitor.lag_us", lag as f64)`,
/// or labeled per-tier `gauge!("monitor.window_nstar", tier_name, n)`.
/// The unlabeled form caches the registry lookup per call site in a
/// `OnceLock`; the labeled form accepts runtime strings (server names)
/// and pays one registry lock per call. Both are no-ops (one relaxed
/// load) when telemetry is disabled.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static OBSV_GAUGE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
                ::std::sync::OnceLock::new();
            OBSV_GAUGE
                .get_or_init(|| $crate::metrics::gauge($name))
                .set(($v) as f64);
        }
    };
    ($name:expr, $label:expr, $v:expr) => {
        if $crate::enabled() {
            $crate::metrics::gauge_labeled($name, $label).set(($v) as f64);
        }
    };
}

/// Writes a uniformly prefixed, machine-parseable line (or block — every
/// line of a multi-line payload is prefixed) to stdout:
///
/// ```
/// fgbd_obsv::log!("fig06", "interval 0 load = {:.2}", 1.5);
/// // prints: [fgbd:fig06] interval 0 load = 1.50
/// ```
///
/// Muted by [`set_quiet`] / `--quiet`.
#[macro_export]
macro_rules! log {
    ($target:expr, $($arg:tt)*) => {
        if !$crate::quiet() {
            $crate::sink::emit($target, &::std::format!($($arg)*));
        }
    };
}

/// Serializes unit tests that flip the process-global enabled/quiet
/// switches (the test harness runs tests concurrently).
#[cfg(test)]
pub(crate) mod test_sync {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_toggles_at_runtime() {
        let _g = crate::test_sync::hold();
        // The crate under test is built without the `disabled` feature.
        assert!(crate::enabled());
        crate::set_enabled(false);
        assert!(!crate::enabled());
        crate::set_enabled(true);
        assert!(crate::enabled());
    }

    #[test]
    fn quiet_toggles_independently() {
        let _g = crate::test_sync::hold();
        assert!(!crate::quiet());
        crate::set_quiet(true);
        assert!(crate::quiet());
        crate::set_quiet(false);
    }
}
