//! Line-oriented JSON event files (`*.jsonl`).
//!
//! One [`crate::json::Json`] document per line, compact-rendered, flushed
//! per write so a tailing consumer (or a crashed run's post-mortem) sees
//! every event that was emitted. Used by the live monitor for its
//! heartbeat and verdict streams under `out/monitor/`.
//!
//! Writes are **independent of quiet mode** by design: `--quiet` mutes
//! the terminal [`crate::log!`] sink, not on-disk artifacts (the same
//! contract as run manifests and experiment summaries).

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;

/// An append-only writer of newline-delimited JSON events.
#[derive(Debug)]
pub struct JsonlWriter {
    path: PathBuf,
    out: BufWriter<File>,
    lines: u64,
}

impl JsonlWriter {
    /// Creates (truncating) `path`, making parent directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlWriter> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlWriter {
            path: path.to_path_buf(),
            out: BufWriter::new(File::create(path)?),
            lines: 0,
        })
    }

    /// Appends one compact-rendered document as a line and flushes it.
    pub fn write(&mut self, doc: &Json) -> io::Result<()> {
        self.out.write_all(doc.render().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_one_flushed_compact_line_per_document() {
        let dir = std::env::temp_dir().join(format!("fgbd-jsonl-{}", std::process::id()));
        let path = dir.join("nested/events.jsonl");
        let mut w = JsonlWriter::create(&path).unwrap();
        for i in 0..3u32 {
            let doc = Json::Obj(vec![
                ("seq".into(), Json::Num(f64::from(i))),
                ("kind".into(), Json::Str("onset".into())),
            ]);
            w.write(&doc).unwrap();
        }
        assert_eq!(w.lines(), 3);
        // Flushed per write: readable without dropping the writer.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], r#"{"seq":1,"kind":"onset"}"#);
        drop(w);
        std::fs::remove_dir_all(&dir).ok();
    }
}
