//! The stdout log sink behind [`crate::log!`]: every line is prefixed
//! `[fgbd:<target>] `, so interleaved experiment output stays
//! machine-parseable (`grep '^\[fgbd:fig12\]'` recovers one stream).

use std::io::Write;

/// Emits `msg` under `target`, prefixing every line. Multi-line payloads
/// (plots, summary tables) keep their shape — each line gets the prefix.
/// The quiet check lives in the [`crate::log!`] macro so muted call
/// sites skip formatting entirely; calling this directly always prints.
pub fn emit(target: &str, msg: &str) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if msg.is_empty() {
        let _ = writeln!(out, "[fgbd:{target}]");
        return;
    }
    for line in msg.lines() {
        let _ = writeln!(out, "[fgbd:{target}] {line}");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn quiet_mode_skips_the_macro_body() {
        let _g = crate::test_sync::hold();
        crate::set_quiet(true);
        let mut evaluated = false;
        crate::log!("test", "{}", {
            evaluated = true;
            "x"
        });
        assert!(!evaluated, "--quiet must skip formatting work");
        crate::set_quiet(false);
        crate::log!("test", "{}", {
            evaluated = true;
            "exercising the live path"
        });
        assert!(evaluated);
    }
}
