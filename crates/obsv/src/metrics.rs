//! Monotonic counters, fixed-bucket log2 histograms, and last-value
//! gauges.
//!
//! Instruments are registered lazily by `&'static str` name (plus an
//! optional `&'static str` label) and live for the process lifetime, so
//! call sites can cache the returned reference in a `OnceLock` — the
//! [`crate::counter!`] and [`crate::histogram!`] macros do exactly that.
//! All updates are single relaxed atomic RMWs; totals are exact under
//! arbitrary thread interleavings because addition commutes. Gauges are
//! the exception to the static-label rule: the live monitor labels them
//! with runtime server names, so their registry is keyed by owned
//! strings and the lookup re-hashes per call.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `0` holds zeros and bucket `b`
/// (`1..=64`) holds values in `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The smallest value a bucket index can hold (0 for bucket 0,
    /// `2^(b-1)` otherwise).
    pub fn bucket_floor(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }
}

/// A last-value gauge: the most recent `set` wins. Values are `f64`
/// stored as raw bits so reads and writes stay single relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge (reads as `0.0`).
    pub const fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Replaces the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

type Key = (&'static str, &'static str);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn counters() -> &'static Mutex<BTreeMap<Key, &'static Counter>> {
    static R: OnceLock<Mutex<BTreeMap<Key, &'static Counter>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn histograms() -> &'static Mutex<BTreeMap<Key, &'static Histogram>> {
    static R: OnceLock<Mutex<BTreeMap<Key, &'static Histogram>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The counter named `name`, registering it on first use. Repeated calls
/// return the same instance.
pub fn counter(name: &'static str) -> &'static Counter {
    counter_labeled(name, "")
}

/// The `(name, label)` counter — for per-variant counts whose label is
/// only known at runtime from a static set (e.g. scenario names).
pub fn counter_labeled(name: &'static str, label: &'static str) -> &'static Counter {
    lock(counters())
        .entry((name, label))
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

fn retained() -> &'static Mutex<BTreeSet<&'static str>> {
    static R: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Like [`counter`], but the counter is *retained* in snapshot deltas:
/// [`MetricsSnapshot::delta`] normally drops untouched instruments, which
/// makes "this never happened" indistinguishable from "this was never
/// measured". Retained counters always appear in deltas once registered,
/// explicitly reporting zero — the right contract for health metrics like
/// backpressure stall counts, where 0 is the finding.
pub fn counter_retained(name: &'static str) -> &'static Counter {
    lock(retained()).insert(name);
    counter(name)
}

/// The histogram named `name`, registering it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lock(histograms())
        .entry((name, ""))
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

fn gauges() -> &'static Mutex<BTreeMap<(&'static str, String), &'static Gauge>> {
    static R: OnceLock<Mutex<BTreeMap<(&'static str, String), &'static Gauge>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The gauge named `name`, registering it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    gauge_labeled(name, "")
}

/// The `(name, label)` gauge. Unlike counters the label may be a
/// runtime string (e.g. a server name), so this looks up the registry on
/// every call — gauges are set at heartbeat cadence, not in hot loops.
pub fn gauge_labeled(name: &'static str, label: &str) -> &'static Gauge {
    lock(gauges())
        .entry((name, label.to_string()))
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// A histogram's contents at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(bucket floor value, sample count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of every registered counter, histogram, and
/// gauge, keyed by `name` or `name{label}`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Histogram contents.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Gauge values as raw `f64` bits (`f64::to_bits`) — bits rather than
    /// floats so the snapshot stays `Eq` and comparisons are exact.
    pub gauges: BTreeMap<String, u64>,
}

fn key_string((name, label): Key) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// Peak resident set size of this process in KiB, from the kernel's
/// `VmHWM` accounting in `/proc/self/status`. `None` off Linux or when
/// `/proc` is unavailable. This is the memory evidence every run manifest
/// records (see the repro harness), so flat-memory claims — streaming
/// capture writers, the zero-copy analysis path — are tracked per run
/// just like stage wall times.
pub fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Snapshots every registered instrument.
pub fn snapshot() -> MetricsSnapshot {
    let counters = lock(counters())
        .iter()
        .map(|(&k, c)| (key_string(k), c.get()))
        .collect();
    let histograms = lock(histograms())
        .iter()
        .map(|(&k, h)| {
            let buckets = (0..HIST_BUCKETS)
                .filter_map(|b| {
                    let n = h.buckets[b].load(Ordering::Relaxed);
                    (n > 0).then(|| (Histogram::bucket_floor(b), n))
                })
                .collect();
            (
                key_string(k),
                HistSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                },
            )
        })
        .collect();
    let gauges = lock(gauges())
        .iter()
        .map(|((name, label), g)| {
            let key = if label.is_empty() {
                (*name).to_string()
            } else {
                format!("{name}{{{label}}}")
            };
            (key, g.get().to_bits())
        })
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
        gauges,
    }
}

impl MetricsSnapshot {
    /// The activity since `earlier` — per-run views over the
    /// process-cumulative registry. Untouched instruments are dropped.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let keep_zero = lock(retained());
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (d > 0 || keep_zero.contains(k.as_str())).then(|| (k.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let base = earlier.histograms.get(k);
                let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                let base_buckets: BTreeMap<u64, u64> = base
                    .map(|b| b.buckets.iter().copied().collect())
                    .unwrap_or_default();
                let buckets = h
                    .buckets
                    .iter()
                    .filter_map(|&(floor, n)| {
                        let d = n.saturating_sub(base_buckets.get(&floor).copied().unwrap_or(0));
                        (d > 0).then_some((floor, d))
                    })
                    .collect();
                Some((
                    k.clone(),
                    HistSnapshot {
                        count,
                        sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                        buckets,
                    },
                ))
            })
            .collect();
        // Gauges are instantaneous, not cumulative: the "delta" keeps the
        // current value, but only for gauges that moved (or appeared)
        // since `earlier` — untouched gauges belong to other runs.
        let gauges = self
            .gauges
            .iter()
            .filter(|&(k, &bits)| earlier.gauges.get(k) != Some(&bits))
            .map(|(k, &bits)| (k.clone(), bits))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            gauges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_identity_registered() {
        let a = counter("t_metrics_identity");
        let b = counter("t_metrics_identity");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        counter_labeled("t_metrics_labeled", "x").add(1);
        counter_labeled("t_metrics_labeled", "y").add(2);
        let snap = snapshot();
        assert_eq!(snap.counters["t_metrics_labeled{x}"], 1);
        assert_eq!(snap.counters["t_metrics_labeled{y}"], 2);
    }

    #[test]
    fn histogram_buckets_follow_log2() {
        let h = histogram("t_metrics_hist");
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        let snap = snapshot();
        let hs = &snap.histograms["t_metrics_hist"];
        assert_eq!(hs.count, 8);
        assert_eq!(hs.sum, 1 + 2 + 3 + 4 + 7 + 8 + (1 << 20));
        let by_floor: BTreeMap<u64, u64> = hs.buckets.iter().copied().collect();
        assert_eq!(by_floor[&0], 1); // value 0
        assert_eq!(by_floor[&1], 1); // value 1
        assert_eq!(by_floor[&2], 2); // values 2, 3
        assert_eq!(by_floor[&4], 2); // values 4, 7
        assert_eq!(by_floor[&8], 1); // value 8
        assert_eq!(by_floor[&(1 << 20)], 1);
    }

    #[test]
    fn retained_counter_reports_zero_delta() {
        let c = counter_retained("t_metrics_retained");
        c.add(4);
        let before = snapshot();
        // No activity since `before` — a normal counter would be dropped
        // from the delta, but a retained one must report an explicit zero.
        let d = snapshot().delta(&before);
        assert_eq!(d.counters.get("t_metrics_retained"), Some(&0));
        c.add(2);
        let d2 = snapshot().delta(&before);
        assert_eq!(d2.counters.get("t_metrics_retained"), Some(&2));
        // Identity with the plain registration path.
        assert!(std::ptr::eq(c, counter("t_metrics_retained")));
    }

    #[test]
    fn gauges_hold_the_last_value_and_delta_on_change() {
        let g = gauge_labeled("t_metrics_gauge", "mysql-1");
        g.set(3.5);
        g.set(7.25);
        assert_eq!(g.get(), 7.25);
        // Same (name, label) resolves to the same instance even though the
        // label is a runtime string.
        assert!(std::ptr::eq(g, gauge_labeled("t_metrics_gauge", "mysql-1")));
        let before = snapshot();
        assert_eq!(
            before.gauges.get("t_metrics_gauge{mysql-1}"),
            Some(&7.25f64.to_bits())
        );
        // Unchanged since `before` -> dropped from the delta; changed ->
        // the delta carries the new value, not a difference.
        let unchanged = snapshot().delta(&before);
        assert!(!unchanged.gauges.contains_key("t_metrics_gauge{mysql-1}"));
        g.set(-1.0);
        let moved = snapshot().delta(&before);
        assert_eq!(
            moved.gauges.get("t_metrics_gauge{mysql-1}"),
            Some(&(-1.0f64).to_bits())
        );
    }

    #[test]
    fn delta_reports_only_new_activity() {
        let c = counter("t_metrics_delta");
        c.add(10);
        let before = snapshot();
        c.add(7);
        let d = snapshot().delta(&before);
        assert_eq!(d.counters["t_metrics_delta"], 7);
        let d2 = snapshot().delta(&snapshot());
        assert!(!d2.counters.contains_key("t_metrics_delta"));
    }
}
