//! A minimal JSON value, writer, and parser — just enough for run
//! manifests and their in-repo schema checker, with zero dependencies.
//!
//! Objects preserve insertion order (they are association vectors), so
//! emitted manifests are stable and diffable. Numbers are `f64`; every
//! quantity a manifest stores (nanosecond totals, counter values) fits
//! the 2^53 integer range.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a fractional part;
    /// non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (linear scan; manifests are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a positioned message on malformed input (including
    /// trailing non-whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/inf; `null` keeps caller-supplied statistics
        // from producing a document our own parser rejects.
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        // `{}` on f64 round-trips through shortest representation.
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined).unwrap_or('\u{FFFD}')
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_manifest_shaped_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("fgbd.run-manifest/v1".into())),
            ("wall_ms".into(), Json::Num(12.5)),
            ("n".into(), Json::Num(42.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "stages".into(),
                Json::Arr(vec![Json::Obj(vec![(
                    "path".into(),
                    Json::Str("a;b \"quoted\"\n".into()),
                )])]),
            ),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let back = Json::parse(&rendered).expect("parse back");
            assert_eq!(back, doc, "failed on: {rendered}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(vec![("x".into(), Json::Num(n))]);
            let rendered = doc.render();
            assert_eq!(rendered, r#"{"x":null}"#);
            Json::parse(&rendered).expect("stays valid JSON");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, "x", false]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(arr[2].as_bool(), Some(false));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""\u0041\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé 😀"));
    }
}
