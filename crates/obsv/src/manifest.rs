//! Structured run manifests: one JSON document per pipeline/experiment
//! run, plus a Prometheus-style text exposition and a flamegraph
//! collapsed-stack dump, all derived from the same telemetry snapshots.
//!
//! ## Schema (`fgbd.run-manifest/v1`)
//!
//! ```json
//! {
//!   "schema": "fgbd.run-manifest/v1",
//!   "name": "fig06",                      // run identifier (file stem)
//!   "started_unix_ms": 1754380800000,     // wall-clock start
//!   "wall_ms": 12.5,                      // total run wall time
//!   "telemetry": true,                    // was collection enabled?
//!   "...": "...",                         // caller fields (seed, argv, …)
//!   "stages": [                           // per-stage wall time
//!     {"path": "fig06;simulate", "name": "simulate",
//!      "calls": 1, "total_ns": 5200000}
//!   ],
//!   "counters": {"des.events": 123},      // counter deltas for this run
//!   "histograms": {                       // log2 histogram deltas
//!     "des.events_per_run": {"count": 1, "sum": 123,
//!                            "buckets": [[64, 1]]}
//!   },
//!   "gauges": {"monitor.lag_us": 1200.0}, // last-value gauges (optional)
//!   "artifacts": ["target/experiments/fig06.csv"]
//! }
//! ```
//!
//! When `telemetry` is `true` the `stages` array must be non-empty and
//! every stage must show `calls >= 1` and `total_ns > 0` — the in-repo
//! checker ([`validate`], `check_manifest` bin, CI) fails otherwise.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanSnapshot;

/// The schema identifier this module emits and [`validate`] requires.
pub const SCHEMA: &str = "fgbd.run-manifest/v1";

/// Builder for one run's manifest. Create at run start ([`start`]
/// stamps the wall clock), add fields and artifacts as the run
/// progresses, then [`finish`] with span/metrics deltas.
///
/// [`start`]: RunManifest::start
/// [`finish`]: RunManifest::finish
#[derive(Debug)]
pub struct RunManifest {
    name: String,
    started_unix_ms: u64,
    t0: Instant,
    fields: Vec<(String, Json)>,
    artifacts: Vec<String>,
}

impl RunManifest {
    /// Begins a manifest for the run named `name` (also the output file
    /// stem — keep it path-friendly).
    pub fn start(name: &str) -> RunManifest {
        let started_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        RunManifest {
            name: name.to_string(),
            started_unix_ms,
            t0: Instant::now(),
            fields: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// The run name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a caller-defined field (scenario config, seed, argv …).
    /// Fields appear in the document after the standard header keys.
    pub fn field(&mut self, key: &str, value: Json) {
        self.fields.push((key.to_string(), value));
    }

    /// Records an output artifact path.
    pub fn artifact(&mut self, path: impl AsRef<Path>) {
        self.artifacts
            .push(path.as_ref().to_string_lossy().into_owned());
    }

    /// The manifest as a JSON document, with telemetry deltas attached.
    pub fn to_json(&self, spans: &SpanSnapshot, metrics: &MetricsSnapshot) -> Json {
        let wall_ms = self.t0.elapsed().as_secs_f64() * 1e3;
        let mut members = vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "started_unix_ms".to_string(),
                Json::Num(self.started_unix_ms as f64),
            ),
            ("wall_ms".to_string(), Json::Num(wall_ms)),
            ("telemetry".to_string(), Json::Bool(crate::enabled())),
        ];
        members.extend(self.fields.iter().cloned());
        let stages = spans
            .spans
            .iter()
            .map(|(path, stat)| {
                let name = path.rsplit(';').next().unwrap_or(path).to_string();
                Json::Obj(vec![
                    ("path".to_string(), Json::Str(path.clone())),
                    ("name".to_string(), Json::Str(name)),
                    ("calls".to_string(), Json::Num(stat.calls as f64)),
                    ("total_ns".to_string(), Json::Num(stat.ns as f64)),
                ])
            })
            .collect();
        members.push(("stages".to_string(), Json::Arr(stages)));
        members.push((
            "counters".to_string(),
            Json::Obj(
                metrics
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                    .collect(),
            ),
        ));
        members.push((
            "histograms".to_string(),
            Json::Obj(
                metrics
                    .histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::Obj(vec![
                                ("count".to_string(), Json::Num(h.count as f64)),
                                ("sum".to_string(), Json::Num(h.sum as f64)),
                                (
                                    "buckets".to_string(),
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(floor, n)| {
                                                Json::Arr(vec![
                                                    Json::Num(floor as f64),
                                                    Json::Num(n as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        members.push((
            "gauges".to_string(),
            Json::Obj(
                metrics
                    .gauges
                    .iter()
                    .map(|(k, &bits)| (k.clone(), Json::Num(f64::from_bits(bits))))
                    .collect(),
            ),
        ));
        members.push((
            "artifacts".to_string(),
            Json::Arr(self.artifacts.iter().cloned().map(Json::Str).collect()),
        ));
        Json::Obj(members)
    }

    /// Writes `<dir>/<name>.json` (the manifest), `<name>.prom` (the
    /// Prometheus text exposition), and `<name>.folded` (the collapsed
    /// stack dump), creating `dir` as needed. Returns the JSON path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if any of the three files cannot
    /// be written.
    pub fn finish(
        self,
        dir: impl AsRef<Path>,
        spans: &SpanSnapshot,
        metrics: &MetricsSnapshot,
    ) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let doc = self.to_json(spans, metrics);
        let json_path = dir.join(format!("{}.json", self.name));
        std::fs::write(&json_path, doc.render_pretty())?;
        std::fs::write(
            dir.join(format!("{}.prom", self.name)),
            exposition(spans, metrics),
        )?;
        std::fs::write(dir.join(format!("{}.folded", self.name)), spans.collapsed())?;
        Ok(json_path)
    }
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders span and metrics snapshots in the Prometheus text exposition
/// format (counters only — everything fgbd records is monotonic within
/// a run).
pub fn exposition(spans: &SpanSnapshot, metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE fgbd_span_ns_total counter\n");
    for (path, stat) in &spans.spans {
        out.push_str(&format!(
            "fgbd_span_ns_total{{path=\"{}\"}} {}\n",
            prom_escape(path),
            stat.ns
        ));
    }
    out.push_str("# TYPE fgbd_span_calls_total counter\n");
    for (path, stat) in &spans.spans {
        out.push_str(&format!(
            "fgbd_span_calls_total{{path=\"{}\"}} {}\n",
            prom_escape(path),
            stat.calls
        ));
    }
    out.push_str("# TYPE fgbd_counter_total counter\n");
    for (name, v) in &metrics.counters {
        out.push_str(&format!(
            "fgbd_counter_total{{name=\"{}\"}} {v}\n",
            prom_escape(name)
        ));
    }
    if !metrics.gauges.is_empty() {
        out.push_str("# TYPE fgbd_gauge gauge\n");
        for (name, &bits) in &metrics.gauges {
            out.push_str(&format!(
                "fgbd_gauge{{name=\"{}\"}} {}\n",
                prom_escape(name),
                f64::from_bits(bits)
            ));
        }
    }
    out.push_str("# TYPE fgbd_histogram_samples_total counter\n");
    for (name, h) in &metrics.histograms {
        out.push_str(&format!(
            "fgbd_histogram_samples_total{{name=\"{}\"}} {}\n",
            prom_escape(name),
            h.count
        ));
        for &(floor, n) in &h.buckets {
            out.push_str(&format!(
                "fgbd_histogram_bucket{{name=\"{}\",floor=\"{floor}\"}} {n}\n",
                prom_escape(name)
            ));
        }
    }
    out
}

/// Validates a parsed manifest against the documented schema. This is
/// the in-repo checker behind the `check_manifest` binary and the CI
/// end-to-end step: it fails on a wrong schema string, missing header
/// keys, and — when the run had telemetry enabled — on an empty stage
/// list, zero-call stages, or zero timings.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate(doc: &Json) -> Result<(), String> {
    let obj = doc
        .as_obj()
        .ok_or_else(|| "manifest root must be an object".to_string())?;
    let _ = obj;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field 'schema'".to_string())?;
    if schema != SCHEMA {
        return Err(format!("schema is '{schema}', expected '{SCHEMA}'"));
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field 'name'".to_string())?;
    if name.is_empty() {
        return Err("'name' must be non-empty".to_string());
    }
    for key in ["started_unix_ms", "wall_ms"] {
        let v = doc
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
        if v < 0.0 {
            return Err(format!("'{key}' must be non-negative, got {v}"));
        }
    }
    let telemetry = doc
        .get("telemetry")
        .and_then(Json::as_bool)
        .ok_or_else(|| "missing boolean field 'telemetry'".to_string())?;
    let stages = doc
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing array field 'stages'".to_string())?;
    if telemetry && stages.is_empty() {
        return Err("telemetry was enabled but 'stages' is empty".to_string());
    }
    for (i, stage) in stages.iter().enumerate() {
        let path = stage
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("stage {i}: missing string field 'path'"))?;
        if path.is_empty() {
            return Err(format!("stage {i}: 'path' must be non-empty"));
        }
        let calls = stage
            .get("calls")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("stage '{path}': missing numeric field 'calls'"))?;
        if calls < 1.0 {
            return Err(format!("stage '{path}': 'calls' must be >= 1, got {calls}"));
        }
        let total_ns = stage
            .get("total_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("stage '{path}': missing numeric field 'total_ns'"))?;
        if total_ns <= 0.0 {
            return Err(format!(
                "stage '{path}': zero timing (total_ns = {total_ns})"
            ));
        }
    }
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or_else(|| "missing object field 'counters'".to_string())?;
    for (k, v) in counters {
        if v.as_f64().is_none() {
            return Err(format!("counter '{k}' is not numeric"));
        }
    }
    // 'gauges' is optional (added after v1 manifests shipped) but must be
    // a numeric-valued object when present.
    if let Some(gauges) = doc.get("gauges") {
        let obj = gauges
            .as_obj()
            .ok_or_else(|| "'gauges' must be an object".to_string())?;
        for (k, v) in obj {
            if v.as_f64().is_none() {
                return Err(format!("gauge '{k}' is not numeric"));
            }
        }
    }
    let artifacts = doc
        .get("artifacts")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing array field 'artifacts'".to_string())?;
    for (i, a) in artifacts.iter().enumerate() {
        if a.as_str().is_none() {
            return Err(format!("artifact {i} is not a string"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSnapshot;
    use crate::span::SpanStat;

    fn demo_snapshots() -> (SpanSnapshot, MetricsSnapshot) {
        let mut spans = SpanSnapshot::default();
        spans
            .spans
            .insert("run;stage_a".to_string(), SpanStat { calls: 2, ns: 1500 });
        spans
            .spans
            .insert("run".to_string(), SpanStat { calls: 1, ns: 9000 });
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("des.events".to_string(), 123);
        metrics.histograms.insert(
            "des.events_per_run".to_string(),
            HistSnapshot {
                count: 1,
                sum: 123,
                buckets: vec![(64, 1)],
            },
        );
        (spans, metrics)
    }

    #[test]
    fn manifest_roundtrips_and_validates() {
        let (spans, metrics) = demo_snapshots();
        let mut m = RunManifest::start("unit_manifest");
        m.field("seed", Json::Num(7.0));
        m.artifact("target/experiments/unit.csv");
        let doc = m.to_json(&spans, &metrics);
        validate(&doc).expect("demo manifest must validate");
        let back = Json::parse(&doc.render_pretty()).expect("reparse");
        validate(&back).expect("reparsed manifest must validate");
        assert_eq!(back.get("seed").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            back.get("counters")
                .unwrap()
                .get("des.events")
                .unwrap()
                .as_f64(),
            Some(123.0)
        );
    }

    #[test]
    fn finish_writes_json_prom_and_folded() {
        let (spans, metrics) = demo_snapshots();
        let dir =
            std::env::temp_dir().join(format!("fgbd_obsv_manifest_test_{}", std::process::id()));
        let m = RunManifest::start("unit_finish");
        let json_path = m.finish(&dir, &spans, &metrics).expect("write");
        let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        validate(&doc).expect("written manifest validates");
        let prom = std::fs::read_to_string(dir.join("unit_finish.prom")).unwrap();
        assert!(prom.contains("fgbd_span_ns_total{path=\"run;stage_a\"} 1500"));
        assert!(prom.contains("fgbd_counter_total{name=\"des.events\"} 123"));
        let folded = std::fs::read_to_string(dir.join("unit_finish.folded")).unwrap();
        assert!(folded.contains("run;stage_a 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validator_rejects_the_documented_failures() {
        let (spans, metrics) = demo_snapshots();
        let good = RunManifest::start("unit_bad").to_json(&spans, &metrics);

        // Wrong schema.
        let mut doc = good.clone();
        if let Json::Obj(m) = &mut doc {
            m[0].1 = Json::Str("other/v9".into());
        }
        assert!(validate(&doc).unwrap_err().contains("schema"));

        // Telemetry on but no stages.
        let mut doc = good.clone();
        if let Json::Obj(m) = &mut doc {
            for (k, v) in m.iter_mut() {
                if k == "stages" {
                    *v = Json::Arr(vec![]);
                }
            }
        }
        assert!(validate(&doc).unwrap_err().contains("empty"));

        // Zero timing in a stage.
        let mut doc = good.clone();
        if let Json::Obj(m) = &mut doc {
            for (k, v) in m.iter_mut() {
                if k == "stages" {
                    *v = Json::Arr(vec![Json::Obj(vec![
                        ("path".into(), Json::Str("run".into())),
                        ("name".into(), Json::Str("run".into())),
                        ("calls".into(), Json::Num(1.0)),
                        ("total_ns".into(), Json::Num(0.0)),
                    ])]);
                }
            }
        }
        assert!(validate(&doc).unwrap_err().contains("zero timing"));

        // Missing counters object.
        let mut doc = good.clone();
        if let Json::Obj(m) = &mut doc {
            m.retain(|(k, _)| k != "counters");
        }
        assert!(validate(&doc).unwrap_err().contains("counters"));

        // Telemetry off: empty stages become acceptable.
        let mut doc = good;
        if let Json::Obj(m) = &mut doc {
            for (k, v) in m.iter_mut() {
                if k == "telemetry" {
                    *v = Json::Bool(false);
                }
                if k == "stages" {
                    *v = Json::Arr(vec![]);
                }
            }
        }
        validate(&doc).expect("telemetry-off manifests may have no stages");
    }
}
