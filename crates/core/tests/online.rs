//! Property tests of the online/batch equivalence contract
//! (`fgbd_core::online` module docs): for any time-ordered record stream,
//! any chunking, any interval length and any live-window width, the
//! retained final report is **bit-for-bit** what `analyze_server` computes
//! from the materialized capture, and the live verdict stream does not
//! depend on how the stream was chunked.

use fgbd_core::detect::{analyze_server, DetectorConfig};
use fgbd_core::online::{OnlineConfig, OnlineDetector};
use fgbd_core::series::Window;
use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, SpanSet, TraceLog,
};
use proptest::prelude::*;

const WEB: NodeId = NodeId(1);
const DB: NodeId = NodeId(2);
const WU_WEB_US: u64 = 10_000;
const WU_DB_US: u64 = 700;

fn nodes() -> Vec<NodeMeta> {
    vec![
        NodeMeta {
            id: NodeId(0),
            name: "client".into(),
            kind: NodeKind::Client,
            tier: None,
        },
        NodeMeta {
            id: WEB,
            name: "web".into(),
            kind: NodeKind::Server,
            tier: Some(0),
        },
        NodeMeta {
            id: DB,
            name: "db".into(),
            kind: NodeKind::Server,
            tier: Some(1),
        },
    ]
}

fn services() -> ServiceTimeTable {
    let mut t = ServiceTimeTable::new();
    // Classes 0 and 1 are calibrated; class 2 exercises the residence
    // fallback on both servers.
    t.insert(WEB, ClassId(0), SimDuration::from_millis(8));
    t.insert(WEB, ClassId(1), SimDuration::from_millis(3));
    t.insert(DB, ClassId(0), SimDuration::from_micros(900));
    t.insert(DB, ClassId(1), SimDuration::from_micros(450));
    t
}

/// A time-ordered record stream of request/response pairs over two
/// servers and a handful of reused connections, plus a few
/// front-truncated responses (records whose request predates the
/// stream). Overlapping requests on one connection are fine: both
/// extractors pair FIFO per `(server, connection)` by construction.
fn record_stream() -> impl Strategy<Value = Vec<MsgRecord>> {
    let pair = (
        0u64..3_000_000,
        1u64..400_000,
        0u32..4,
        0u16..3,
        prop::bool::ANY,
    );
    let orphan = (0u64..100_000, 0u32..4, prop::bool::ANY);
    (
        prop::collection::vec(pair, 1..140),
        prop::collection::vec(orphan, 0..4),
    )
        .prop_map(|(pairs, orphans)| {
            let mut recs = Vec::new();
            for (a, dur, conn, class, second) in pairs {
                let server = if second { DB } else { WEB };
                let base = MsgRecord {
                    at: SimTime::from_micros(a),
                    src: NodeId(0),
                    dst: server,
                    kind: MsgKind::Request,
                    conn: ConnId(conn),
                    class: ClassId(class),
                    bytes: 64,
                    truth: None,
                };
                recs.push(base);
                recs.push(MsgRecord {
                    at: SimTime::from_micros(a + dur),
                    src: server,
                    dst: NodeId(0),
                    kind: MsgKind::Response,
                    ..base
                });
            }
            for (a, conn, second) in orphans {
                let server = if second { DB } else { WEB };
                recs.push(MsgRecord {
                    at: SimTime::from_micros(a),
                    src: server,
                    dst: NodeId(0),
                    kind: MsgKind::Response,
                    conn: ConnId(100 + conn),
                    class: ClassId(0),
                    bytes: 64,
                    truth: None,
                });
            }
            // Stable by arrival time: ties keep generation order, and both
            // consumers read the identical sequence.
            recs.sort_by_key(|r| r.at);
            recs
        })
}

fn online_config(interval_us: u64, live_window: usize) -> OnlineConfig {
    let mut cfg = OnlineConfig::new(
        SimTime::ZERO,
        SimDuration::from_micros(interval_us),
        SimDuration::from_micros(WU_WEB_US),
    );
    cfg.live_window = live_window;
    cfg.refit_every = 16;
    cfg
}

fn run_online(
    recs: &[MsgRecord],
    end: SimTime,
    interval_us: u64,
    live_window: usize,
    chunk: usize,
) -> fgbd_core::online::OnlineFinish {
    let mut online = OnlineDetector::new(online_config(interval_us, live_window), services());
    online.set_work_unit(DB, SimDuration::from_micros(WU_DB_US));
    for c in recs.chunks(chunk.max(1)) {
        online.push_chunk(c);
    }
    online.finish(end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence property: retained online reports equal
    /// the batch analysis bit-for-bit — loads, rates, states, N\*, and the
    /// unmatched accounting — for every server, across interval lengths,
    /// live-window widths and chunk sizes (which must all be irrelevant
    /// to the final report).
    #[test]
    fn online_final_report_is_bitwise_batch(
        recs in record_stream(),
        iv_pick in 0usize..3,
        lw_pick in 0usize..3,
        chunk_pick in 0usize..3,
    ) {
        let interval_us = [10_000u64, 50_000, 130_000][iv_pick];
        let live_window = [8usize, 64, 1024][lw_pick];
        let chunk = [1usize, 17, 4096][chunk_pick];
        let end = SimTime::from_micros(
            recs.last().map_or(0, |r| r.at.as_micros()) + interval_us,
        );
        let mut log = TraceLog::new(nodes());
        for r in &recs {
            log.push(*r);
        }
        let spans = SpanSet::extract(&log);
        let window = Window::new(SimTime::ZERO, end, SimDuration::from_micros(interval_us));
        let fin = run_online(&recs, end, interval_us, live_window, chunk);
        let dcfg = DetectorConfig::default();
        for rep in &fin.reports {
            let wu = if rep.server == DB { WU_DB_US } else { WU_WEB_US };
            let batch = analyze_server(
                spans.server(rep.server),
                rep.server,
                window,
                &services(),
                SimDuration::from_micros(wu),
                &dcfg,
            );
            prop_assert_eq!(rep.loads.len(), window.len());
            for i in 0..window.len() {
                prop_assert_eq!(
                    rep.loads[i].to_bits(),
                    batch.load.get(i).to_bits(),
                    "load bits diverge: server {:?} interval {}",
                    rep.server,
                    i
                );
                prop_assert_eq!(
                    rep.rates[i].to_bits(),
                    batch.tput.unit_rate(i).to_bits(),
                    "rate bits diverge: server {:?} interval {}",
                    rep.server,
                    i
                );
            }
            prop_assert_eq!(&rep.states, &batch.states);
            match (&rep.nstar, &batch.nstar) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.nstar.to_bits(), b.nstar.to_bits());
                    prop_assert_eq!(a.tp_max.to_bits(), b.tp_max.to_bits());
                }
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
            prop_assert_eq!(rep.matched as usize, spans.server(rep.server).len());
            prop_assert_eq!(
                rep.unmatched,
                spans.unmatched.get(&rep.server).copied().unwrap_or(0)
            );
        }
    }

    /// Chunk-size invariance of the *live* surface: the verdict event
    /// stream (kind, server, interval) is identical whether records
    /// arrive one at a time or in bulk.
    #[test]
    fn verdict_stream_is_chunk_invariant(
        recs in record_stream(),
        lw_pick in 0usize..2,
    ) {
        let live_window = [8usize, 64][lw_pick];
        let interval_us = 50_000;
        let end = SimTime::from_micros(
            recs.last().map_or(0, |r| r.at.as_micros()) + interval_us,
        );
        let one = run_online(&recs, end, interval_us, live_window, 1);
        let bulk = run_online(&recs, end, interval_us, live_window, 4096);
        prop_assert_eq!(one.events.len(), bulk.events.len());
        for (a, b) in one.events.iter().zip(&bulk.events) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.server, b.server);
            prop_assert_eq!(a.interval, b.interval);
            prop_assert_eq!(a.load.to_bits(), b.load.to_bits());
            prop_assert_eq!(a.rate.to_bits(), b.rate.to_bits());
        }
    }
}
