//! Bounded-memory audit of the streaming detector: with retention off,
//! the allocation high-water mark of a long run must stay flat — the
//! detector may not accumulate per-interval history proportional to run
//! length. A counting global allocator approximates `VmHWM` portably
//! (see [`fgbd_obsv::alloc`]); this file holds exactly one test because
//! the gauge counts for the whole process.

use fgbd_core::online::{OnlineConfig, OnlineDetector};
use fgbd_des::{SimDuration, SimTime};
use fgbd_obsv::alloc::AllocGauge;
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::{ClassId, ConnId, MsgKind, MsgRecord, NodeId};

#[global_allocator]
static GLOBAL: AllocGauge = AllocGauge::new();

const SERVER: NodeId = NodeId(1);
const CONNS: u64 = 8;

/// Deterministic record source: no materialized Vec, so the stream itself
/// contributes nothing to the high-water mark. Each op is a paired
/// request/response on a rotating connection; arrivals advance
/// monotonically and responses land before the next request, so the
/// detector's open-request set stays O(1) and the watermark keeps moving.
struct Ops {
    t: u64,
    rng: u64,
    pending: Option<MsgRecord>,
    op: u64,
}

impl Ops {
    fn new() -> Ops {
        Ops {
            t: 0,
            rng: 0x2013_0708_dead_beef,
            pending: None,
            op: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step — cheap, stateless apart from the seed word.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next(&mut self) -> MsgRecord {
        if let Some(resp) = self.pending.take() {
            self.t = resp.at.as_micros();
            return resp;
        }
        let dur = 50 + self.next_u64() % 4_000;
        let gap = self.next_u64() % 1_500;
        let req = MsgRecord {
            at: SimTime::from_micros(self.t + gap),
            src: NodeId(0),
            dst: SERVER,
            kind: MsgKind::Request,
            conn: ConnId((self.op % CONNS) as u32),
            class: ClassId((self.op % 3) as u16),
            bytes: 64,
            truth: None,
        };
        self.op += 1;
        self.pending = Some(MsgRecord {
            at: SimTime::from_micros(self.t + gap + dur),
            src: SERVER,
            dst: NodeId(0),
            kind: MsgKind::Response,
            ..req
        });
        req
    }
}

fn detector() -> OnlineDetector {
    let mut cfg = OnlineConfig::new(
        SimTime::ZERO,
        SimDuration::from_micros(10_000),
        SimDuration::from_micros(700),
    );
    cfg.retain = false;
    cfg.live_window = 64;
    OnlineDetector::new(cfg, ServiceTimeTable::new())
}

/// Drives `ops` request/response pairs through a fresh detector and
/// returns the allocation high-water mark (in bytes, relative to the
/// point just before the detector was built) of the whole run.
fn peak_of_run(ops: u64) -> u64 {
    GLOBAL.reset_peak();
    let base = GLOBAL.live_bytes();
    let mut det = detector();
    let mut src = Ops::new();
    for i in 0..ops * 2 {
        det.push(&src.next());
        if i % 1024 == 0 {
            det.drain_events();
            det.snapshot();
        }
    }
    det.drain_events();
    let end = det.now() + SimDuration::from_micros(10_000);
    let fin = det.finish(end);
    assert_eq!(fin.reports.len(), 1, "one server analyzed");
    assert!(fin.reports[0].matched > 0, "spans were paired");
    // Without retention the per-interval history must not be kept.
    assert!(fin.reports[0].loads.is_empty());
    GLOBAL.peak_bytes().saturating_sub(base)
}

#[test]
fn peak_memory_is_flat_in_run_length() {
    // Warm-up run: lets lazily-initialized process state (malloc arenas,
    // hash seeds) allocate outside the measured sections.
    peak_of_run(2_000);
    let short = peak_of_run(5_000);
    let long = peak_of_run(50_000);
    // 10× the stream length must not show up in the high-water mark.
    // Generous headroom (2× + 256 KiB) keeps the test robust to
    // container/allocator jitter while still failing hard if history
    // accumulates per interval or per span.
    assert!(
        long < short * 2 + (256 << 10),
        "peak grew with run length: short run {short} B, 10x run {long} B"
    );
}
