//! Property-based tests of the analysis invariants.

use fgbd_core::detect::{classify, DetectorConfig};
use fgbd_core::nstar::{self, NStarConfig};
use fgbd_core::plateau::{find_plateaus, PlateauConfig};
use fgbd_core::series::{reference, LoadSeries, SeriesSet, ThroughputSeries, Window};
use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::{ClassId, ConnId, NodeId, Span};
use proptest::prelude::*;

fn spans_strategy() -> impl Strategy<Value = Vec<Span>> {
    prop::collection::vec((0u64..2_000_000, 1u64..400_000, 0u16..4), 1..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, dur, class)| Span {
                server: NodeId(1),
                class: ClassId(class),
                arrival: SimTime::from_micros(a),
                departure: SimTime::from_micros(a + dur),
                conn: ConnId(0),
                truth: None,
            })
            .collect()
    })
}

/// Spans that may be zero-length, straddle the window edges, or carry a
/// class the service table has never seen (exercising the residence
/// fallback of `ThroughputSeries`).
fn awkward_spans_strategy() -> impl Strategy<Value = Vec<Span>> {
    prop::collection::vec((0u64..2_000_000, 0u64..400_000, 0u16..6), 0..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, dur, class)| Span {
                server: NodeId(1),
                class: ClassId(class),
                arrival: SimTime::from_micros(a),
                departure: SimTime::from_micros(a + dur),
                conn: ConnId(0),
                truth: None,
            })
            .collect()
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn window() -> Window {
    Window::new(
        SimTime::ZERO,
        SimTime::from_millis(2_500),
        SimDuration::from_millis(50),
    )
}

fn services() -> ServiceTimeTable {
    let mut t = ServiceTimeTable::new();
    for c in 0..4 {
        t.insert(
            NodeId(1),
            ClassId(c),
            SimDuration::from_millis(10 * (u64::from(c) + 1)),
        );
    }
    t
}

proptest! {
    /// The load integral over the window equals total clipped residence.
    #[test]
    fn load_integral_is_residence(spans in spans_strategy()) {
        let w = window();
        let load = LoadSeries::from_spans(&spans, w);
        let integral: f64 = load
            .values()
            .iter()
            .map(|v| v * w.interval.as_secs_f64())
            .sum();
        let residence: f64 = spans
            .iter()
            .filter(|s| s.overlaps(w.start, w.end))
            .map(|s| {
                (s.departure.min(w.end) - s.arrival.max(w.start)).as_secs_f64()
            })
            .sum();
        prop_assert!((integral - residence).abs() < 1e-6,
            "integral {} vs residence {}", integral, residence);
    }

    /// Load is never negative and never exceeds the span count.
    #[test]
    fn load_bounds(spans in spans_strategy()) {
        let load = LoadSeries::from_spans(&spans, window());
        for &v in load.values() {
            prop_assert!(v >= 0.0);
            prop_assert!(v <= spans.len() as f64 + 1e-9);
        }
    }

    /// Total normalized work units are invariant to the grid resolution,
    /// and total counts equal the spans departing inside the window.
    #[test]
    fn throughput_conservation(spans in spans_strategy(), interval_ms in 10u64..500) {
        let coarse = Window::new(
            SimTime::ZERO,
            SimTime::from_millis(2_500),
            SimDuration::from_millis(interval_ms),
        );
        // Clip to whole-interval coverage so both grids see the same spans;
        // a 1 ms fine grid divides any whole-ms coverage exactly.
        let covered = SimTime::ZERO
            + coarse.interval * coarse.len() as u64;
        let fine = Window::new(SimTime::ZERO, covered, SimDuration::from_millis(1));
        let svc = services();
        let wu = SimDuration::from_millis(10);
        let a = ThroughputSeries::from_spans(&spans, coarse, &svc, wu);
        let b = ThroughputSeries::from_spans(&spans, fine, &svc, wu);
        let ua: f64 = (0..a.len()).map(|i| a.units(i)).sum();
        let ub: f64 = (0..b.len()).map(|i| b.units(i)).sum();
        prop_assert!((ua - ub).abs() < 1e-6, "{} vs {}", ua, ub);
        let ca: u32 = (0..a.len()).map(|i| a.count(i)).sum();
        let expected = spans
            .iter()
            .filter(|s| s.departure >= SimTime::ZERO && s.departure < covered)
            .count() as u32;
        prop_assert_eq!(ca, expected);
    }

    /// N* always lies inside the observed positive-load range, and TP_max
    /// never exceeds the maximum observed throughput.
    #[test]
    fn nstar_in_range(
        seedish in 1u64..500,
        knee in 2.0f64..30.0,
        ceil in 100.0f64..10_000.0,
    ) {
        let n = 2_000;
        let mut loads = Vec::with_capacity(n);
        let mut tputs = Vec::with_capacity(n);
        for i in 0..n {
            let ld = 60.0 * ((i as u64 * seedish * 2_654_435_761) % 1_000) as f64 / 1_000.0 + 0.01;
            let tp = if ld < knee { ceil * ld / knee } else { ceil };
            loads.push(ld);
            tputs.push(tp);
        }
        if let Some(est) = nstar::estimate(&loads, &tputs, &NStarConfig::default()) {
            let lmax = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est.nstar > 0.0 && est.nstar <= lmax);
            let tmax = tputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est.tp_max <= tmax * 1.001);
            prop_assert!(est.knee_index < est.curve.len());
        }
    }

    /// Classification is total and consistent with the congestion point.
    #[test]
    fn classification_consistency(spans in spans_strategy()) {
        let w = window();
        let cfg = DetectorConfig::default();
        let load = LoadSeries::from_spans(&spans, w);
        let tput = ThroughputSeries::from_spans(
            &spans, w, &services(), SimDuration::from_millis(10));
        let rates = tput.unit_rates();
        let est = nstar::estimate(load.values(), &rates, &cfg.nstar);
        let states = classify(&load, &rates, est.as_ref(), &cfg);
        prop_assert_eq!(states.len(), load.len());
        if let Some(est) = est {
            for (i, s) in states.iter().enumerate() {
                use fgbd_core::detect::IntervalState::*;
                match s {
                    Congested | Frozen => prop_assert!(load.get(i) > est.nstar),
                    Normal => prop_assert!(load.get(i) <= est.nstar
                        || load.get(i) < cfg.idle_load),
                    Idle => prop_assert!(load.get(i) < cfg.idle_load),
                }
            }
        }
    }

    /// The O(S+I) sweep-line builders agree **bit-for-bit** with the naive
    /// per-interval reference on arbitrary grids — including zero-length
    /// spans, spans straddling the window edges, partial trailing coverage
    /// (non-round intervals), and classes missing from the service table.
    #[test]
    fn sweep_matches_reference_bitwise(
        spans in awkward_spans_strategy(),
        start_ms in 0u64..100,
        interval_us in 500u64..120_000,
    ) {
        let w = Window::new(
            SimTime::from_millis(start_ms),
            SimTime::from_millis(2_500),
            SimDuration::from_micros(interval_us),
        );
        let svc = services();
        let wu = SimDuration::from_millis(10);
        let load = LoadSeries::from_spans(&spans, w);
        let load_ref = reference::load_series(&spans, w);
        prop_assert_eq!(bits(load.values()), bits(load_ref.values()));
        let tput = ThroughputSeries::from_spans(&spans, w, &svc, wu);
        let tput_ref = reference::throughput_series(&spans, w, &svc, wu);
        prop_assert_eq!(tput.len(), tput_ref.len());
        for i in 0..tput.len() {
            prop_assert_eq!(tput.count(i), tput_ref.count(i));
            prop_assert_eq!(tput.units(i).to_bits(), tput_ref.units(i).to_bits());
        }
    }

    /// Aggregating the finest grid by an integer factor is bit-identical
    /// to building the coarse grid from the spans directly — the invariant
    /// `auto_interval` relies on to walk the span list only once.
    #[test]
    fn coarsening_equals_direct_build(
        spans in awkward_spans_strategy(),
        factor in 1usize..8,
    ) {
        let svc = services();
        let wu = SimDuration::from_millis(10);
        let end = SimTime::from_millis(2_500);
        let fine = SeriesSet::from_spans(
            &spans,
            Window::new(SimTime::ZERO, end, SimDuration::from_millis(10)),
            &svc,
            wu,
        );
        let coarse = fine.coarsen(factor);
        let direct = SeriesSet::from_spans(
            &spans,
            Window::new(SimTime::ZERO, end, SimDuration::from_millis(10 * factor as u64)),
            &svc,
            wu,
        );
        prop_assert_eq!(coarse.window(), direct.window());
        prop_assert_eq!(bits(coarse.load().values()), bits(direct.load().values()));
        let (ct, dt) = (coarse.tput(), direct.tput());
        prop_assert_eq!(ct.len(), dt.len());
        for i in 0..ct.len() {
            prop_assert_eq!(ct.count(i), dt.count(i));
            prop_assert_eq!(ct.units(i).to_bits(), dt.units(i).to_bits());
        }
    }

    /// With no calibrated service times at all, every completion falls
    /// back to its residence capped at one work unit, so total units equal
    /// the capped residence of the spans departing inside the grid.
    #[test]
    fn residence_fallback_is_capped(spans in awkward_spans_strategy()) {
        let w = window();
        let wu = SimDuration::from_millis(10);
        let empty = ServiceTimeTable::new();
        let tput = ThroughputSeries::from_spans(&spans, w, &empty, wu);
        let total: f64 = (0..tput.len()).map(|i| tput.units(i)).sum();
        let expected: f64 = spans
            .iter()
            .filter(|s| s.departure >= w.start && s.departure < w.grid_end())
            .map(|s| {
                let capped = s.residence().as_micros().min(wu.as_micros());
                capped as f64 / wu.as_micros() as f64
            })
            .sum();
        prop_assert!((total - expected).abs() < 1e-9,
            "total {} vs expected {}", total, expected);
    }

    /// Plateau shares always sum to ~1 and levels stay inside the data
    /// range.
    #[test]
    fn plateau_invariants(values in prop::collection::vec(10.0f64..10_000.0, 8..400)) {
        let ps = find_plateaus(&values, &PlateauConfig::default());
        if ps.is_empty() {
            return Ok(());
        }
        let share: f64 = ps.iter().map(|p| p.share).sum();
        prop_assert!(share <= 1.0 + 1e-9);
        // Every surviving plateau respects the share floor.
        for p in &ps {
            prop_assert!(p.share >= PlateauConfig::default().min_share - 1e-9);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in &ps {
            prop_assert!(p.level >= lo - 1e-9 && p.level <= hi + 1e-9);
        }
        // Ascending levels.
        for w in ps.windows(2) {
            prop_assert!(w[0].level < w[1].level);
        }
    }
}
