//! Small statistics toolkit: moments, percentiles, Pearson correlation, and
//! the one-sided Student-t quantiles used by the paper's intervention
//! analysis (§III-C, Equation 2).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or `xs` contains NaN.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    Some(v[idx])
}

/// Pearson product-moment correlation of two equal-length series.
///
/// Returns `None` when either series is degenerate (fewer than two points
/// or zero variance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Cross-correlation of `xs` against `ys` shifted by `lag` (positive lag:
/// `ys` leads). Used to show GC activity *precedes* load spikes.
pub fn lagged_pearson(xs: &[f64], ys: &[f64], lag: i64) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    let n = xs.len() as i64;
    if lag.abs() >= n {
        return None;
    }
    let (xs_w, ys_w): (&[f64], &[f64]) = if lag >= 0 {
        (&xs[lag as usize..], &ys[..(n - lag) as usize])
    } else {
        (&xs[..(n + lag) as usize], &ys[(-lag) as usize..])
    };
    pearson(xs_w, ys_w)
}

/// One-sided 95% Student-t quantiles, `t(0.95, df)`, used as the confidence
/// coefficient in the paper's Equation 2.
const T_TABLE: [(u32, f64); 19] = [
    (1, 6.314),
    (2, 2.920),
    (3, 2.353),
    (4, 2.132),
    (5, 2.015),
    (6, 1.943),
    (7, 1.895),
    (8, 1.860),
    (9, 1.833),
    (10, 1.812),
    (12, 1.782),
    (15, 1.753),
    (20, 1.725),
    (25, 1.708),
    (30, 1.697),
    (40, 1.684),
    (60, 1.671),
    (120, 1.658),
    (u32::MAX, 1.645),
];

/// `t(0.95, df)` with linear interpolation in `1/df` between table rows.
///
/// # Panics
///
/// Panics if `df == 0` (no such distribution).
pub fn t_095(df: u32) -> f64 {
    assert!(df > 0, "t distribution needs at least 1 degree of freedom");
    for w in T_TABLE.windows(2) {
        let (d0, t0) = w[0];
        let (d1, t1) = w[1];
        if df == d0 {
            return t0;
        }
        if df < d1 {
            // Interpolate linearly in 1/df, the natural scale for t tails.
            let x = 1.0 / df as f64;
            let x0 = 1.0 / d0 as f64;
            let x1 = if d1 == u32::MAX { 0.0 } else { 1.0 / d1 as f64 };
            return t1 + (t0 - t1) * (x - x1) / (x0 - x1);
        }
    }
    1.645
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.138).abs() < 0.001);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), None);
    }

    #[test]
    fn lagged_pearson_finds_shift() {
        // ys leads xs by 2 steps.
        let ys = [0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0];
        let mut xs = [0.0; 10];
        xs[2..10].copy_from_slice(&ys[..8]);
        let at_lag = lagged_pearson(&xs, &ys, 2).unwrap();
        let at_zero = lagged_pearson(&xs, &ys, 0).unwrap();
        assert!(at_lag > 0.9);
        assert!(at_zero < at_lag);
        assert_eq!(lagged_pearson(&xs, &ys, 10), None);
    }

    #[test]
    fn t_quantiles_match_table() {
        assert!((t_095(1) - 6.314).abs() < 1e-9);
        assert!((t_095(10) - 1.812).abs() < 1e-9);
        assert!((t_095(1_000_000) - 1.645).abs() < 1e-3);
        // Interpolated values are between neighbours and monotone.
        let t11 = t_095(11);
        assert!(t11 < t_095(10) && t11 > t_095(12));
        let t90 = t_095(90);
        assert!(t90 < t_095(60) && t90 > t_095(120));
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn t_zero_df_panics() {
        t_095(0);
    }
}
