//! The transient-bottleneck detector (paper §III): classify each
//! fine-grained interval of each server by correlating its load against the
//! congestion point N\*, find congestion episodes, and rank servers by how
//! often they are transiently bottlenecked.

use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::{NodeId, Span};
use serde::{Deserialize, Serialize};

use crate::nstar::{self, NStar, NStarConfig};
use crate::series::{LoadSeries, SeriesSet, ThroughputSeries, Window};

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// N\* intervention-analysis parameters.
    pub nstar: NStarConfig,
    /// An interval whose load exceeds N\* but whose normalized throughput
    /// is below this fraction of `TP_max` is a *POI* — the high-load /
    /// zero-throughput signature of a frozen server (Fig 9b).
    pub poi_tput_frac: f64,
    /// Loads below this are considered idle.
    pub idle_load: f64,
    /// Before estimating N\*, intervals whose throughput is below this
    /// fraction of the 95th-percentile throughput *and* whose load is
    /// non-idle are excluded: they are freeze outliers that lie off the
    /// main sequence curve (the paper's POIs "contradict our expectation of
    /// the main sequence curve" — they must not drag its binned averages).
    pub mainseq_filter_frac: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            nstar: NStarConfig::default(),
            poi_tput_frac: 0.05,
            idle_load: 0.05,
            mainseq_filter_frac: 0.05,
        }
    }
}

/// Classification of one fine-grained interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalState {
    /// Effectively no requests present.
    Idle,
    /// Load at or below N\* (or N\* unobservable): not congested.
    Normal,
    /// Load above N\*: requests are congesting (a transient bottleneck
    /// interval).
    Congested,
    /// Congested *and* producing almost no throughput: the server is frozen
    /// (the POI signature of stop-the-world GC).
    Frozen,
}

/// A maximal run of consecutive congested (or frozen) intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// Index of the first congested interval.
    pub start_index: usize,
    /// Number of consecutive congested intervals.
    pub intervals: usize,
}

impl Episode {
    /// Episode duration given the analysis grid.
    pub fn duration(&self, window: &Window) -> SimDuration {
        window.interval * self.intervals as u64
    }

    /// Start time of the episode.
    pub fn start(&self, window: &Window) -> SimTime {
        window.bounds(self.start_index).0
    }
}

/// Full fine-grained analysis of one server over one window.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// The analyzed server.
    pub server: NodeId,
    /// Analysis grid.
    pub window: Window,
    /// Fine-grained load series.
    pub load: LoadSeries,
    /// Fine-grained throughput series.
    pub tput: ThroughputSeries,
    /// Estimated congestion point, if the server showed saturation.
    pub nstar: Option<NStar>,
    /// Per-interval classification.
    pub states: Vec<IntervalState>,
}

impl ServerReport {
    /// Number of congested intervals (including frozen ones).
    pub fn congested_intervals(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, IntervalState::Congested | IntervalState::Frozen))
            .count()
    }

    /// Number of frozen (POI) intervals.
    pub fn frozen_intervals(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, IntervalState::Frozen))
            .count()
    }

    /// Fraction of non-idle intervals that are congested — the "how often
    /// is this server a transient bottleneck" score used for ranking.
    pub fn congestion_ratio(&self) -> f64 {
        let active = self
            .states
            .iter()
            .filter(|s| !matches!(s, IntervalState::Idle))
            .count();
        if active == 0 {
            return 0.0;
        }
        self.congested_intervals() as f64 / active as f64
    }

    /// Maximal runs of consecutive congested/frozen intervals.
    pub fn episodes(&self) -> Vec<Episode> {
        let mut out = Vec::new();
        let mut run: Option<Episode> = None;
        for (i, s) in self.states.iter().enumerate() {
            let congested = matches!(s, IntervalState::Congested | IntervalState::Frozen);
            match (&mut run, congested) {
                (None, true) => {
                    run = Some(Episode {
                        start_index: i,
                        intervals: 1,
                    });
                }
                (Some(e), true) => e.intervals += 1,
                (Some(e), false) => {
                    out.push(*e);
                    run = None;
                }
                (None, false) => {}
            }
        }
        if let Some(e) = run {
            out.push(e);
        }
        out
    }

    /// A one-paragraph human-readable verdict for this server.
    pub fn render_summary(&self, name: &str) -> String {
        let episodes = self.episodes();
        let longest = episodes.iter().map(|e| e.intervals).max().unwrap_or(0);
        let interval_ms = self.window.interval.as_millis_f64();
        match &self.nstar {
            None => format!(
                "{name}: never saturated in this window ({} intervals at {:.0} ms);                  no congestion point observable",
                self.states.len(),
                interval_ms
            ),
            Some(est) => format!(
                "{name}: N* = {:.1}, TP_max = {:.0} units/s; {} of {} intervals                  congested ({} frozen) across {} episodes, longest {:.0} ms",
                est.nstar,
                est.tp_max,
                self.congested_intervals(),
                self.states.len(),
                self.frozen_intervals(),
                episodes.len(),
                longest as f64 * interval_ms
            ),
        }
    }

    /// `(load, normalized throughput rate)` samples of congested intervals —
    /// the inputs to plateau analysis (Fig 12).
    pub fn congested_samples(&self) -> Vec<(f64, f64)> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, IntervalState::Congested | IntervalState::Frozen))
            .map(|(i, _)| (self.load.get(i), self.tput.unit_rate(i)))
            .collect()
    }
}

/// Runs the full §III pipeline for one server: load + normalized throughput
/// series, N\* estimation, and per-interval classification.
pub fn analyze_server(
    spans: &[Span],
    server: NodeId,
    window: Window,
    services: &ServiceTimeTable,
    work_unit: SimDuration,
    cfg: &DetectorConfig,
) -> ServerReport {
    fgbd_obsv::span!("detect");
    // One fused pass over the spans builds both series (see `SeriesSet`).
    let set = SeriesSet::from_spans(spans, window, services, work_unit);
    let (load, tput) = (set.load(), set.tput());
    let rates = tput.unit_rates();
    let nstar = fit_mainseq(load.values(), &rates, cfg);
    let states = classify(&load, &rates, nstar.as_ref(), cfg);
    ServerReport {
        server,
        window,
        load,
        tput,
        nstar,
        states,
    }
}

/// Fits the main sequence curve (§III-B) over raw per-interval samples and
/// returns the estimated congestion point, if observable.
///
/// This is the exact fitting step of [`analyze_server`], factored out so
/// the online detector ([`crate::online`]) reuses it bit-for-bit: drop
/// freeze outliers (near-zero output at non-idle load) relative to the
/// 95th-percentile throughput, then run intervention analysis.
pub fn fit_mainseq(loads: &[f64], rates: &[f64], cfg: &DetectorConfig) -> Option<NStar> {
    let p95 = crate::stats::percentile(rates, 0.95).unwrap_or(0.0);
    let floor = cfg.mainseq_filter_frac * p95;
    let (main_loads, main_rates): (Vec<f64>, Vec<f64>) = loads
        .iter()
        .zip(rates)
        .filter(|&(&ld, &tp)| ld < cfg.idle_load || tp >= floor)
        .map(|(&ld, &tp)| (ld, tp))
        .unzip();
    nstar::estimate(&main_loads, &main_rates, &cfg.nstar)
}

/// Classifies one interval's `(load, normalized throughput rate)` sample
/// given the estimated congestion point. The single source of truth for
/// the §III state machine — both the batch [`classify`] and the online
/// detector call it.
#[inline]
pub fn classify_one(
    ld: f64,
    tp: f64,
    nstar: Option<&NStar>,
    cfg: &DetectorConfig,
) -> IntervalState {
    if ld < cfg.idle_load {
        return IntervalState::Idle;
    }
    let Some(est) = nstar else {
        return IntervalState::Normal;
    };
    if ld <= est.nstar {
        return IntervalState::Normal;
    }
    if tp < cfg.poi_tput_frac * est.tp_max {
        IntervalState::Frozen
    } else {
        IntervalState::Congested
    }
}

/// Classifies raw per-interval sample slices (see [`classify_one`]).
pub fn classify_values(
    loads: &[f64],
    rates: &[f64],
    nstar: Option<&NStar>,
    cfg: &DetectorConfig,
) -> Vec<IntervalState> {
    loads
        .iter()
        .zip(rates)
        .map(|(&ld, &tp)| classify_one(ld, tp, nstar, cfg))
        .collect()
}

/// Classifies each interval given the estimated congestion point.
pub fn classify(
    load: &LoadSeries,
    tput_rates: &[f64],
    nstar: Option<&NStar>,
    cfg: &DetectorConfig,
) -> Vec<IntervalState> {
    classify_values(load.values(), tput_rates, nstar, cfg)
}

/// Attributes freeze (POI) intervals to their originating tier.
///
/// Stop-the-world freezes propagate *upstream*: while a JVM is frozen, the
/// servers calling into it hold blocked threads and also show high-load /
/// zero-output intervals. Given per-server reports ordered outermost tier
/// first (all on the same analysis grid), the origin of each frozen
/// interval is the **deepest** tier frozen in that interval; a server whose
/// frozen intervals always coincide with a deeper frozen tier is only a
/// victim of push-back.
///
/// Returns, per report, the number of frozen intervals *originating* at
/// that server (not explainable by a deeper freeze).
///
/// # Panics
///
/// Panics if the reports are not on identical grids.
pub fn freeze_origins(reports_by_tier: &[Vec<&ServerReport>]) -> Vec<Vec<usize>> {
    let grid = reports_by_tier
        .iter()
        .flatten()
        .map(|r| r.window)
        .next()
        .expect("at least one report");
    for r in reports_by_tier.iter().flatten() {
        assert!(r.window == grid, "reports must share one analysis grid");
    }
    let n = grid.len();
    // For each interval, is any server at tier >= t frozen?
    let tiers = reports_by_tier.len();
    let mut frozen_at_or_below = vec![vec![false; n]; tiers + 1];
    for t in (0..tiers).rev() {
        let (current, deeper) = frozen_at_or_below.split_at_mut(t + 1);
        for (i, slot) in current[t].iter_mut().enumerate() {
            let here = reports_by_tier[t]
                .iter()
                .any(|r| matches!(r.states[i], IntervalState::Frozen));
            *slot = here || deeper[0][i];
        }
    }
    reports_by_tier
        .iter()
        .enumerate()
        .map(|(t, tier_reports)| {
            tier_reports
                .iter()
                .map(|r| {
                    (0..n)
                        .filter(|&i| {
                            matches!(r.states[i], IntervalState::Frozen)
                                && !frozen_at_or_below[t + 1][i]
                        })
                        .count()
                })
                .collect()
        })
        .collect()
}

/// Ranks servers by congestion ratio, descending — the last step of the
/// paper's method ("after we apply the above analysis to each component
/// server … we can detect which servers have encountered frequent transient
/// bottlenecks").
pub fn rank_bottlenecks(reports: &[ServerReport]) -> Vec<(NodeId, f64)> {
    let mut ranked: Vec<(NodeId, f64)> = reports
        .iter()
        .map(|r| (r.server, r.congestion_ratio()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ratio is finite"));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbd_trace::{ClassId, ConnId};

    fn span(a_us: u64, d_us: u64) -> Span {
        Span {
            server: NodeId(1),
            class: ClassId(0),
            arrival: SimTime::from_micros(a_us),
            departure: SimTime::from_micros(d_us),
            conn: ConnId(0),
            truth: None,
        }
    }

    /// A server serving one 10 ms-service request at a time, with a burst
    /// phase where far more requests are present than it can serve.
    fn workload_with_congestion() -> Vec<Span> {
        let mut spans = Vec::new();
        // Normal phase: one request at a time, 10 ms each -> load ~1.
        for i in 0..200u64 {
            spans.push(span(i * 10_000, i * 10_000 + 9_000));
        }
        // Burst at 2.0 s: 40 concurrent requests taking much longer while
        // only ~2 complete per 50 ms interval (serialized service).
        for j in 0..40u64 {
            spans.push(span(2_000_000, 2_050_000 + j * 5_000));
        }
        spans
    }

    fn services() -> ServiceTimeTable {
        let mut t = ServiceTimeTable::new();
        t.insert(NodeId(1), ClassId(0), SimDuration::from_millis(10));
        t
    }

    fn window() -> Window {
        Window::new(
            SimTime::ZERO,
            SimTime::from_millis(2_400),
            SimDuration::from_millis(50),
        )
    }

    #[test]
    fn detects_burst_as_congestion() {
        let report = analyze_server(
            &workload_with_congestion(),
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        let est = report.nstar.as_ref().expect("nstar should be estimable");
        assert!(est.nstar > 0.5 && est.nstar < 20.0, "nstar {}", est.nstar);
        assert!(report.congested_intervals() > 0, "burst not detected");
        // The congested intervals lie inside the burst region (after 2.0 s).
        for (i, s) in report.states.iter().enumerate() {
            if matches!(s, IntervalState::Congested | IntervalState::Frozen) {
                assert!(report.window.bounds(i).1 > SimTime::from_millis(2_000));
            }
        }
        // Episodes are contiguous and cover the congested intervals.
        let eps = report.episodes();
        assert!(!eps.is_empty());
        let total: usize = eps.iter().map(|e| e.intervals).sum();
        assert_eq!(total, report.congested_intervals());
    }

    #[test]
    fn quiet_server_reports_nothing() {
        // Load never above 1: no N* and no congestion.
        let spans: Vec<Span> = (0..100u64)
            .map(|i| span(i * 20_000, i * 20_000 + 5_000))
            .collect();
        let report = analyze_server(
            &spans,
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        assert_eq!(report.congested_intervals(), 0);
        assert_eq!(report.congestion_ratio(), 0.0);
        assert!(report.episodes().is_empty());
    }

    #[test]
    fn frozen_intervals_require_high_load_and_no_output() {
        let mut spans = workload_with_congestion();
        // A freeze: 30 requests arrive at 2.2 s and none complete until
        // 2.35 s -> intervals with high load, zero completions.
        for _ in 0..30 {
            spans.push(span(2_200_000, 2_360_000));
        }
        let report = analyze_server(
            &spans,
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        assert!(report.frozen_intervals() > 0, "freeze not flagged");
        assert!(report.frozen_intervals() <= report.congested_intervals());
    }

    #[test]
    fn ranking_orders_by_congestion() {
        let congested = analyze_server(
            &workload_with_congestion(),
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        let quiet_spans: Vec<Span> = (0..100u64)
            .map(|i| span(i * 20_000, i * 20_000 + 5_000))
            .collect();
        let mut quiet = analyze_server(
            &quiet_spans,
            NodeId(2),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        quiet.server = NodeId(2);
        let ranked = rank_bottlenecks(&[quiet, congested]);
        assert_eq!(ranked[0].0, NodeId(1));
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn summary_renders_both_outcomes() {
        let congested = analyze_server(
            &workload_with_congestion(),
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        let text = congested.render_summary("mysql-1");
        assert!(text.contains("mysql-1: N* ="), "{text}");
        assert!(text.contains("episodes"), "{text}");

        let quiet_spans: Vec<Span> = (0..100u64)
            .map(|i| span(i * 20_000, i * 20_000 + 5_000))
            .collect();
        let quiet = analyze_server(
            &quiet_spans,
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        assert!(quiet.render_summary("idle").contains("never saturated"));
    }

    #[test]
    fn freeze_origins_attribute_to_the_deepest_frozen_tier() {
        // Build two reports on the same grid: the "app" freezes in interval
        // 45-46; the "web" (upstream) shows propagated freezes in the same
        // intervals plus one of its own later.
        let mut app_spans = workload_with_congestion();
        for _ in 0..30 {
            app_spans.push(span(2_200_000, 2_360_000));
        }
        let app = analyze_server(
            &app_spans,
            NodeId(2),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        assert!(app.frozen_intervals() > 0, "app must freeze");
        // The web report: clone the app's state pattern (propagated) —
        // construct via the same spans, then also verify an origin-only
        // freeze is counted when the deeper tier is clear.
        let web = app.clone();
        let origins = freeze_origins(&[vec![&web], vec![&app]]);
        // All of web's freezes coincide with app's: zero originate at web.
        assert_eq!(origins[0][0], 0, "web freezes are propagated");
        assert_eq!(origins[1][0], app.frozen_intervals(), "app originates all");
    }

    #[test]
    #[should_panic(expected = "share one analysis grid")]
    fn freeze_origins_reject_mismatched_grids() {
        let report = analyze_server(
            &workload_with_congestion(),
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        let other_window = Window::new(
            SimTime::ZERO,
            SimTime::from_millis(2_400),
            SimDuration::from_millis(100),
        );
        let other = analyze_server(
            &workload_with_congestion(),
            NodeId(2),
            other_window,
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        freeze_origins(&[vec![&report], vec![&other]]);
    }

    #[test]
    fn congested_samples_expose_plateau_inputs() {
        let report = analyze_server(
            &workload_with_congestion(),
            NodeId(1),
            window(),
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        let samples = report.congested_samples();
        assert_eq!(samples.len(), report.congested_intervals());
        let est = report.nstar.as_ref().unwrap();
        assert!(samples.iter().all(|&(ld, _)| ld > est.nstar));
    }
}
