//! Congestion-point (N\*) determination by statistical intervention
//! analysis — the paper's §III-C, Equations 1 and 2.
//!
//! Given per-interval `(load, throughput)` samples, the load range is split
//! into `k` even bins and the mean throughput per bin forms the empirical
//! "main sequence curve". The slope sequence `δᵢ` between consecutive
//! non-empty bins is nearly constant (`δ₀`) while the server is unsaturated
//! and collapses once load exceeds N\*. Walking the prefix `δ₁…δ_{n₀}`, N\*
//! is the first bin where the one-sided 90%-confidence lower bound of the
//! slope mean, `δ̄ − t(0.95, n₀−1)·s.d.`, drops below `tol = tol_frac·δ₀`.

use serde::{Deserialize, Serialize};

use crate::stats::{mean, percentile, std_dev, t_095};

/// Parameters of the intervention analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NStarConfig {
    /// Number of even load bins (`k`; the paper suggests 100).
    pub bins: usize,
    /// Tolerance as a fraction of the initial slope (`0.2·δ₀` in the
    /// paper).
    pub tol_frac: f64,
    /// Minimum samples a bin needs to participate (empty/near-empty bins
    /// are skipped).
    pub min_bin_samples: usize,
}

impl Default for NStarConfig {
    fn default() -> Self {
        NStarConfig {
            bins: 100,
            tol_frac: 0.2,
            min_bin_samples: 1,
        }
    }
}

/// The estimated congestion point and the evidence behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NStar {
    /// The congestion point: the minimum load beyond which throughput stops
    /// growing.
    pub nstar: f64,
    /// The saturated throughput level (mean throughput of bins at or above
    /// N\*); the Utilization-Law `TP_max`.
    pub tp_max: f64,
    /// The binned main-sequence curve: (mean load, mean throughput) per
    /// non-empty bin, ascending by load.
    pub curve: Vec<(f64, f64)>,
    /// The slope sequence δᵢ between consecutive curve points.
    pub slopes: Vec<f64>,
    /// Index into `curve` where the intervention test fired.
    pub knee_index: usize,
}

/// Estimates N\* from `(load, throughput)` interval samples.
///
/// Returns `None` when the samples never show saturation — fewer than three
/// populated bins, or a slope sequence whose confidence bound never crosses
/// the tolerance (the server was simply never congested; every observed
/// load is then below N\*).
///
/// # Panics
///
/// Panics if `cfg.bins < 2`, if `cfg.tol_frac` is not in `(0, 1)`, or if
/// the two slices differ in length.
pub fn estimate(loads: &[f64], tputs: &[f64], cfg: &NStarConfig) -> Option<NStar> {
    assert!(cfg.bins >= 2, "need at least two bins");
    assert!(
        cfg.tol_frac > 0.0 && cfg.tol_frac < 1.0,
        "tol_frac must be in (0,1)"
    );
    assert_eq!(loads.len(), tputs.len(), "series length mismatch");
    fgbd_obsv::counter!("nstar.fits", 1);

    let mut populated = curve_bins(loads, tputs, cfg);
    // Idle intervals produce a zero-load bin that carries no slope
    // information; drop it (the paper's Nmin is effectively the smallest
    // load at which the server does work).
    populated.retain(|&(ld, _)| ld > 0.0);
    if populated.len() < 3 {
        return None;
    }

    // Slope sequence (Equation 1).
    let mut slopes = Vec::with_capacity(populated.len());
    for (i, &(ld, tp)) in populated.iter().enumerate() {
        if i == 0 {
            if ld <= 0.0 {
                return None;
            }
            slopes.push(tp / ld);
        } else {
            let (pld, ptp) = populated[i - 1];
            let dld = ld - pld;
            if dld <= 0.0 {
                return None;
            }
            slopes.push((tp - ptp) / dld);
        }
    }

    // Intervention test (Equation 2): find the first prefix whose lower
    // confidence bound falls below tol. Two guards make the test robust on
    // concave empirical curves (where slopes decline gradually rather than
    // dropping off a clean piecewise-linear knee): the *local* slope at the
    // candidate bin must itself be below tol, and the slopes from the
    // candidate onward must stay below tol on average — i.e. the curve has
    // genuinely flattened, not merely wobbled.
    let delta0 = slopes[0];
    if delta0 <= 0.0 {
        return None;
    }
    let tol = cfg.tol_frac * delta0;
    // A knee is only a knee if the curve has actually reached its ceiling
    // there: quantization at micro loads (one completion per interval)
    // creates false local plateaus far below the true capacity. The ceiling
    // reference is a high percentile of the bin throughputs (robust to a
    // single drain-outlier bin: 75th percentile).
    let tp_bins: Vec<f64> = populated.iter().map(|&(_, tp)| tp).collect();
    let max_tp = percentile(&tp_bins, 0.75).unwrap_or(0.0);
    for n0 in 2..=slopes.len() {
        let prefix = &slopes[..n0];
        let lower = mean(prefix) - t_095((n0 - 1) as u32) * std_dev(prefix);
        let local_flat = slopes[n0 - 1] < tol;
        let stays_flat = mean(&slopes[n0 - 1..]) < tol;
        let at_ceiling = populated[n0 - 1].1 >= 0.8 * max_tp;

        if lower < tol && local_flat && stays_flat && at_ceiling {
            let knee = n0 - 1;
            let nstar = populated[knee].0;
            let sat: Vec<f64> = populated[knee..].iter().map(|&(_, tp)| tp).collect();
            return Some(NStar {
                nstar,
                tp_max: mean(&sat),
                curve: populated,
                slopes,
                knee_index: knee,
            });
        }
        // Each prefix that fails the intervention test is one retry of the
        // slope fit with the next bin folded in.
        fgbd_obsv::counter!("nstar.slope_retries", 1);
    }
    fgbd_obsv::counter!("nstar.no_knee", 1);
    None
}

/// Alternative estimator: least-squares **two-segment fit**. Fits
/// `tp = TP_max · min(load / N*, 1)` to the binned curve by grid search
/// over the knee position, minimizing squared error. More robust than the
/// intervention test on smoothly concave curves, at the cost of assuming
/// the two-segment shape; used as a cross-check and in the ablation bench.
///
/// Returns `None` under the same degeneracies as [`estimate`].
///
/// # Panics
///
/// Panics under the same conditions as [`estimate`].
pub fn estimate_two_segment(loads: &[f64], tputs: &[f64], cfg: &NStarConfig) -> Option<NStar> {
    assert!(cfg.bins >= 2, "need at least two bins");
    assert_eq!(loads.len(), tputs.len(), "series length mismatch");
    let mut curve = curve_bins(loads, tputs, cfg);
    curve.retain(|&(ld, _)| ld > 0.0);
    if curve.len() < 3 {
        return None;
    }
    let mut best: Option<(f64, usize, f64, f64)> = None; // (sse, knee, nstar, tpmax)
                                                         // Candidate knees at each interior curve point.
    for k in 1..curve.len() - 1 {
        let nstar = curve[k].0;
        // TP_max = mean of the plateau segment.
        let plateau: Vec<f64> = curve[k..].iter().map(|&(_, tp)| tp).collect();
        let tp_max = mean(&plateau);
        if tp_max <= 0.0 {
            continue;
        }
        let sse: f64 = curve
            .iter()
            .map(|&(ld, tp)| {
                let fit = tp_max * (ld / nstar).min(1.0);
                (tp - fit).powi(2)
            })
            .sum();
        if best.is_none_or(|(b, _, _, _)| sse < b) {
            best = Some((sse, k, nstar, tp_max));
        }
    }
    let (_, knee, nstar, tp_max) = best?;
    // Degenerate "knee at the very end" means the curve never flattened.
    if knee + 1 >= curve.len() {
        return None;
    }
    // Reject fits where the rising segment explains nothing (flat data) or
    // the plateau is still rising strongly (never saturated).
    let rise_slope = tp_max / nstar;
    let tail_slope = {
        let (l0, t0) = curve[knee];
        let (l1, t1) = *curve.last().expect("non-empty");
        if l1 > l0 {
            (t1 - t0) / (l1 - l0)
        } else {
            0.0
        }
    };
    if rise_slope <= 0.0 || tail_slope > cfg.tol_frac * rise_slope {
        return None;
    }
    let slopes = slope_sequence(&curve)?;
    Some(NStar {
        nstar,
        tp_max,
        curve,
        slopes,
        knee_index: knee,
    })
}

/// Alternative estimator: the paper's intervention analysis run over
/// per-bin **median** throughput instead of means — robust to freeze
/// outliers without pre-filtering.
///
/// # Panics
///
/// Panics under the same conditions as [`estimate`].
pub fn estimate_median(loads: &[f64], tputs: &[f64], cfg: &NStarConfig) -> Option<NStar> {
    assert!(cfg.bins >= 2, "need at least two bins");
    assert_eq!(loads.len(), tputs.len(), "series length mismatch");
    let mut curve = median_curve_bins(loads, tputs, cfg);
    curve.retain(|&(ld, _)| ld > 0.0);
    estimate_on_curve(curve, cfg)
}

/// Runs the Equation 1/2 machinery on a pre-binned curve.
fn estimate_on_curve(curve: Vec<(f64, f64)>, cfg: &NStarConfig) -> Option<NStar> {
    if curve.len() < 3 {
        return None;
    }
    let slopes = slope_sequence(&curve)?;
    let delta0 = slopes[0];
    if delta0 <= 0.0 {
        return None;
    }
    let tol = cfg.tol_frac * delta0;
    let tp_bins: Vec<f64> = curve.iter().map(|&(_, tp)| tp).collect();
    let max_tp = percentile(&tp_bins, 0.75).unwrap_or(0.0);
    for n0 in 2..=slopes.len() {
        let prefix = &slopes[..n0];
        let lower = mean(prefix) - t_095((n0 - 1) as u32) * std_dev(prefix);
        let local_flat = slopes[n0 - 1] < tol;
        let stays_flat = mean(&slopes[n0 - 1..]) < tol;
        if lower < tol && local_flat && stays_flat && curve[n0 - 1].1 >= 0.8 * max_tp {
            let knee = n0 - 1;
            let nstar = curve[knee].0;
            let sat: Vec<f64> = curve[knee..].iter().map(|&(_, tp)| tp).collect();
            return Some(NStar {
                nstar,
                tp_max: mean(&sat),
                curve,
                slopes,
                knee_index: knee,
            });
        }
    }
    None
}

fn slope_sequence(curve: &[(f64, f64)]) -> Option<Vec<f64>> {
    let mut slopes = Vec::with_capacity(curve.len());
    for (i, &(ld, tp)) in curve.iter().enumerate() {
        if i == 0 {
            if ld <= 0.0 {
                return None;
            }
            slopes.push(tp / ld);
        } else {
            let (pld, ptp) = curve[i - 1];
            if ld <= pld {
                return None;
            }
            slopes.push((tp - ptp) / (ld - pld));
        }
    }
    Some(slopes)
}

/// Bootstrap uncertainty quantification for the congestion point: how much
/// does N\* move under resampling of the interval population?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NStarBootstrap {
    /// The point estimate on the full sample.
    pub point: f64,
    /// Mean of the bootstrap estimates.
    pub mean: f64,
    /// 2.5th percentile of the bootstrap estimates.
    pub lo95: f64,
    /// 97.5th percentile of the bootstrap estimates.
    pub hi95: f64,
    /// Fraction of resamples on which an N\* was estimable at all.
    pub success_rate: f64,
}

/// Bootstraps [`estimate`] over `resamples` resamples (with replacement) of
/// the `(load, throughput)` intervals.
///
/// Returns `None` when the full-sample estimate fails or fewer than half
/// the resamples produce an estimate (the knee is not robustly present).
///
/// # Panics
///
/// Panics if `resamples == 0` or under [`estimate`]'s conditions.
pub fn estimate_bootstrap(
    loads: &[f64],
    tputs: &[f64],
    cfg: &NStarConfig,
    resamples: usize,
    seed: u64,
) -> Option<NStarBootstrap> {
    assert!(resamples > 0, "need at least one resample");
    let point = estimate(loads, tputs, cfg)?.nstar;
    let n = loads.len();
    let mut dice = fgbd_des::Dice::seed(seed);
    let mut estimates = Vec::with_capacity(resamples);
    let mut rl = Vec::with_capacity(n);
    let mut rt = Vec::with_capacity(n);
    for _ in 0..resamples {
        rl.clear();
        rt.clear();
        for _ in 0..n {
            let i = dice.index(n);
            rl.push(loads[i]);
            rt.push(tputs[i]);
        }
        if let Some(est) = estimate(&rl, &rt, cfg) {
            estimates.push(est.nstar);
        }
    }
    let success_rate = estimates.len() as f64 / resamples as f64;
    if success_rate < 0.5 {
        return None;
    }
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| estimates[((estimates.len() - 1) as f64 * p).round() as usize];
    Some(NStarBootstrap {
        point,
        mean: mean(&estimates),
        lo95: q(0.025),
        hi95: q(0.975),
        success_rate,
    })
}

/// Like [`curve_bins`] but with per-bin median throughput.
pub fn median_curve_bins(loads: &[f64], tputs: &[f64], cfg: &NStarConfig) -> Vec<(f64, f64)> {
    assert_eq!(loads.len(), tputs.len(), "series length mismatch");
    let finite: Vec<usize> = (0..loads.len())
        .filter(|&i| loads[i].is_finite() && tputs[i].is_finite())
        .collect();
    if finite.is_empty() {
        return Vec::new();
    }
    let lmin = finite
        .iter()
        .map(|&i| loads[i])
        .fold(f64::INFINITY, f64::min);
    let lmax = finite
        .iter()
        .map(|&i| loads[i])
        .fold(f64::NEG_INFINITY, f64::max);
    if lmax <= lmin {
        return Vec::new();
    }
    let width = (lmax - lmin) / cfg.bins as f64;
    let mut bins: Vec<(f64, Vec<f64>)> = vec![(0.0, Vec::new()); cfg.bins];
    for &i in &finite {
        let b = (((loads[i] - lmin) / width) as usize).min(cfg.bins - 1);
        bins[b].0 += loads[i];
        bins[b].1.push(tputs[i]);
    }
    bins.into_iter()
        .filter(|(_, tps)| tps.len() >= cfg.min_bin_samples.max(1))
        .map(|(lsum, mut tps)| {
            let n = tps.len();
            tps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (lsum / n as f64, tps[n / 2])
        })
        .collect()
}

/// Bins `(load, throughput)` samples into `cfg.bins` even load intervals
/// and returns the per-bin mean curve, ascending by load.
pub fn curve_bins(loads: &[f64], tputs: &[f64], cfg: &NStarConfig) -> Vec<(f64, f64)> {
    assert_eq!(loads.len(), tputs.len(), "series length mismatch");
    let finite: Vec<usize> = (0..loads.len())
        .filter(|&i| loads[i].is_finite() && tputs[i].is_finite())
        .collect();
    if finite.is_empty() {
        return Vec::new();
    }
    let lmin = finite
        .iter()
        .map(|&i| loads[i])
        .fold(f64::INFINITY, f64::min);
    let lmax = finite
        .iter()
        .map(|&i| loads[i])
        .fold(f64::NEG_INFINITY, f64::max);
    if lmax <= lmin {
        return Vec::new();
    }
    let width = (lmax - lmin) / cfg.bins as f64;
    let mut sums = vec![(0.0f64, 0.0f64, 0usize); cfg.bins];
    for &i in &finite {
        let b = (((loads[i] - lmin) / width) as usize).min(cfg.bins - 1);
        sums[b].0 += loads[i];
        sums[b].1 += tputs[i];
        sums[b].2 += 1;
    }
    sums.into_iter()
        .filter(|&(_, _, n)| n >= cfg.min_bin_samples.max(1))
        .map(|(l, t, n)| (l / n as f64, t / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic M/M-like main sequence: throughput rises linearly to a
    /// ceiling at load 10, then stays flat.
    fn synthetic_samples(knee: f64, ceil: f64, max_load: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut loads = Vec::with_capacity(n);
        let mut tputs = Vec::with_capacity(n);
        for i in 0..n {
            let ld = max_load * (i as f64 + 0.5) / n as f64;
            let tp = if ld < knee { ceil * ld / knee } else { ceil };
            loads.push(ld);
            tputs.push(tp);
        }
        (loads, tputs)
    }

    #[test]
    fn finds_knee_of_clean_curve() {
        let (loads, tputs) = synthetic_samples(10.0, 4_000.0, 50.0, 5_000);
        let est = estimate(&loads, &tputs, &NStarConfig::default()).expect("knee expected");
        // The intervention test fires on the first bin after the knee, so
        // the estimate is biased slightly high — the paper's semantics
        // ("minimum load beyond which the server starts to congest").
        assert!(
            est.nstar >= 9.0 && est.nstar <= 14.0,
            "nstar {} should be just above 10",
            est.nstar
        );
        assert!(
            (est.tp_max - 4_000.0).abs() < 150.0,
            "tp_max {}",
            est.tp_max
        );
        assert!(est.curve.len() > 50);
        assert_eq!(est.slopes.len(), est.curve.len());
    }

    #[test]
    fn noisy_curve_still_yields_knee() {
        let (loads, mut tputs) = synthetic_samples(15.0, 3_000.0, 60.0, 4_000);
        // Deterministic pseudo-noise, +-10%.
        for (i, tp) in tputs.iter_mut().enumerate() {
            let wiggle = ((i * 2_654_435_761) % 1_000) as f64 / 1_000.0 - 0.5;
            *tp *= 1.0 + 0.2 * wiggle;
        }
        let est = estimate(&loads, &tputs, &NStarConfig::default()).expect("knee expected");
        assert!(
            est.nstar > 8.0 && est.nstar < 25.0,
            "nstar {} out of range",
            est.nstar
        );
    }

    #[test]
    fn unsaturated_server_has_no_nstar() {
        // Linear throughput growth everywhere: never congested.
        let loads: Vec<f64> = (0..1_000).map(|i| i as f64 / 100.0 + 0.1).collect();
        let tputs: Vec<f64> = loads.iter().map(|l| 100.0 * l).collect();
        assert!(estimate(&loads, &tputs, &NStarConfig::default()).is_none());
    }

    #[test]
    fn too_few_samples_yield_none() {
        assert!(estimate(&[1.0, 2.0], &[10.0, 20.0], &NStarConfig::default()).is_none());
        assert!(estimate(&[], &[], &NStarConfig::default()).is_none());
        // All-equal loads collapse to one bin.
        let loads = vec![5.0; 100];
        let tputs = vec![50.0; 100];
        assert!(estimate(&loads, &tputs, &NStarConfig::default()).is_none());
    }

    #[test]
    fn min_bin_samples_filters_sparse_bins() {
        let (mut loads, mut tputs) = synthetic_samples(10.0, 4_000.0, 40.0, 2_000);
        // One far outlier that would stretch the bin range.
        loads.push(400.0);
        tputs.push(4_000.0);
        let cfg = NStarConfig {
            min_bin_samples: 3,
            ..NStarConfig::default()
        };
        let est = estimate(&loads, &tputs, &cfg).expect("knee expected");
        // The outlier bin (1 sample) is ignored; the knee estimate survives,
        // though coarser bins (outlier stretched the range) widen tolerance.
        assert!(est.nstar < 30.0, "nstar {}", est.nstar);
    }

    #[test]
    fn curve_bins_orders_by_load() {
        let loads = vec![5.0, 1.0, 3.0, 9.0, 7.0];
        let tputs = vec![50.0, 10.0, 30.0, 90.0, 70.0];
        let curve = curve_bins(
            &loads,
            &tputs,
            &NStarConfig {
                bins: 4,
                ..NStarConfig::default()
            },
        );
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(curve.len(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        estimate(&[1.0], &[], &NStarConfig::default());
    }

    #[test]
    fn bootstrap_brackets_the_knee() {
        let (loads, tputs) = synthetic_samples(10.0, 4_000.0, 50.0, 3_000);
        let boot =
            estimate_bootstrap(&loads, &tputs, &NStarConfig::default(), 60, 7).expect("bootstrap");
        assert!(boot.success_rate > 0.9, "success {}", boot.success_rate);
        assert!(
            boot.lo95 <= boot.point && boot.point <= boot.hi95 + 1.0,
            "point {} outside [{}, {}]",
            boot.point,
            boot.lo95,
            boot.hi95
        );
        // The interval straddles the true knee region.
        assert!(
            boot.lo95 > 5.0 && boot.hi95 < 20.0,
            "CI [{}, {}] too loose",
            boot.lo95,
            boot.hi95
        );
    }

    #[test]
    fn bootstrap_fails_gracefully_on_unsaturated_data() {
        let loads: Vec<f64> = (0..500).map(|i| i as f64 / 50.0 + 0.1).collect();
        let tputs: Vec<f64> = loads.iter().map(|l| 100.0 * l).collect();
        assert!(estimate_bootstrap(&loads, &tputs, &NStarConfig::default(), 20, 7).is_none());
    }

    #[test]
    fn two_segment_fit_agrees_on_clean_knee() {
        let (loads, tputs) = synthetic_samples(10.0, 4_000.0, 50.0, 5_000);
        let a = estimate(&loads, &tputs, &NStarConfig::default()).expect("paper estimator");
        let b = estimate_two_segment(&loads, &tputs, &NStarConfig::default())
            .expect("two-segment estimator");
        assert!(
            (a.nstar - b.nstar).abs() < 3.0,
            "{} vs {}",
            a.nstar,
            b.nstar
        );
        assert!((a.tp_max - b.tp_max).abs() < 200.0);
        // The LSQ knee is at worst one curve point off the true knee.
        assert!(b.nstar > 8.0 && b.nstar < 13.0, "lsq nstar {}", b.nstar);
    }

    #[test]
    fn two_segment_rejects_unsaturated_data() {
        let loads: Vec<f64> = (0..1_000).map(|i| i as f64 / 100.0 + 0.1).collect();
        let tputs: Vec<f64> = loads.iter().map(|l| 100.0 * l).collect();
        assert!(estimate_two_segment(&loads, &tputs, &NStarConfig::default()).is_none());
    }

    #[test]
    fn median_estimator_shrugs_off_freeze_outliers() {
        let (mut loads, mut tputs) = synthetic_samples(10.0, 4_000.0, 50.0, 5_000);
        // Inject freeze outliers: 5% of samples at high load with ~zero tput.
        for i in 0..250 {
            loads.push(30.0 + (i % 20) as f64);
            tputs.push(1.0);
        }
        let med =
            estimate_median(&loads, &tputs, &NStarConfig::default()).expect("median estimator");
        assert!(
            med.nstar > 8.0 && med.nstar < 15.0,
            "median nstar {} dragged by outliers",
            med.nstar
        );
        // The mean-based paper estimator (without the detector's outlier
        // pre-filter) is more disturbed or fails entirely.
        if let Some(raw) = estimate(&loads, &tputs, &NStarConfig::default()) {
            assert!(raw.nstar >= med.nstar - 2.0);
        }
    }

    #[test]
    fn median_curve_is_monotone_in_load() {
        let (loads, tputs) = synthetic_samples(12.0, 2_000.0, 40.0, 3_000);
        let curve = median_curve_bins(&loads, &tputs, &NStarConfig::default());
        assert!(curve.len() > 10);
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
