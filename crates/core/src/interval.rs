//! Automatic monitoring-interval selection — the paper's stated future work
//! (§III-D: "An automatic way to choose a proper time interval length is
//! part of our future research").
//!
//! §III-D frames the trade-off: too *short* an interval blurs the main
//! sequence curve (few completions per window make normalized throughput
//! noisy), while too *long* an interval averages the transient load peaks
//! away. This module scores candidate interval lengths on both axes and
//! picks the shortest candidate whose throughput noise is acceptable:
//!
//! * **noise(ℓ)** — the relative spread (coefficient of variation) of
//!   normalized throughput among the busiest intervals, where the curve
//!   should sit on its plateau. Shrinks as ℓ grows (more completions per
//!   window average the normalization error out).
//! * **peak retention(ℓ)** — how much of the fine-grained load peak the
//!   grid still sees (max load at ℓ relative to max load at the finest
//!   candidate). Shrinks as ℓ grows (Fig 8c: 1 s hides the transients).
//!
//! The selector returns the shortest candidate with
//! `noise ≤ max_noise`, falling back to the candidate with the best
//! noise-to-retention balance when none qualifies.

use fgbd_des::SimDuration;
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::Span;
use serde::{Deserialize, Serialize};

use crate::series::{SeriesSet, Window};
use crate::stats;

/// Parameters of the interval selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSelectConfig {
    /// Candidate interval lengths, ascending. Default: 10 ms to 1 s.
    pub candidates: Vec<SimDuration>,
    /// Highest acceptable throughput noise (CV) among busy intervals.
    pub max_noise: f64,
    /// Fraction of intervals (by load, descending) considered "busy" for
    /// the noise measurement.
    pub busy_fraction: f64,
}

impl Default for IntervalSelectConfig {
    fn default() -> Self {
        IntervalSelectConfig {
            candidates: [10u64, 20, 50, 100, 200, 500, 1_000]
                .into_iter()
                .map(SimDuration::from_millis)
                .collect(),
            max_noise: 0.12,
            busy_fraction: 0.1,
        }
    }
}

/// The per-candidate evidence the selector weighed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalScore {
    /// Candidate interval length.
    pub interval: SimDuration,
    /// Throughput CV among the busiest intervals (lower = cleaner curve).
    pub noise: f64,
    /// Max load at this grid relative to the finest grid (1.0 = nothing
    /// lost; toward 0 = transients averaged away).
    pub peak_retention: f64,
    /// Number of whole intervals the window yields at this length.
    pub intervals: usize,
}

/// The selector's decision with its full scoring table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSelection {
    /// The chosen interval length.
    pub chosen: SimDuration,
    /// Scores for every candidate, in candidate order.
    pub scores: Vec<IntervalScore>,
}

/// Picks a monitoring interval for `spans` over `window_bounds`.
///
/// Returns `None` when no candidate produces at least 20 whole intervals
/// with completions (too little data to score).
///
/// # Panics
///
/// Panics if `cfg.candidates` is empty or unsorted, or if `cfg.max_noise`
/// or `cfg.busy_fraction` is not positive.
pub fn auto_interval(
    spans: &[Span],
    start: fgbd_des::SimTime,
    end: fgbd_des::SimTime,
    services: &ServiceTimeTable,
    work_unit: SimDuration,
    cfg: &IntervalSelectConfig,
) -> Option<IntervalSelection> {
    assert!(!cfg.candidates.is_empty(), "need candidates");
    assert!(
        cfg.candidates.windows(2).all(|w| w[0] < w[1]),
        "candidates must ascend"
    );
    assert!(
        cfg.max_noise > 0.0 && cfg.busy_fraction > 0.0,
        "thresholds must be positive"
    );
    if end <= start {
        return None;
    }

    // Build the series once at the finest candidate; every coarser
    // candidate whose length is a multiple derives its series by exact
    // integer aggregation (bit-identical to a direct build, see
    // `SeriesSet::coarsen`), so the span list is walked once instead of
    // once per candidate. Non-multiple candidates fall back to a direct
    // build.
    let base_interval = cfg.candidates[0];
    let base = SeriesSet::from_spans(
        spans,
        Window::new(start, end, base_interval),
        services,
        work_unit,
    );

    let mut scores = Vec::with_capacity(cfg.candidates.len());
    let mut finest_peak: Option<f64> = None;
    for &interval in &cfg.candidates {
        let window = Window::new(start, end, interval);
        if window.len() < 20 {
            continue;
        }
        let (load, tput) = if interval == base_interval {
            (base.load(), base.tput())
        } else if interval.as_micros() % base_interval.as_micros() == 0 {
            let set = base.coarsen((interval.as_micros() / base_interval.as_micros()) as usize);
            (set.load(), set.tput())
        } else {
            let set = SeriesSet::from_spans(spans, window, services, work_unit);
            (set.load(), set.tput())
        };
        let peak = load.values().iter().copied().fold(0.0, f64::max);
        if finest_peak.is_none() {
            finest_peak = Some(peak);
        }
        let retention = match finest_peak {
            Some(p) if p > 0.0 => peak / p,
            _ => 1.0,
        };

        // Busiest intervals by load.
        let mut order: Vec<usize> = (0..load.len()).collect();
        order.sort_by(|&a, &b| {
            load.get(b)
                .partial_cmp(&load.get(a))
                .expect("loads are finite")
        });
        let busy_n = ((load.len() as f64 * cfg.busy_fraction).ceil() as usize).max(5);
        let busy_tputs: Vec<f64> = order
            .iter()
            .take(busy_n)
            .map(|&i| tput.unit_rate(i))
            .filter(|&t| t > 0.0)
            .collect();
        if busy_tputs.len() < 5 {
            continue;
        }
        let noise = stats::std_dev(&busy_tputs) / stats::mean(&busy_tputs).max(1e-9);
        scores.push(IntervalScore {
            interval,
            noise,
            peak_retention: retention,
            intervals: window.len(),
        });
    }
    if scores.is_empty() {
        return None;
    }
    // Shortest acceptable-noise candidate; otherwise the best balance of
    // low noise and high retention.
    let chosen = scores
        .iter()
        .find(|s| s.noise <= cfg.max_noise)
        .or_else(|| {
            scores.iter().min_by(|a, b| {
                let score_a = a.noise + (1.0 - a.peak_retention);
                let score_b = b.noise + (1.0 - b.peak_retention);
                score_a.partial_cmp(&score_b).expect("finite scores")
            })
        })?
        .interval;
    Some(IntervalSelection { chosen, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbd_des::{Dice, SimTime};
    use fgbd_trace::{ClassId, ConnId, NodeId};

    /// FCFS replay with mixed service times (1x and 3x) and periodic
    /// bursts — normalization noise shrinks with interval length while the
    /// burst peaks wash out, exactly the §III-D trade-off.
    fn bursty_mixed_spans() -> Vec<Span> {
        let mut dice = Dice::seed(21);
        let mut spans = Vec::new();
        let mut free_at = 0u64;
        let mut t = 0.0f64;
        while t < 60.0 {
            // Background 60/s plus a strong burst every 4 s.
            let in_burst = (t % 4.0) < 0.2;
            let rate = if in_burst { 400.0 } else { 60.0 };
            t += dice.exp(1.0 / rate);
            let a = (t * 1e6) as u64;
            let service = if dice.chance(0.3) { 18_000 } else { 6_000 };
            let start = a.max(free_at);
            let end = start + service;
            spans.push(Span {
                server: NodeId(1),
                class: ClassId(if service > 10_000 { 1 } else { 0 }),
                arrival: SimTime::from_micros(a),
                departure: SimTime::from_micros(end),
                conn: ConnId(0),
                truth: None,
            });
            free_at = end;
        }
        spans
    }

    fn services() -> ServiceTimeTable {
        let mut s = ServiceTimeTable::new();
        s.insert(NodeId(1), ClassId(0), SimDuration::from_micros(6_000));
        s.insert(NodeId(1), ClassId(1), SimDuration::from_micros(18_000));
        s
    }

    #[test]
    fn selector_prefers_mid_range_intervals() {
        let spans = bursty_mixed_spans();
        let sel = auto_interval(
            &spans,
            SimTime::ZERO,
            SimTime::from_secs(60),
            &services(),
            SimDuration::from_micros(6_000),
            &IntervalSelectConfig::default(),
        )
        .expect("selection expected");
        // Neither the noisiest extreme (10 ms) nor the blind one (1 s).
        assert!(
            sel.chosen >= SimDuration::from_millis(20)
                && sel.chosen <= SimDuration::from_millis(200),
            "chose {}",
            sel.chosen
        );
        // The scoring table exposes the §III-D monotonics: noise falls with
        // interval length; retention falls too.
        let noises: Vec<f64> = sel.scores.iter().map(|s| s.noise).collect();
        let rets: Vec<f64> = sel.scores.iter().map(|s| s.peak_retention).collect();
        assert!(
            noises.first() > noises.last(),
            "noise did not shrink: {noises:?}"
        );
        assert!(
            rets.first() > rets.last(),
            "retention did not shrink: {rets:?}"
        );
    }

    #[test]
    fn short_capture_yields_none() {
        let spans = vec![Span {
            server: NodeId(1),
            class: ClassId(0),
            arrival: SimTime::from_micros(0),
            departure: SimTime::from_micros(5_000),
            conn: ConnId(0),
            truth: None,
        }];
        assert!(auto_interval(
            &spans,
            SimTime::ZERO,
            SimTime::from_millis(100),
            &services(),
            SimDuration::from_millis(5),
            &IntervalSelectConfig::default(),
        )
        .is_none());
    }

    #[test]
    fn noise_threshold_steers_the_choice() {
        let spans = bursty_mixed_spans();
        let strict = auto_interval(
            &spans,
            SimTime::ZERO,
            SimTime::from_secs(60),
            &services(),
            SimDuration::from_micros(6_000),
            &IntervalSelectConfig {
                max_noise: 0.02,
                ..IntervalSelectConfig::default()
            },
        )
        .expect("selection");
        let lax = auto_interval(
            &spans,
            SimTime::ZERO,
            SimTime::from_secs(60),
            &services(),
            SimDuration::from_micros(6_000),
            &IntervalSelectConfig {
                max_noise: 0.5,
                ..IntervalSelectConfig::default()
            },
        )
        .expect("selection");
        assert!(
            lax.chosen <= strict.chosen,
            "lax {} strict {}",
            lax.chosen,
            strict.chosen
        );
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_candidates_panic() {
        let cfg = IntervalSelectConfig {
            candidates: vec![SimDuration::from_millis(50), SimDuration::from_millis(20)],
            ..IntervalSelectConfig::default()
        };
        auto_interval(
            &[],
            SimTime::ZERO,
            SimTime::from_secs(1),
            &ServiceTimeTable::new(),
            SimDuration::from_millis(10),
            &cfg,
        );
    }
}
