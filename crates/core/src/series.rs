//! Fine-grained load and throughput series (paper §III-A and §III-B).
//!
//! * **Load** (Fig 6): the time-weighted average number of concurrent
//!   requests in a server over each interval, computed exactly from span
//!   arrival/departure timestamps.
//! * **Throughput** (Fig 7): per interval, both the *straightforward* count
//!   of completed requests and the *normalized* throughput in work units —
//!   each completed request contributes `service_time / work_unit` units, so
//!   intervals with different request-class mixes become comparable.
//!
//! # Sweep-line construction
//!
//! Series are built in `O(S + I)` for `S` spans over `I` intervals. Each
//! span touches only its first and last overlapped interval directly; the
//! interior intervals it fully covers are recorded as a `+1/-1` pair in a
//! difference array and resolved by one prefix-sum pass at the end. The
//! naive per-span interval walk is `O(S × I)` in the worst case — a single
//! 3-second GC freeze holds hundreds of 10 ms intervals open, and every
//! blocked span pays for all of them.
//!
//! All accumulation is in integer microseconds; a value only becomes `f64`
//! through one final division per interval. That makes results independent
//! of span order, bit-for-bit reproducible, and — because integer sums are
//! associative — lets a coarse grid be derived *exactly* from a fine one
//! (see [`SeriesSet::coarsen`]). The straightforward `O(S × I)` versions
//! are kept in [`reference`] as the executable specification; property
//! tests assert bit-for-bit agreement.

use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
#[cfg(test)]
use fgbd_trace::NodeId;
use fgbd_trace::Span;

/// A uniform grid of analysis intervals `[start + i·len, start + (i+1)·len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start of the first interval.
    pub start: SimTime,
    /// End of the grid (exclusive); partial trailing intervals are dropped.
    pub end: SimTime,
    /// Interval length (the paper's monitoring granularity, e.g. 50 ms).
    pub interval: SimDuration,
}

impl Window {
    /// A grid covering `[start, end)` with `interval`-long cells.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `interval` is zero.
    pub fn new(start: SimTime, end: SimTime, interval: SimDuration) -> Window {
        assert!(end > start, "empty window");
        assert!(!interval.is_zero(), "interval must be positive");
        Window {
            start,
            end,
            interval,
        }
    }

    /// Number of whole intervals in the grid.
    pub fn len(&self) -> usize {
        ((self.end - self.start).as_micros() / self.interval.as_micros()) as usize
    }

    /// `true` if the grid holds no whole interval.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End of the last whole interval: `start + interval · len()`. At most
    /// `end`; anything between `grid_end` and `end` is the dropped partial
    /// trailing interval.
    pub fn grid_end(&self) -> SimTime {
        self.start + self.interval * self.len() as u64
    }

    /// The bounds of interval `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bounds(&self, i: usize) -> (SimTime, SimTime) {
        assert!(i < self.len(), "interval index out of range");
        let from = self.start + self.interval * i as u64;
        (from, from + self.interval)
    }

    /// The midpoint of interval `i` in seconds since the window start
    /// (convenient x-axis for timeline plots).
    pub fn mid_secs(&self, i: usize) -> f64 {
        let (from, to) = self.bounds(i);
        ((from - self.start) + (to - from) / 2).as_secs_f64()
    }
}

/// Sweep-line accumulator for per-interval overlap microseconds (the load
/// numerator): direct adds at a span's boundary intervals, a difference
/// array for the fully covered interior.
struct LoadAcc {
    start_us: u64,
    grid_end_us: u64,
    ilen_us: u64,
    overlap_us: Vec<u64>,
    /// `full_diff[i] - full_diff[i-1]` spans fully covering interval `i`;
    /// one extra slot so `last` can be decremented unconditionally.
    full_diff: Vec<i64>,
}

impl LoadAcc {
    fn new(window: Window) -> LoadAcc {
        let n = window.len();
        LoadAcc {
            start_us: window.start.as_micros(),
            grid_end_us: window.grid_end().as_micros(),
            ilen_us: window.interval.as_micros(),
            overlap_us: vec![0u64; n],
            full_diff: vec![0i64; n + 1],
        }
    }

    #[inline]
    fn add(&mut self, span: &Span) {
        let a = span.arrival.as_micros().max(self.start_us);
        let d = span.departure.as_micros().min(self.grid_end_us);
        if d <= a {
            return;
        }
        let rel_a = a - self.start_us;
        let rel_d = d - self.start_us;
        let first = (rel_a / self.ilen_us) as usize;
        let last = ((rel_d - 1) / self.ilen_us) as usize;
        if first == last {
            self.overlap_us[first] += rel_d - rel_a;
        } else {
            self.overlap_us[first] += (first as u64 + 1) * self.ilen_us - rel_a;
            self.overlap_us[last] += rel_d - last as u64 * self.ilen_us;
            self.full_diff[first + 1] += 1;
            self.full_diff[last] -= 1;
        }
    }

    fn finish(mut self) -> Vec<u64> {
        let mut covering = 0i64;
        for (i, v) in self.overlap_us.iter_mut().enumerate() {
            covering += self.full_diff[i];
            *v += covering as u64 * self.ilen_us;
        }
        self.overlap_us
    }
}

/// Accumulator for per-interval completion counts and service microseconds
/// (the normalized-throughput numerator), indexed by departure interval.
struct TputAcc {
    start_us: u64,
    grid_end_us: u64,
    ilen_us: u64,
    wu_us: u64,
    counts: Vec<u32>,
    service_us: Vec<u64>,
}

impl TputAcc {
    fn new(window: Window, work_unit: SimDuration) -> TputAcc {
        assert!(!work_unit.is_zero(), "work unit must be positive");
        let n = window.len();
        TputAcc {
            start_us: window.start.as_micros(),
            grid_end_us: window.grid_end().as_micros(),
            ilen_us: window.interval.as_micros(),
            wu_us: work_unit.as_micros(),
            counts: vec![0u32; n],
            service_us: vec![0u64; n],
        }
    }

    #[inline]
    fn add(&mut self, span: &Span, services: &ServiceTimeTable) {
        let dep = span.departure.as_micros();
        if dep < self.start_us || dep >= self.grid_end_us {
            return;
        }
        let i = ((dep - self.start_us) / self.ilen_us) as usize;
        self.counts[i] += 1;
        let service_us = services
            .get(span.server, span.class)
            .map(|s| s.as_micros())
            .unwrap_or_else(|| span.residence().as_micros().min(self.wu_us));
        self.service_us[i] += service_us;
    }
}

/// Materializes integer overlap sums into per-interval loads with one
/// division each — the only place an `f64` is produced.
fn load_values(overlap_us: &[u64], ilen_us: u64) -> Vec<f64> {
    overlap_us
        .iter()
        .map(|&us| us as f64 / ilen_us as f64)
        .collect()
}

/// Materializes integer service-time sums into work units, one division per
/// interval.
fn unit_values(service_us: &[u64], wu_us: u64) -> Vec<f64> {
    service_us
        .iter()
        .map(|&us| us as f64 / wu_us as f64)
        .collect()
}

/// Time-weighted concurrent-request counts per interval.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSeries {
    window: Window,
    values: Vec<f64>,
}

impl LoadSeries {
    /// Computes the load of a server over `window` from its spans
    /// (paper Fig 6: the average of the concurrency step function over each
    /// interval) in `O(spans + intervals)`.
    pub fn from_spans(spans: &[Span], window: Window) -> LoadSeries {
        let mut acc = LoadAcc::new(window);
        for s in spans {
            acc.add(s);
        }
        let ilen_us = window.interval.as_micros();
        LoadSeries {
            window,
            values: load_values(&acc.finish(), ilen_us),
        }
    }

    /// The grid this series lives on.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Per-interval loads (average concurrent requests).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Load of interval `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no intervals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Per-interval completion counts and normalized work units.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSeries {
    window: Window,
    counts: Vec<u32>,
    units: Vec<f64>,
    work_unit_s: f64,
}

impl ThroughputSeries {
    /// Computes both throughput variants over `window` in
    /// `O(spans + intervals)`.
    ///
    /// `services` supplies per-class service times, looked up per span by
    /// its own `(server, class)` — so `spans` may mix servers (tier-level
    /// aggregation). `work_unit` is the common divisor the units are
    /// expressed in (see [`ServiceTimeTable::work_unit`]). A span whose
    /// class has no service estimate contributes its own residence *capped
    /// at one work unit* — the residence of an unknown class is the only
    /// available stand-in for its service time, and the cap keeps a queued
    /// (residence ≫ service) outlier from inflating the interval; in
    /// practice every class seen in the analysis window was also seen
    /// during calibration.
    ///
    /// # Panics
    ///
    /// Panics if `work_unit` is zero.
    pub fn from_spans(
        spans: &[Span],
        window: Window,
        services: &ServiceTimeTable,
        work_unit: SimDuration,
    ) -> ThroughputSeries {
        let mut acc = TputAcc::new(window, work_unit);
        for s in spans {
            acc.add(s, services);
        }
        ThroughputSeries {
            window,
            units: unit_values(&acc.service_us, acc.wu_us),
            counts: acc.counts,
            work_unit_s: work_unit.as_secs_f64(),
        }
    }

    /// The grid this series lives on.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Completed requests in interval `i` (the "straightforward"
    /// throughput of Fig 7).
    pub fn count(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// Normalized throughput of interval `i` in work units (Fig 7's
    /// normalized row).
    pub fn units(&self, i: usize) -> f64 {
        self.units[i]
    }

    /// Straightforward throughput as requests per second.
    pub fn count_rate(&self, i: usize) -> f64 {
        f64::from(self.counts[i]) / self.window.interval.as_secs_f64()
    }

    /// Normalized throughput as work units per second.
    pub fn unit_rate(&self, i: usize) -> f64 {
        self.units[i] / self.window.interval.as_secs_f64()
    }

    /// Normalized throughput expressed as *equivalent requests per second*:
    /// work-unit rate scaled by `mean_service / work_unit`, so numbers are
    /// comparable to plain request rates when the mix is near-uniform (the
    /// scale the paper's MySQL figures use).
    pub fn equivalent_rate(&self, i: usize, mean_service: SimDuration) -> f64 {
        let ms = mean_service.as_secs_f64();
        if ms <= 0.0 {
            return self.unit_rate(i);
        }
        self.unit_rate(i) * self.work_unit_s / ms
    }

    /// All normalized per-second rates.
    pub fn unit_rates(&self) -> Vec<f64> {
        (0..self.units.len()).map(|i| self.unit_rate(i)).collect()
    }

    /// All straightforward per-second rates.
    pub fn count_rates(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.count_rate(i)).collect()
    }

    /// The work unit used, in seconds.
    pub fn work_unit_s(&self) -> f64 {
        self.work_unit_s
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if there are no intervals.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Load, counts, and work units over one grid, built in a single pass over
/// the spans and kept as raw integer-microsecond accumulators.
///
/// Holding the integers (instead of materialized `f64` series) is what
/// makes [`SeriesSet::coarsen`] exact: a coarse interval's accumulator is
/// the *sum* of its nested fine accumulators, and the one `f64` division
/// happens only at materialization — so a coarsened series is bit-for-bit
/// the series that [`SeriesSet::from_spans`] would compute directly on the
/// coarse grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSet {
    window: Window,
    overlap_us: Vec<u64>,
    counts: Vec<u32>,
    service_us: Vec<u64>,
    work_unit: SimDuration,
}

impl SeriesSet {
    /// Builds load and throughput accumulators in one pass over `spans`
    /// (`O(spans + intervals)`), sharing the span decode and branch
    /// predictor between the two updates.
    ///
    /// # Panics
    ///
    /// Panics if `work_unit` is zero.
    pub fn from_spans(
        spans: &[Span],
        window: Window,
        services: &ServiceTimeTable,
        work_unit: SimDuration,
    ) -> SeriesSet {
        fgbd_obsv::span!("series");
        let mut load = LoadAcc::new(window);
        let mut tput = TputAcc::new(window, work_unit);
        for s in spans {
            load.add(s);
            tput.add(s, services);
        }
        fgbd_obsv::counter!("series.spans", spans.len() as u64);
        fgbd_obsv::counter!("series.intervals", window.len() as u64);
        SeriesSet {
            window,
            overlap_us: load.finish(),
            counts: tput.counts,
            service_us: tput.service_us,
            work_unit,
        }
    }

    /// The grid this set lives on.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Materializes the load series.
    pub fn load(&self) -> LoadSeries {
        LoadSeries {
            window: self.window,
            values: load_values(&self.overlap_us, self.window.interval.as_micros()),
        }
    }

    /// Materializes the throughput series.
    pub fn tput(&self) -> ThroughputSeries {
        ThroughputSeries {
            window: self.window,
            counts: self.counts.clone(),
            units: unit_values(&self.service_us, self.work_unit.as_micros()),
            work_unit_s: self.work_unit.as_secs_f64(),
        }
    }

    /// Derives the set for the grid with `factor`-times-longer intervals by
    /// exact integer aggregation: coarse interval `j` sums fine intervals
    /// `[j·factor, (j+1)·factor)`. Bit-for-bit equal to building the coarse
    /// grid from the spans directly, at `O(intervals)` instead of
    /// `O(spans + intervals)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn coarsen(&self, factor: usize) -> SeriesSet {
        assert!(factor > 0, "coarsening factor must be positive");
        let coarse_window = Window {
            start: self.window.start,
            end: self.window.end,
            interval: self.window.interval * factor as u64,
        };
        // Floor division nests: len(k·i) == len(i) / k, so every coarse
        // interval is exactly `factor` fine intervals.
        let n = coarse_window.len();
        debug_assert_eq!(n, self.overlap_us.len() / factor);
        let sum_chunk = |v: &[u64]| -> Vec<u64> {
            v.chunks_exact(factor)
                .take(n)
                .map(|c| c.iter().sum())
                .collect()
        };
        SeriesSet {
            window: coarse_window,
            overlap_us: sum_chunk(&self.overlap_us),
            counts: self
                .counts
                .chunks_exact(factor)
                .take(n)
                .map(|c| c.iter().sum())
                .collect(),
            service_us: sum_chunk(&self.service_us),
            work_unit: self.work_unit,
        }
    }
}

/// Straightforward `O(spans × intervals)` constructions — the executable
/// specification the sweep-line engine is tested against (and benchmarked
/// over). Accumulation is in the same integer microseconds with the same
/// final division, so agreement is bit-for-bit, not within-epsilon.
pub mod reference {
    use super::*;

    /// Naive per-span interval walk for [`LoadSeries`].
    pub fn load_series(spans: &[Span], window: Window) -> LoadSeries {
        let n = window.len();
        let mut overlap_us = vec![0u64; n];
        let start_us = window.start.as_micros();
        let grid_end_us = window.grid_end().as_micros();
        let ilen_us = window.interval.as_micros();
        for s in spans {
            let a = s.arrival.as_micros().max(start_us);
            let d = s.departure.as_micros().min(grid_end_us);
            if d <= a {
                continue;
            }
            let first = ((a - start_us) / ilen_us) as usize;
            let last = ((d - start_us - 1) / ilen_us) as usize;
            for (i, v) in overlap_us.iter_mut().enumerate().take(last + 1).skip(first) {
                let from = start_us + ilen_us * i as u64;
                let to = from + ilen_us;
                let ov_from = a.max(from);
                let ov_to = d.min(to);
                if ov_to > ov_from {
                    *v += ov_to - ov_from;
                }
            }
        }
        LoadSeries {
            window,
            values: load_values(&overlap_us, ilen_us),
        }
    }

    /// Naive per-span construction of [`ThroughputSeries`].
    pub fn throughput_series(
        spans: &[Span],
        window: Window,
        services: &ServiceTimeTable,
        work_unit: SimDuration,
    ) -> ThroughputSeries {
        assert!(!work_unit.is_zero(), "work unit must be positive");
        let n = window.len();
        let mut counts = vec![0u32; n];
        let mut service_us = vec![0u64; n];
        let start_us = window.start.as_micros();
        let grid_end_us = window.grid_end().as_micros();
        let ilen_us = window.interval.as_micros();
        let wu_us = work_unit.as_micros();
        for s in spans {
            let dep = s.departure.as_micros();
            if dep < start_us || dep >= grid_end_us {
                continue;
            }
            let i = ((dep - start_us) / ilen_us) as usize;
            counts[i] += 1;
            service_us[i] += services
                .get(s.server, s.class)
                .map(|d| d.as_micros())
                .unwrap_or_else(|| s.residence().as_micros().min(wu_us));
        }
        ThroughputSeries {
            window,
            counts,
            units: unit_values(&service_us, wu_us),
            work_unit_s: work_unit.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbd_trace::{ClassId, ConnId};

    fn span(a_us: u64, d_us: u64, class: u16) -> Span {
        Span {
            server: NodeId(1),
            class: ClassId(class),
            arrival: SimTime::from_micros(a_us),
            departure: SimTime::from_micros(d_us),
            conn: ConnId(0),
            truth: None,
        }
    }

    fn win(end_ms: u64, interval_ms: u64) -> Window {
        Window::new(
            SimTime::ZERO,
            SimTime::from_millis(end_ms),
            SimDuration::from_millis(interval_ms),
        )
    }

    #[test]
    fn window_geometry() {
        let w = win(200, 50);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.bounds(2).0, SimTime::from_millis(100));
        assert_eq!(w.bounds(2).1, SimTime::from_millis(150));
        assert!((w.mid_secs(0) - 0.025).abs() < 1e-12);
        assert_eq!(w.grid_end(), SimTime::from_millis(200));
        // Partial trailing interval: grid_end stops at the last whole one.
        let w2 = Window::new(
            SimTime::ZERO,
            SimTime::from_millis(230),
            SimDuration::from_millis(50),
        );
        assert_eq!(w2.len(), 4);
        assert_eq!(w2.grid_end(), SimTime::from_millis(200));
    }

    /// The paper's Fig 6 scenario: requests overlapping two 100 ms
    /// intervals; load is the time-weighted average concurrency.
    #[test]
    fn load_matches_hand_computation() {
        let w = win(200, 100);
        // One request covering all of interval 0 -> load 1.0 there.
        // One covering half of interval 0 -> +0.5.
        // One covering the whole window -> +1 in both.
        let spans = vec![
            span(0, 100_000, 0),
            span(50_000, 100_000, 0),
            span(0, 200_000, 0),
        ];
        let load = LoadSeries::from_spans(&spans, w);
        assert!((load.get(0) - 2.5).abs() < 1e-9);
        assert!((load.get(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_integral_equals_total_residence() {
        // Sum(load_i * interval) == total residence inside the window.
        let w = win(500, 50);
        let spans = vec![
            span(10_000, 230_000, 0),
            span(100_000, 130_000, 1),
            span(400_000, 499_999, 0),
            span(0, 500_000, 2),
        ];
        let load = LoadSeries::from_spans(&spans, w);
        let integral: f64 = load.values().iter().map(|v| v * 0.05).sum();
        let residence: f64 = spans
            .iter()
            .map(|s| (s.departure.min(w.end) - s.arrival.max(w.start)).as_secs_f64())
            .sum();
        assert!((integral - residence).abs() < 1e-9);
    }

    #[test]
    fn load_ignores_spans_outside_window() {
        let w = win(100, 50);
        let spans = vec![span(200_000, 300_000, 0)];
        let load = LoadSeries::from_spans(&spans, w);
        assert!(load.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_length_spans_contribute_nothing() {
        let w = win(100, 50);
        let spans = vec![
            span(30_000, 30_000, 0),
            span(0, 0, 0),
            span(50_000, 50_000, 0),
        ];
        let load = LoadSeries::from_spans(&spans, w);
        assert!(load.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sweep_matches_reference_on_straddlers() {
        // Spans straddling the window start, the grid_end, whole coverage,
        // and single-interval residents.
        let w = Window::new(
            SimTime::from_millis(100),
            SimTime::from_millis(430),
            SimDuration::from_millis(50),
        );
        let spans = vec![
            span(0, 150_000, 0),       // straddles window start
            span(390_000, 500_000, 1), // straddles grid_end (400ms) and end
            span(0, 1_000_000, 2),     // covers everything
            span(210_000, 215_000, 0), // inside one interval
            span(250_000, 250_000, 1), // zero length
            span(199_999, 200_001, 0), // 2us straddling an interval edge
        ];
        let fast = LoadSeries::from_spans(&spans, w);
        let slow = reference::load_series(&spans, w);
        for i in 0..fast.len() {
            assert_eq!(fast.get(i).to_bits(), slow.get(i).to_bits(), "interval {i}");
        }
    }

    /// The paper's Fig 7 example: Req1 (30 ms service) = 3 work units,
    /// Req2 (10 ms) = 1 unit, with a 10 ms work unit and 100 ms intervals.
    #[test]
    fn fig7_normalization_example() {
        let mut services = ServiceTimeTable::new();
        services.insert(NodeId(1), ClassId(1), SimDuration::from_millis(30));
        services.insert(NodeId(1), ClassId(2), SimDuration::from_millis(10));
        let w = win(300, 100);
        // TW0: one Req1 and three Req2 complete -> 3 + 3*1 = 6 units, 4 reqs.
        // TW1: one Req1 and one Req2 -> 4 units, 2 reqs.
        // TW2: four Req2 -> 4 units, 4 reqs.
        let spans = vec![
            span(0, 30_000, 1),
            span(30_000, 40_000, 2),
            span(40_000, 50_000, 2),
            span(50_000, 60_000, 2),
            span(60_000, 130_000, 1),
            span(130_000, 140_000, 2),
            span(200_000, 210_000, 2),
            span(210_000, 220_000, 2),
            span(220_000, 230_000, 2),
            span(230_000, 240_000, 2),
        ];
        let tput = ThroughputSeries::from_spans(&spans, w, &services, SimDuration::from_millis(10));
        assert_eq!(
            (tput.units(0), tput.units(1), tput.units(2)),
            (6.0, 4.0, 4.0)
        );
        assert_eq!((tput.count(0), tput.count(1), tput.count(2)), (4, 2, 4));
        // The paper's point: straightforward throughput varies (4,2,4) while
        // normalized units track the actual work (6,4,4).
        assert!((tput.unit_rate(0) - 60.0).abs() < 1e-9);
        assert!((tput.count_rate(0) - 40.0).abs() < 1e-9);
        // Equivalent-rate scaling: with mean service 20ms, 6 units/100ms ->
        // 6 * 10/20 / 0.1 = 30 eq-req/s.
        assert!((tput.equivalent_rate(0, SimDuration::from_millis(20)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn completions_fall_in_departure_interval() {
        let services = ServiceTimeTable::new();
        let w = win(100, 50);
        // Arrives in interval 0, departs in interval 1: counted in 1.
        let spans = vec![span(10_000, 60_000, 0)];
        let tput = ThroughputSeries::from_spans(&spans, w, &services, SimDuration::from_millis(10));
        assert_eq!(tput.count(0), 0);
        assert_eq!(tput.count(1), 1);
        // Unknown class falls back to capped residence: 50ms residence
        // capped at the 10ms work unit -> 1 unit.
        assert!((tput.units(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fallback_keeps_sub_work_unit_residence() {
        // A span of an uncalibrated class whose residence is *shorter* than
        // one work unit contributes that residence, not a whole unit: 4ms
        // residence with a 10ms work unit -> 0.4 units.
        let services = ServiceTimeTable::new();
        let w = win(100, 50);
        let spans = vec![span(10_000, 14_000, 0)];
        let tput = ThroughputSeries::from_spans(&spans, w, &services, SimDuration::from_millis(10));
        assert_eq!(tput.count(0), 1);
        assert!(
            (tput.units(0) - 0.4).abs() < 1e-12,
            "units {}",
            tput.units(0)
        );
    }

    #[test]
    fn work_conservation_across_grids() {
        // Total units are identical no matter the interval length.
        let mut services = ServiceTimeTable::new();
        services.insert(NodeId(1), ClassId(1), SimDuration::from_millis(12));
        let spans: Vec<Span> = (0..50)
            .map(|i| span(i * 7_000, i * 7_000 + 12_000, 1))
            .collect();
        let total = |interval_ms: u64| -> f64 {
            let w = win(1_000, interval_ms);
            let t = ThroughputSeries::from_spans(&spans, w, &services, SimDuration::from_millis(4));
            (0..t.len()).map(|i| t.units(i)).sum()
        };
        let t20 = total(20);
        let t50 = total(50);
        let t1000 = total(1000);
        assert!((t20 - t50).abs() < 1e-9);
        assert!((t50 - t1000).abs() < 1e-9);
    }

    #[test]
    fn fused_set_matches_individual_constructors() {
        let mut services = ServiceTimeTable::new();
        services.insert(NodeId(1), ClassId(1), SimDuration::from_millis(12));
        let spans: Vec<Span> = (0..200)
            .map(|i| {
                span(
                    i * 3_100,
                    i * 3_100 + 9_000 + (i % 7) * 2_000,
                    (i % 3) as u16,
                )
            })
            .collect();
        let w = win(700, 50);
        let wu = SimDuration::from_millis(4);
        let set = SeriesSet::from_spans(&spans, w, &services, wu);
        let load = LoadSeries::from_spans(&spans, w);
        let tput = ThroughputSeries::from_spans(&spans, w, &services, wu);
        assert_eq!(set.load(), load);
        assert_eq!(set.tput(), tput);
        assert_eq!(set.window(), w);
    }

    #[test]
    fn coarsen_is_bit_identical_to_direct() {
        let mut services = ServiceTimeTable::new();
        services.insert(NodeId(1), ClassId(0), SimDuration::from_millis(6));
        services.insert(NodeId(1), ClassId(1), SimDuration::from_millis(18));
        let spans: Vec<Span> = (0..300)
            .map(|i| {
                span(
                    i * 2_700,
                    i * 2_700 + 4_000 + (i % 11) * 3_000,
                    (i % 2) as u16,
                )
            })
            .collect();
        // 830ms window: 83 fine 10ms intervals, 16 coarse 50ms intervals —
        // deliberately not a multiple so the tail-drop paths are exercised.
        let fine_w = win(830, 10);
        let wu = SimDuration::from_millis(6);
        let fine = SeriesSet::from_spans(&spans, fine_w, &services, wu);
        let coarse = fine.coarsen(5);
        let direct = SeriesSet::from_spans(&spans, coarse.window(), &services, wu);
        assert_eq!(coarse, direct);
        let (cl, dl) = (coarse.load(), direct.load());
        for i in 0..cl.len() {
            assert_eq!(cl.get(i).to_bits(), dl.get(i).to_bits());
        }
        let (ct, dt) = (coarse.tput(), direct.tput());
        for i in 0..ct.len() {
            assert_eq!(ct.units(i).to_bits(), dt.units(i).to_bits());
            assert_eq!(ct.count(i), dt.count(i));
        }
    }
}
