//! Fine-grained load and throughput series (paper §III-A and §III-B).
//!
//! * **Load** (Fig 6): the time-weighted average number of concurrent
//!   requests in a server over each interval, computed exactly from span
//!   arrival/departure timestamps.
//! * **Throughput** (Fig 7): per interval, both the *straightforward* count
//!   of completed requests and the *normalized* throughput in work units —
//!   each completed request contributes `service_time / work_unit` units, so
//!   intervals with different request-class mixes become comparable.

use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::Span;
#[cfg(test)]
use fgbd_trace::NodeId;

/// A uniform grid of analysis intervals `[start + i·len, start + (i+1)·len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start of the first interval.
    pub start: SimTime,
    /// End of the grid (exclusive); partial trailing intervals are dropped.
    pub end: SimTime,
    /// Interval length (the paper's monitoring granularity, e.g. 50 ms).
    pub interval: SimDuration,
}

impl Window {
    /// A grid covering `[start, end)` with `interval`-long cells.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `interval` is zero.
    pub fn new(start: SimTime, end: SimTime, interval: SimDuration) -> Window {
        assert!(end > start, "empty window");
        assert!(!interval.is_zero(), "interval must be positive");
        Window {
            start,
            end,
            interval,
        }
    }

    /// Number of whole intervals in the grid.
    pub fn len(&self) -> usize {
        ((self.end - self.start).as_micros() / self.interval.as_micros()) as usize
    }

    /// `true` if the grid holds no whole interval.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bounds of interval `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bounds(&self, i: usize) -> (SimTime, SimTime) {
        assert!(i < self.len(), "interval index out of range");
        let from = self.start + self.interval * i as u64;
        (from, from + self.interval)
    }

    /// The midpoint of interval `i` in seconds since the window start
    /// (convenient x-axis for timeline plots).
    pub fn mid_secs(&self, i: usize) -> f64 {
        let (from, to) = self.bounds(i);
        ((from - self.start) + (to - from) / 2).as_secs_f64()
    }
}

/// Time-weighted concurrent-request counts per interval.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSeries {
    window: Window,
    values: Vec<f64>,
}

impl LoadSeries {
    /// Computes the load of a server over `window` from its spans
    /// (paper Fig 6: the average of the concurrency step function over each
    /// interval).
    pub fn from_spans(spans: &[Span], window: Window) -> LoadSeries {
        let n = window.len();
        let mut values = vec![0.0; n];
        let ilen_us = window.interval.as_micros();
        let ilen_s = window.interval.as_secs_f64();
        for s in spans {
            if s.departure <= window.start || s.arrival >= window.end {
                continue;
            }
            let a = s.arrival.max(window.start);
            let d = s.departure.min(window.end);
            let first = ((a - window.start).as_micros() / ilen_us) as usize;
            let last = (((d - window.start).as_micros().saturating_sub(1)) / ilen_us) as usize;
            for (i, v) in values
                .iter_mut()
                .enumerate()
                .take((last + 1).min(n))
                .skip(first)
            {
                let (from, to) = (
                    window.start + window.interval * i as u64,
                    window.start + window.interval * (i as u64 + 1),
                );
                let ov_from = a.max(from);
                let ov_to = d.min(to);
                if ov_to > ov_from {
                    *v += (ov_to - ov_from).as_secs_f64() / ilen_s;
                }
            }
        }
        LoadSeries { window, values }
    }

    /// The grid this series lives on.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Per-interval loads (average concurrent requests).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Load of interval `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no intervals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Per-interval completion counts and normalized work units.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSeries {
    window: Window,
    counts: Vec<u32>,
    units: Vec<f64>,
    work_unit_s: f64,
}

impl ThroughputSeries {
    /// Computes both throughput variants over `window`.
    ///
    /// `services` supplies per-class service times, looked up per span by
    /// its own `(server, class)` — so `spans` may mix servers (tier-level
    /// aggregation). `work_unit` is the common divisor the units are
    /// expressed in (see [`ServiceTimeTable::work_unit`]). A span whose
    /// class has no service estimate contributes one work unit per
    /// `work_unit` of residence — in practice every class seen in the
    /// analysis window was also seen during calibration.
    ///
    /// # Panics
    ///
    /// Panics if `work_unit` is zero.
    pub fn from_spans(
        spans: &[Span],
        window: Window,
        services: &ServiceTimeTable,
        work_unit: SimDuration,
    ) -> ThroughputSeries {
        assert!(!work_unit.is_zero(), "work unit must be positive");
        let n = window.len();
        let mut counts = vec![0u32; n];
        let mut units = vec![0.0; n];
        let wu = work_unit.as_secs_f64();
        let ilen_us = window.interval.as_micros();
        for s in spans {
            if s.departure < window.start || s.departure >= window.end {
                continue;
            }
            let i = ((s.departure - window.start).as_micros() / ilen_us) as usize;
            if i >= n {
                continue;
            }
            counts[i] += 1;
            let service = services
                .get_secs(s.server, s.class)
                .unwrap_or_else(|| wu.max(s.residence().as_secs_f64().min(wu)));
            units[i] += service / wu;
        }
        ThroughputSeries {
            window,
            counts,
            units,
            work_unit_s: wu,
        }
    }

    /// The grid this series lives on.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Completed requests in interval `i` (the "straightforward"
    /// throughput of Fig 7).
    pub fn count(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// Normalized throughput of interval `i` in work units (Fig 7's
    /// normalized row).
    pub fn units(&self, i: usize) -> f64 {
        self.units[i]
    }

    /// Straightforward throughput as requests per second.
    pub fn count_rate(&self, i: usize) -> f64 {
        f64::from(self.counts[i]) / self.window.interval.as_secs_f64()
    }

    /// Normalized throughput as work units per second.
    pub fn unit_rate(&self, i: usize) -> f64 {
        self.units[i] / self.window.interval.as_secs_f64()
    }

    /// Normalized throughput expressed as *equivalent requests per second*:
    /// work-unit rate scaled by `mean_service / work_unit`, so numbers are
    /// comparable to plain request rates when the mix is near-uniform (the
    /// scale the paper's MySQL figures use).
    pub fn equivalent_rate(&self, i: usize, mean_service: SimDuration) -> f64 {
        let ms = mean_service.as_secs_f64();
        if ms <= 0.0 {
            return self.unit_rate(i);
        }
        self.unit_rate(i) * self.work_unit_s / ms
    }

    /// All normalized per-second rates.
    pub fn unit_rates(&self) -> Vec<f64> {
        (0..self.units.len()).map(|i| self.unit_rate(i)).collect()
    }

    /// All straightforward per-second rates.
    pub fn count_rates(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.count_rate(i)).collect()
    }

    /// The work unit used, in seconds.
    pub fn work_unit_s(&self) -> f64 {
        self.work_unit_s
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if there are no intervals.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbd_trace::{ClassId, ConnId};

    fn span(a_us: u64, d_us: u64, class: u16) -> Span {
        Span {
            server: NodeId(1),
            class: ClassId(class),
            arrival: SimTime::from_micros(a_us),
            departure: SimTime::from_micros(d_us),
            conn: ConnId(0),
            truth: None,
        }
    }

    fn win(end_ms: u64, interval_ms: u64) -> Window {
        Window::new(
            SimTime::ZERO,
            SimTime::from_millis(end_ms),
            SimDuration::from_millis(interval_ms),
        )
    }

    #[test]
    fn window_geometry() {
        let w = win(200, 50);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.bounds(2).0, SimTime::from_millis(100));
        assert_eq!(w.bounds(2).1, SimTime::from_millis(150));
        assert!((w.mid_secs(0) - 0.025).abs() < 1e-12);
    }

    /// The paper's Fig 6 scenario: requests overlapping two 100 ms
    /// intervals; load is the time-weighted average concurrency.
    #[test]
    fn load_matches_hand_computation() {
        let w = win(200, 100);
        // One request covering all of interval 0 -> load 1.0 there.
        // One covering half of interval 0 -> +0.5.
        // One covering the whole window -> +1 in both.
        let spans = vec![
            span(0, 100_000, 0),
            span(50_000, 100_000, 0),
            span(0, 200_000, 0),
        ];
        let load = LoadSeries::from_spans(&spans, w);
        assert!((load.get(0) - 2.5).abs() < 1e-9);
        assert!((load.get(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_integral_equals_total_residence() {
        // Sum(load_i * interval) == total residence inside the window.
        let w = win(500, 50);
        let spans = vec![
            span(10_000, 230_000, 0),
            span(100_000, 130_000, 1),
            span(400_000, 499_999, 0),
            span(0, 500_000, 2),
        ];
        let load = LoadSeries::from_spans(&spans, w);
        let integral: f64 = load.values().iter().map(|v| v * 0.05).sum();
        let residence: f64 = spans
            .iter()
            .map(|s| (s.departure.min(w.end) - s.arrival.max(w.start)).as_secs_f64())
            .sum();
        assert!((integral - residence).abs() < 1e-9);
    }

    #[test]
    fn load_ignores_spans_outside_window() {
        let w = win(100, 50);
        let spans = vec![span(200_000, 300_000, 0)];
        let load = LoadSeries::from_spans(&spans, w);
        assert!(load.values().iter().all(|&v| v == 0.0));
    }

    /// The paper's Fig 7 example: Req1 (30 ms service) = 3 work units,
    /// Req2 (10 ms) = 1 unit, with a 10 ms work unit and 100 ms intervals.
    #[test]
    fn fig7_normalization_example() {
        let mut services = ServiceTimeTable::new();
        services.insert(NodeId(1), ClassId(1), SimDuration::from_millis(30));
        services.insert(NodeId(1), ClassId(2), SimDuration::from_millis(10));
        let w = win(300, 100);
        // TW0: one Req1 and three Req2 complete -> 3 + 3*1 = 6 units, 4 reqs.
        // TW1: one Req1 and one Req2 -> 4 units, 2 reqs.
        // TW2: four Req2 -> 4 units, 4 reqs.
        let spans = vec![
            span(0, 30_000, 1),
            span(30_000, 40_000, 2),
            span(40_000, 50_000, 2),
            span(50_000, 60_000, 2),
            span(60_000, 130_000, 1),
            span(130_000, 140_000, 2),
            span(200_000, 210_000, 2),
            span(210_000, 220_000, 2),
            span(220_000, 230_000, 2),
            span(230_000, 240_000, 2),
        ];
        let tput = ThroughputSeries::from_spans(
            &spans,
            w,
            &services,
            SimDuration::from_millis(10),
        );
        assert_eq!(
            (tput.units(0), tput.units(1), tput.units(2)),
            (6.0, 4.0, 4.0)
        );
        assert_eq!((tput.count(0), tput.count(1), tput.count(2)), (4, 2, 4));
        // The paper's point: straightforward throughput varies (4,2,4) while
        // normalized units track the actual work (6,4,4).
        assert!((tput.unit_rate(0) - 60.0).abs() < 1e-9);
        assert!((tput.count_rate(0) - 40.0).abs() < 1e-9);
        // Equivalent-rate scaling: with mean service 20ms, 6 units/100ms ->
        // 6 * 10/20 / 0.1 = 30 eq-req/s.
        assert!(
            (tput.equivalent_rate(0, SimDuration::from_millis(20)) - 30.0).abs() < 1e-9
        );
    }

    #[test]
    fn completions_fall_in_departure_interval() {
        let services = ServiceTimeTable::new();
        let w = win(100, 50);
        // Arrives in interval 0, departs in interval 1: counted in 1.
        let spans = vec![span(10_000, 60_000, 0)];
        let tput = ThroughputSeries::from_spans(
            &spans,
            w,
            &services,
            SimDuration::from_millis(10),
        );
        assert_eq!(tput.count(0), 0);
        assert_eq!(tput.count(1), 1);
        // Unknown class falls back to capped residence (here 10ms = 1 unit).
        assert!((tput.units(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation_across_grids() {
        // Total units are identical no matter the interval length.
        let mut services = ServiceTimeTable::new();
        services.insert(NodeId(1), ClassId(1), SimDuration::from_millis(12));
        let spans: Vec<Span> = (0..50)
            .map(|i| span(i * 7_000, i * 7_000 + 12_000, 1))
            .collect();
        let total = |interval_ms: u64| -> f64 {
            let w = win(1_000, interval_ms);
            let t = ThroughputSeries::from_spans(
                &spans,
                w,
                &services,
                SimDuration::from_millis(4),
            );
            (0..t.len()).map(|i| t.units(i)).sum()
        };
        let t20 = total(20);
        let t50 = total(50);
        let t1000 = total(1000);
        assert!((t20 - t50).abs() < 1e-9);
        assert!((t50 - t1000).abs() < 1e-9);
    }
}
