//! Online (streaming) transient-bottleneck detection.
//!
//! The batch pipeline materializes every span, then runs
//! [`crate::detect::analyze_server`] over the full capture. This module is
//! the same §III analysis restructured as a **one-pass stream consumer**
//! with memory bounded by the in-flight horizon instead of the run length:
//! feed it time-ordered [`MsgRecord`]s (from the live DES tap or a tailed
//! capture file) and it
//!
//! 1. pairs requests with responses FIFO per `(server, connection)` —
//!    byte-for-byte the batch `SpanSet::extract` rule;
//! 2. folds each matched span into per-interval integer accumulators kept
//!    in a ring over the *unfinalized* suffix of the grid (the sweep-line
//!    difference-array trick of [`crate::series`], carried across chunks);
//! 3. **finalizes** an interval once the per-server watermark passes its
//!    end — the watermark is `min(earliest open request arrival, stream
//!    time)`, so a finalized interval provably can never be touched by a
//!    future record;
//! 4. re-estimates N\* on a sliding window of finalized samples and runs
//!    the interval state machine with hysteresis, emitting
//!    [`MonitorEvent`] onset/clear verdicts online.
//!
//! # Equivalence to the batch detector
//!
//! All accumulation uses the exact integer-microsecond arithmetic of
//! [`crate::series`]; the one deviation is that a span's departure cannot
//! be clamped to a grid end that is not yet known, so spans accumulate
//! *unclamped* and intervals at or past the final grid length are dropped
//! at [`OnlineDetector::finish`]. For every kept interval the clamped and
//! unclamped constructions distribute identical integer totals (the
//! boundary interval receives its full coverage through the difference
//! array instead of a direct add), so with `retain` on, the final report's
//! loads, rates, N\* and states are **bit-for-bit** what `analyze_server`
//! computes from the materialized capture — property-tested in
//! `tests/online.rs` and CI-gated at seed 20130708.
//!
//! Live verdicts are intentionally *provisional*: they use the
//! sliding-window N\* available at finalization time, trading the batch
//! detector's full-run fit for bounded memory and bounded detection
//! latency. The final report re-classifies with the full-run fit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use fgbd_des::hash::FxHashMap;
use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::{ClassId, MsgKind, MsgRecord, NodeId};

use crate::detect::{classify_one, classify_values, fit_mainseq, DetectorConfig, IntervalState};
use crate::nstar::NStar;
use crate::series::Window;

/// Parameters of the online detector.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Start of the analysis grid (records before it still feed pairing).
    pub start: SimTime,
    /// Interval length (the paper's fine granularity, e.g. 50 ms).
    pub interval: SimDuration,
    /// Default work unit for throughput normalization; override per
    /// server with [`OnlineDetector::set_work_unit`] to mirror the batch
    /// pipeline's per-server calibration.
    pub work_unit: SimDuration,
    /// Batch detector parameters (idle/POI thresholds, N\* fit).
    pub detector: DetectorConfig,
    /// Finalized samples kept in the sliding window the live N\* is fit on.
    pub live_window: usize,
    /// Consecutive intervals required to flip the congested state (both
    /// directions) — the hysteresis that keeps single-interval flickers
    /// out of the verdict stream.
    pub hysteresis: usize,
    /// Refit the live N\* every this many finalized intervals (per
    /// server). Deterministic in the finalization count, so verdicts are
    /// invariant to how the stream is chunked.
    pub refit_every: usize,
    /// Keep every finalized `(load, rate)` sample so
    /// [`OnlineDetector::finish`] can reproduce the batch report exactly.
    /// Off, memory is flat in run length and the final report carries
    /// live counts only.
    pub retain: bool,
}

impl OnlineConfig {
    /// Defaults for a grid: 1200-sample live window (one minute of 50 ms
    /// intervals), hysteresis 2, refit every 64 intervals, retained.
    pub fn new(start: SimTime, interval: SimDuration, work_unit: SimDuration) -> OnlineConfig {
        OnlineConfig {
            start,
            interval,
            work_unit,
            detector: DetectorConfig::default(),
            live_window: 1200,
            hysteresis: 2,
            refit_every: 64,
            retain: true,
        }
    }
}

/// Did the server just enter or leave congestion?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// `hysteresis` consecutive congested/frozen intervals finalized.
    Onset,
    /// `hysteresis` consecutive uncongested intervals finalized.
    Clear,
}

/// One online verdict: a congestion onset or clear at one server.
#[derive(Debug, Clone, Copy)]
pub struct MonitorEvent {
    /// The server whose state flipped.
    pub server: NodeId,
    /// Onset or clear.
    pub kind: VerdictKind,
    /// Index of the first interval of the streak that caused the flip.
    pub interval: usize,
    /// End timestamp of that interval.
    pub interval_end: SimTime,
    /// Live N\* at emission time (`None` while unobservable).
    pub nstar: Option<f64>,
    /// Live `TP_max` at emission time (0 while N\* is unobservable).
    pub tp_max: f64,
    /// Load of the interval that completed the streak.
    pub load: f64,
    /// Normalized throughput rate of that interval.
    pub rate: f64,
    /// Open (in-flight) requests at the server when the verdict fired.
    pub queue_depth: usize,
    /// Sim-time from the streak's first interval end to verdict emission
    /// — the detection latency the monitor's histogram tracks.
    pub detect_latency: SimDuration,
}

/// Live per-server state, exported on heartbeats.
#[derive(Debug, Clone, Copy)]
pub struct ServerSnapshot {
    /// The server.
    pub server: NodeId,
    /// Intervals finalized so far.
    pub finalized: usize,
    /// Current hysteresis-filtered congestion state.
    pub congested_now: bool,
    /// Live sliding-window N\*.
    pub live_nstar: Option<f64>,
    /// Open (in-flight) requests.
    pub open_requests: usize,
    /// Load of the most recently finalized interval.
    pub last_load: f64,
    /// Normalized rate of the most recently finalized interval.
    pub last_rate: f64,
    /// Finalized intervals classified congested or frozen (live N\*).
    pub congested_intervals: usize,
    /// Finalized intervals classified frozen (live N\*).
    pub frozen_intervals: usize,
}

/// A point-in-time view of the whole monitor, for heartbeat emission.
#[derive(Debug, Clone)]
pub struct MonitorSnapshot {
    /// Stream time of the last consumed record.
    pub at: SimTime,
    /// Records consumed.
    pub records: u64,
    /// Open requests across all servers.
    pub spans_in_flight: usize,
    /// Stream time minus the slowest server watermark: how far verdicts
    /// trail the stream.
    pub lag: SimDuration,
    /// Estimated bytes of detector state (rings, FIFOs, windows, retained
    /// samples).
    pub state_bytes: usize,
    /// Per-server live state, ordered by server id.
    pub servers: Vec<ServerSnapshot>,
}

/// Final per-server report from [`OnlineDetector::finish`].
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The server.
    pub server: NodeId,
    /// The analysis grid the stream resolved to.
    pub window: Window,
    /// Full-run N\* (`retain` only; `None` otherwise or if unobservable).
    pub nstar: Option<NStar>,
    /// Batch-exact per-interval states (`retain` only; empty otherwise).
    pub states: Vec<IntervalState>,
    /// Batch-exact per-interval loads (`retain` only; empty otherwise).
    pub loads: Vec<f64>,
    /// Batch-exact per-interval rates (`retain` only; empty otherwise).
    pub rates: Vec<f64>,
    /// Spans matched (request paired with response).
    pub matched: u64,
    /// Unmatched messages: front-truncated responses plus requests still
    /// open at stream end — the batch `SpanSet::unmatched` rule.
    pub unmatched: usize,
    /// Intervals the *live* state machine saw as congested or frozen.
    pub live_congested: usize,
    /// Intervals the *live* state machine saw as frozen.
    pub live_frozen: usize,
}

impl OnlineReport {
    /// Number of congested intervals (including frozen ones) in the
    /// batch-exact final states — the [`crate::detect::ServerReport`]
    /// formula, so zero-copy consumers can render the batch table without
    /// a `ServerReport`. Zero when `retain` was off (`states` is empty).
    pub fn congested_intervals(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, IntervalState::Congested | IntervalState::Frozen))
            .count()
    }

    /// Number of frozen (POI) intervals in the final states.
    pub fn frozen_intervals(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, IntervalState::Frozen))
            .count()
    }

    /// Fraction of non-idle intervals that are congested — identical to
    /// `ServerReport::congestion_ratio` on the same states.
    pub fn congestion_ratio(&self) -> f64 {
        let active = self
            .states
            .iter()
            .filter(|s| !matches!(s, IntervalState::Idle))
            .count();
        if active == 0 {
            return 0.0;
        }
        self.congested_intervals() as f64 / active as f64
    }
}

/// Everything [`OnlineDetector::finish`] produces: the per-server reports
/// plus any verdicts emitted while finalizing the tail of the grid (which
/// would otherwise be lost — the detector is consumed).
#[derive(Debug, Clone)]
pub struct OnlineFinish {
    /// Final per-server reports, ordered by server id.
    pub reports: Vec<OnlineReport>,
    /// Verdicts not yet drained, including tail-finalization ones.
    pub events: Vec<MonitorEvent>,
}

/// Integer accumulators of one not-yet-finalized interval (the ring
/// element). Mirrors one cell of the batch `LoadAcc`/`TputAcc`.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalAcc {
    overlap_us: u64,
    full_diff: i64,
    count: u32,
    service_us: u64,
}

/// One open request awaiting its response.
#[derive(Debug, Clone, Copy)]
struct OpenReq {
    at_us: u64,
    class: ClassId,
    ticket: u64,
}

#[derive(Debug)]
struct ServerState {
    server: NodeId,
    wu_us: u64,
    /// FIFO of open requests per connection — the batch pairing rule.
    fifos: FxHashMap<u32, VecDeque<OpenReq>>,
    open: usize,
    next_ticket: u64,
    /// Min-heap over FIFO *fronts*: `(arrival_us, ticket, conn)`. Lazy
    /// deletion — an entry is alive iff it still is its FIFO's front.
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Accumulators for intervals `finalized ..`, front first.
    ring: VecDeque<IntervalAcc>,
    finalized: usize,
    /// Running prefix sum of consumed `full_diff`s (spans fully covering
    /// the current front interval).
    covering: i64,
    /// Sliding window of finalized `(load, rate)` samples the live N\* is
    /// fit on.
    samples: VecDeque<(f64, f64)>,
    live_nstar: Option<NStar>,
    since_refit: usize,
    streak: usize,
    streak_start: usize,
    clear_streak: usize,
    clear_start: usize,
    congested_now: bool,
    last_load: f64,
    last_rate: f64,
    live_congested: usize,
    live_frozen: usize,
    matched: u64,
    unmatched: usize,
    loads: Vec<f64>,
    rates: Vec<f64>,
}

impl ServerState {
    fn new(server: NodeId, wu_us: u64) -> ServerState {
        ServerState {
            server,
            wu_us,
            fifos: FxHashMap::default(),
            open: 0,
            next_ticket: 0,
            heap: BinaryHeap::new(),
            ring: VecDeque::new(),
            finalized: 0,
            covering: 0,
            samples: VecDeque::new(),
            live_nstar: None,
            since_refit: 0,
            streak: 0,
            streak_start: 0,
            clear_streak: 0,
            clear_start: 0,
            congested_now: false,
            last_load: 0.0,
            last_rate: 0.0,
            live_congested: 0,
            live_frozen: 0,
            matched: 0,
            unmatched: 0,
            loads: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Earliest open request arrival, cleaning stale heap tops.
    fn open_min(&mut self) -> Option<u64> {
        while let Some(&Reverse((at, ticket, conn))) = self.heap.peek() {
            let alive = self
                .fifos
                .get(&conn)
                .and_then(VecDeque::front)
                .is_some_and(|r| r.ticket == ticket);
            if alive {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Rebuilds the heap from live FIFO fronts when lazy deletion has let
    /// it outgrow the open set — one pinned old request must not make the
    /// heap grow with churn.
    fn maybe_compact(&mut self) {
        if self.heap.len() > 2 * self.open + 16 {
            self.heap = self
                .fifos
                .iter()
                .filter_map(|(&conn, q)| q.front().map(|r| Reverse((r.at_us, r.ticket, conn))))
                .collect();
        }
    }

    fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ring.len() * size_of::<IntervalAcc>()
            + self.heap.len() * size_of::<Reverse<(u64, u64, u32)>>()
            + self
                .fifos
                .values()
                .map(|q| q.len() * size_of::<OpenReq>() + size_of::<u32>())
                .sum::<usize>()
            + self.samples.len() * size_of::<(f64, f64)>()
            + (self.loads.len() + self.rates.len()) * size_of::<f64>()
    }
}

/// The streaming detector: one instance consumes one time-ordered record
/// stream and serves all servers appearing in it.
#[derive(Debug)]
pub struct OnlineDetector {
    cfg: OnlineConfig,
    services: ServiceTimeTable,
    start_us: u64,
    ilen_us: u64,
    wu_default_us: u64,
    wu_overrides: FxHashMap<u16, u64>,
    /// `interval.as_secs_f64()`, precomputed once — the exact divisor the
    /// batch `unit_rate` uses.
    interval_secs: f64,
    servers: FxHashMap<u16, ServerState>,
    cur_us: u64,
    records: u64,
    events: Vec<MonitorEvent>,
}

impl OnlineDetector {
    /// Creates a detector over the given grid and calibration.
    ///
    /// # Panics
    ///
    /// Panics if `interval` or `work_unit` is zero, or any of
    /// `live_window`, `hysteresis`, `refit_every` is zero.
    pub fn new(cfg: OnlineConfig, services: ServiceTimeTable) -> OnlineDetector {
        assert!(!cfg.interval.is_zero(), "interval must be positive");
        assert!(!cfg.work_unit.is_zero(), "work unit must be positive");
        assert!(cfg.live_window > 0, "live window must be positive");
        assert!(cfg.hysteresis > 0, "hysteresis must be positive");
        assert!(cfg.refit_every > 0, "refit period must be positive");
        OnlineDetector {
            start_us: cfg.start.as_micros(),
            ilen_us: cfg.interval.as_micros(),
            wu_default_us: cfg.work_unit.as_micros(),
            wu_overrides: FxHashMap::default(),
            interval_secs: cfg.interval.as_secs_f64(),
            cfg,
            services,
            servers: FxHashMap::default(),
            cur_us: 0,
            records: 0,
            events: Vec::new(),
        }
    }

    /// Overrides the work unit for one server (the batch pipeline
    /// calibrates one per server). Applies to spans accumulated after the
    /// call — set before streaming for batch equivalence.
    ///
    /// # Panics
    ///
    /// Panics if `work_unit` is zero.
    pub fn set_work_unit(&mut self, server: NodeId, work_unit: SimDuration) {
        assert!(!work_unit.is_zero(), "work unit must be positive");
        let wu = work_unit.as_micros();
        self.wu_overrides.insert(server.0, wu);
        if let Some(state) = self.servers.get_mut(&server.0) {
            state.wu_us = wu;
        }
    }

    /// The configuration this detector runs with.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Stream time of the last consumed record.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.cur_us)
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Consumes one record. Records must arrive in non-decreasing time
    /// order (the capture contract).
    pub fn push(&mut self, rec: &MsgRecord) {
        debug_assert!(
            rec.at.as_micros() >= self.cur_us,
            "record stream must be time-ordered"
        );
        self.cur_us = self.cur_us.max(rec.at.as_micros());
        self.records += 1;
        let server = rec.span_node();
        let wu_us = self
            .wu_overrides
            .get(&server.0)
            .copied()
            .unwrap_or(self.wu_default_us);
        let state = self
            .servers
            .entry(server.0)
            .or_insert_with(|| ServerState::new(server, wu_us));
        match rec.kind {
            MsgKind::Request => {
                let ticket = state.next_ticket;
                state.next_ticket += 1;
                let q = state.fifos.entry(rec.conn.0).or_default();
                let was_empty = q.is_empty();
                q.push_back(OpenReq {
                    at_us: rec.at.as_micros(),
                    class: rec.class,
                    ticket,
                });
                state.open += 1;
                if was_empty {
                    state
                        .heap
                        .push(Reverse((rec.at.as_micros(), ticket, rec.conn.0)));
                }
            }
            MsgKind::Response => {
                let popped = state
                    .fifos
                    .get_mut(&rec.conn.0)
                    .and_then(VecDeque::pop_front);
                match popped {
                    None => state.unmatched += 1,
                    Some(req) => {
                        state.open -= 1;
                        state.matched += 1;
                        if let Some(front) = state.fifos.get(&rec.conn.0).and_then(VecDeque::front)
                        {
                            state
                                .heap
                                .push(Reverse((front.at_us, front.ticket, rec.conn.0)));
                        }
                        state.maybe_compact();
                        Self::add_span(
                            state,
                            &self.services,
                            self.start_us,
                            self.ilen_us,
                            req.at_us,
                            rec.at.as_micros(),
                            req.class,
                        );
                    }
                }
            }
        }
        // Add-then-finalize: the watermark only advances once the record's
        // own effect is in the ring.
        let cur_us = self.cur_us;
        let (start_us, ilen_us, interval_secs) = (self.start_us, self.ilen_us, self.interval_secs);
        let state = self.servers.get_mut(&server.0).expect("just inserted");
        let wm = state.open_min().map_or(cur_us, |a| a.min(cur_us));
        let target = if wm <= start_us {
            0
        } else {
            ((wm - start_us) / ilen_us) as usize
        };
        Self::finalize_to(
            state,
            target,
            cur_us,
            start_us,
            ilen_us,
            interval_secs,
            &self.cfg,
            &mut self.events,
        );
    }

    /// Consumes a chunk of records.
    pub fn push_chunk(&mut self, recs: &[MsgRecord]) {
        for r in recs {
            self.push(r);
        }
    }

    /// Folds one matched span into the unfinalized ring — the exact
    /// integer arithmetic of the batch `LoadAcc::add`/`TputAcc::add`,
    /// minus the grid-end clamp (out-of-grid intervals are dropped at
    /// [`OnlineDetector::finish`] instead).
    #[allow(clippy::too_many_arguments)]
    fn add_span(
        state: &mut ServerState,
        services: &ServiceTimeTable,
        start_us: u64,
        ilen_us: u64,
        arrival_us: u64,
        departure_us: u64,
        class: ClassId,
    ) {
        let base = state.finalized;
        let at = |ring: &mut VecDeque<IntervalAcc>, index: usize| -> usize {
            debug_assert!(index >= base, "span touches a finalized interval");
            let slot = index - base;
            if slot >= ring.len() {
                ring.resize(slot + 1, IntervalAcc::default());
            }
            slot
        };
        // Load: boundary intervals directly, interior via the difference
        // array.
        let a = arrival_us.max(start_us);
        let d = departure_us;
        if d > a {
            let rel_a = a - start_us;
            let rel_d = d - start_us;
            let first = (rel_a / ilen_us) as usize;
            let last = ((rel_d - 1) / ilen_us) as usize;
            if first == last {
                let s = at(&mut state.ring, first);
                state.ring[s].overlap_us += rel_d - rel_a;
            } else {
                let s = at(&mut state.ring, first);
                state.ring[s].overlap_us += (first as u64 + 1) * ilen_us - rel_a;
                let s = at(&mut state.ring, last);
                state.ring[s].overlap_us += rel_d - last as u64 * ilen_us;
                let s = at(&mut state.ring, first + 1);
                state.ring[s].full_diff += 1;
                let s = at(&mut state.ring, last);
                state.ring[s].full_diff -= 1;
            }
        }
        // Throughput: indexed by departure interval.
        if departure_us >= start_us {
            let i = ((departure_us - start_us) / ilen_us) as usize;
            let s = at(&mut state.ring, i);
            state.ring[s].count += 1;
            let service_us = services
                .get(state.server, class)
                .map(|d| d.as_micros())
                .unwrap_or_else(|| (departure_us - arrival_us).min(state.wu_us));
            state.ring[s].service_us += service_us;
        }
    }

    /// Finalizes intervals `state.finalized .. target`: materializes each
    /// sample with the batch division order, feeds the sliding-window
    /// fit and the hysteresis state machine, emits verdicts.
    #[allow(clippy::too_many_arguments)]
    fn finalize_to(
        state: &mut ServerState,
        target: usize,
        cur_us: u64,
        start_us: u64,
        ilen_us: u64,
        interval_secs: f64,
        cfg: &OnlineConfig,
        events: &mut Vec<MonitorEvent>,
    ) {
        while state.finalized < target {
            let acc = state.ring.pop_front().unwrap_or_default();
            state.covering += acc.full_diff;
            debug_assert!(state.covering >= 0, "negative covering prefix");
            let overlap_us = acc.overlap_us + state.covering as u64 * ilen_us;
            // The only f64 productions — bit-identical to the batch
            // `load_values` / `unit_values` / `unit_rate`.
            let load = overlap_us as f64 / ilen_us as f64;
            let units = acc.service_us as f64 / state.wu_us as f64;
            let rate = units / interval_secs;
            let index = state.finalized;
            state.finalized += 1;
            state.last_load = load;
            state.last_rate = rate;
            if cfg.retain {
                state.loads.push(load);
                state.rates.push(rate);
            }
            state.samples.push_back((load, rate));
            while state.samples.len() > cfg.live_window {
                state.samples.pop_front();
            }
            state.since_refit += 1;
            if state.since_refit >= cfg.refit_every {
                state.since_refit = 0;
                let (ld, tp): (Vec<f64>, Vec<f64>) = state.samples.iter().copied().unzip();
                state.live_nstar = fit_mainseq(&ld, &tp, &cfg.detector);
            }
            let verdict = classify_one(load, rate, state.live_nstar.as_ref(), &cfg.detector);
            let congested = matches!(verdict, IntervalState::Congested | IntervalState::Frozen);
            if congested {
                state.live_congested += 1;
                if matches!(verdict, IntervalState::Frozen) {
                    state.live_frozen += 1;
                }
                if state.streak == 0 {
                    state.streak_start = index;
                }
                state.streak += 1;
                state.clear_streak = 0;
                if !state.congested_now && state.streak >= cfg.hysteresis {
                    state.congested_now = true;
                    events.push(Self::event(
                        state,
                        VerdictKind::Onset,
                        state.streak_start,
                        cur_us,
                        start_us,
                        ilen_us,
                        load,
                        rate,
                    ));
                }
            } else {
                if state.clear_streak == 0 {
                    state.clear_start = index;
                }
                state.clear_streak += 1;
                state.streak = 0;
                if state.congested_now && state.clear_streak >= cfg.hysteresis {
                    state.congested_now = false;
                    events.push(Self::event(
                        state,
                        VerdictKind::Clear,
                        state.clear_start,
                        cur_us,
                        start_us,
                        ilen_us,
                        load,
                        rate,
                    ));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn event(
        state: &ServerState,
        kind: VerdictKind,
        interval: usize,
        cur_us: u64,
        start_us: u64,
        ilen_us: u64,
        load: f64,
        rate: f64,
    ) -> MonitorEvent {
        let end_us = start_us + (interval as u64 + 1) * ilen_us;
        MonitorEvent {
            server: state.server,
            kind,
            interval,
            interval_end: SimTime::from_micros(end_us),
            nstar: state.live_nstar.as_ref().map(|e| e.nstar),
            tp_max: state.live_nstar.as_ref().map_or(0.0, |e| e.tp_max),
            load,
            rate,
            queue_depth: state.open,
            detect_latency: SimTime::from_micros(cur_us.max(end_us)) - SimTime::from_micros(end_us),
        }
    }

    /// Takes all verdicts emitted since the last drain.
    pub fn drain_events(&mut self) -> Vec<MonitorEvent> {
        std::mem::take(&mut self.events)
    }

    /// A point-in-time view for heartbeat emission.
    pub fn snapshot(&mut self) -> MonitorSnapshot {
        let cur_us = self.cur_us;
        let mut ids: Vec<u16> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        let mut spans_in_flight = 0;
        let mut min_wm = cur_us;
        let mut state_bytes = 0;
        let mut servers = Vec::with_capacity(ids.len());
        for id in ids {
            let s = self.servers.get_mut(&id).expect("listed");
            spans_in_flight += s.open;
            if let Some(a) = s.open_min() {
                min_wm = min_wm.min(a);
            }
            state_bytes += s.state_bytes();
            servers.push(ServerSnapshot {
                server: s.server,
                finalized: s.finalized,
                congested_now: s.congested_now,
                live_nstar: s.live_nstar.as_ref().map(|e| e.nstar),
                open_requests: s.open,
                last_load: s.last_load,
                last_rate: s.last_rate,
                congested_intervals: s.live_congested,
                frozen_intervals: s.live_frozen,
            });
        }
        MonitorSnapshot {
            at: SimTime::from_micros(cur_us),
            records: self.records,
            spans_in_flight,
            lag: SimTime::from_micros(cur_us) - SimTime::from_micros(min_wm),
            state_bytes,
            servers,
        }
    }

    /// Estimated bytes of detector state.
    pub fn state_bytes(&self) -> usize {
        self.servers.values().map(ServerState::state_bytes).sum()
    }

    /// Ends the stream at `end`, resolving the grid to
    /// `Window::new(start, end, interval)`: finalizes every whole interval,
    /// drops accumulators past the grid (the unclamped-accumulation
    /// counterpart of the batch grid-end clamp), counts still-open
    /// requests as unmatched, and — with `retain` — refits N\* over the
    /// full run and re-classifies, reproducing `analyze_server`
    /// bit-for-bit. Reports are ordered by server id; verdicts emitted by
    /// the tail finalization ride along in [`OnlineFinish::events`].
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` (the `Window::new` contract).
    pub fn finish(mut self, end: SimTime) -> OnlineFinish {
        let window = Window::new(self.cfg.start, end, self.cfg.interval);
        let len = window.len();
        let mut ids: Vec<u16> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let mut state = self.servers.remove(&id).expect("listed");
            // Requests still open at stream end never become spans; the
            // batch extractor counts them unmatched.
            state.unmatched += state.open;
            Self::finalize_to(
                &mut state,
                len,
                self.cur_us,
                self.start_us,
                self.ilen_us,
                self.interval_secs,
                &self.cfg,
                &mut self.events,
            );
            state.ring.clear();
            if self.cfg.retain {
                state.loads.truncate(len);
                state.rates.truncate(len);
            }
            let (nstar, states) = if self.cfg.retain {
                let nstar = fit_mainseq(&state.loads, &state.rates, &self.cfg.detector);
                let states = classify_values(
                    &state.loads,
                    &state.rates,
                    nstar.as_ref(),
                    &self.cfg.detector,
                );
                (nstar, states)
            } else {
                (None, Vec::new())
            };
            out.push(OnlineReport {
                server: state.server,
                window,
                nstar,
                states,
                loads: state.loads,
                rates: state.rates,
                matched: state.matched,
                unmatched: state.unmatched,
                live_congested: state.live_congested,
                live_frozen: state.live_frozen,
            });
        }
        OnlineFinish {
            reports: out,
            events: std::mem::take(&mut self.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::analyze_server;
    use fgbd_trace::{ConnId, NodeKind, NodeMeta, SpanSet, TraceLog};

    fn rec(at_us: u64, src: u16, dst: u16, kind: MsgKind, conn: u32, class: u16) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at_us),
            src: NodeId(src),
            dst: NodeId(dst),
            kind,
            conn: ConnId(conn),
            class: ClassId(class),
            bytes: 100,
            truth: None,
        }
    }

    fn nodes() -> Vec<NodeMeta> {
        vec![
            NodeMeta {
                id: NodeId(0),
                name: "client".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: NodeId(1),
                name: "web".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
        ]
    }

    /// A record stream with an idle phase, a steady phase, and a burst of
    /// overlapping requests (congestion), all on reused connections.
    fn demo_records() -> Vec<MsgRecord> {
        let mut recs = Vec::new();
        // Steady: serial requests on conn 1, 10 ms residence each.
        for i in 0..100u64 {
            recs.push(rec(i * 20_000, 0, 1, MsgKind::Request, 1, 0));
            recs.push(rec(i * 20_000 + 10_000, 1, 0, MsgKind::Response, 1, 0));
        }
        // Burst at 2.0 s: 30 overlapping requests on conns 10..40 that all
        // drain slowly (transient congestion).
        for j in 0..30u64 {
            recs.push(rec(
                2_000_000 + j * 100,
                0,
                1,
                MsgKind::Request,
                10 + j as u32,
                0,
            ));
        }
        for j in 0..30u64 {
            recs.push(rec(
                2_200_000 + j * 8_000,
                1,
                0,
                MsgKind::Response,
                10 + j as u32,
                0,
            ));
        }
        // Post-burst steady tail.
        for i in 0..20u64 {
            recs.push(rec(2_500_000 + i * 20_000, 0, 1, MsgKind::Request, 1, 0));
            recs.push(rec(
                2_500_000 + i * 20_000 + 10_000,
                1,
                0,
                MsgKind::Response,
                1,
                0,
            ));
        }
        recs.sort_by_key(|r| r.at);
        recs
    }

    fn services() -> ServiceTimeTable {
        let mut t = ServiceTimeTable::new();
        t.insert(NodeId(1), ClassId(0), SimDuration::from_millis(10));
        t
    }

    fn online_cfg() -> OnlineConfig {
        OnlineConfig::new(
            SimTime::ZERO,
            SimDuration::from_millis(50),
            SimDuration::from_millis(10),
        )
    }

    #[test]
    fn final_report_matches_batch_bit_for_bit() {
        let recs = demo_records();
        let end = SimTime::from_millis(2_930);
        // Batch path: materialize, extract, analyze.
        let mut log = TraceLog::new(nodes());
        for r in &recs {
            log.push(*r);
        }
        let spans = SpanSet::extract(&log);
        let window = Window::new(SimTime::ZERO, end, SimDuration::from_millis(50));
        let batch = analyze_server(
            spans.server(NodeId(1)),
            NodeId(1),
            window,
            &services(),
            SimDuration::from_millis(10),
            &DetectorConfig::default(),
        );
        // Online path: push the same records one at a time.
        let mut online = OnlineDetector::new(online_cfg(), services());
        for r in &recs {
            online.push(r);
        }
        let reports = online.finish(end).reports;
        assert_eq!(reports.len(), 1);
        let rep = &reports[0];
        assert_eq!(rep.server, NodeId(1));
        assert_eq!(rep.loads.len(), window.len());
        for i in 0..window.len() {
            assert_eq!(
                rep.loads[i].to_bits(),
                batch.load.get(i).to_bits(),
                "load bits diverge at interval {i}"
            );
            assert_eq!(
                rep.rates[i].to_bits(),
                batch.tput.unit_rate(i).to_bits(),
                "rate bits diverge at interval {i}"
            );
        }
        assert_eq!(rep.states, batch.states);
        match (&rep.nstar, &batch.nstar) {
            (Some(a), Some(b)) => {
                assert_eq!(a.nstar.to_bits(), b.nstar.to_bits());
                assert_eq!(a.tp_max.to_bits(), b.tp_max.to_bits());
            }
            (a, b) => assert_eq!(a.is_none(), b.is_none()),
        }
        assert_eq!(rep.matched as usize, spans.server(NodeId(1)).len());
        assert_eq!(rep.unmatched, 0);
    }

    #[test]
    fn chunking_does_not_change_results_or_events() {
        let recs = demo_records();
        let end = SimTime::from_millis(2_930);
        let run = |chunk: usize| {
            let mut online = OnlineDetector::new(online_cfg(), services());
            let mut events = Vec::new();
            for c in recs.chunks(chunk) {
                online.push_chunk(c);
                events.extend(online.drain_events());
            }
            let fin = online.finish(end);
            events.extend(fin.events);
            (fin.reports, events)
        };
        let (rep1, ev1) = run(1);
        let (rep7, ev7) = run(7);
        let (rep_all, ev_all) = run(recs.len());
        assert_eq!(rep1[0].states, rep7[0].states);
        assert_eq!(rep1[0].states, rep_all[0].states);
        for (a, b) in [(&ev1, &ev7), (&ev1, &ev_all)] {
            assert_eq!(a.len(), b.len(), "event counts diverge");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.interval, y.interval);
                assert_eq!(x.server, y.server);
            }
        }
    }

    #[test]
    fn verdict_stream_alternates_and_measures_latency() {
        let recs = demo_records();
        let mut cfg = online_cfg();
        cfg.live_window = 40;
        cfg.refit_every = 8;
        let mut online = OnlineDetector::new(cfg, services());
        let mut events = Vec::new();
        for r in &recs {
            online.push(r);
            events.extend(online.drain_events());
        }
        for (i, e) in events.iter().enumerate() {
            let expect = if i % 2 == 0 {
                VerdictKind::Onset
            } else {
                VerdictKind::Clear
            };
            assert_eq!(e.kind, expect, "event {i} out of order");
            assert!(e.detect_latency >= SimDuration::ZERO);
        }
        if let Some(onset) = events.first() {
            assert_eq!(onset.kind, VerdictKind::Onset);
            assert!(onset.interval_end > SimTime::from_millis(2_000));
        }
    }

    #[test]
    fn unmatched_rules_match_batch() {
        // A front-truncated response and a never-answered request.
        let recs = vec![
            rec(100, 1, 0, MsgKind::Response, 9, 0),
            rec(200, 0, 1, MsgKind::Request, 1, 0),
            rec(300, 1, 0, MsgKind::Response, 1, 0),
            rec(400, 0, 1, MsgKind::Request, 2, 0),
        ];
        let mut log = TraceLog::new(nodes());
        for r in &recs {
            log.push(*r);
        }
        let spans = SpanSet::extract(&log);
        let mut online = OnlineDetector::new(online_cfg(), services());
        for r in &recs {
            online.push(r);
        }
        let reports = online.finish(SimTime::from_millis(50)).reports;
        assert_eq!(
            reports[0].unmatched,
            *spans.unmatched.get(&NodeId(1)).unwrap()
        );
        assert_eq!(reports[0].matched, 1);
    }

    #[test]
    fn snapshot_tracks_in_flight_and_lag() {
        let mut online = OnlineDetector::new(online_cfg(), services());
        online.push(&rec(10_000, 0, 1, MsgKind::Request, 1, 0));
        online.push(&rec(500_000, 0, 1, MsgKind::Request, 2, 0));
        let snap = online.snapshot();
        assert_eq!(snap.spans_in_flight, 2);
        // Watermark pinned at the oldest open arrival.
        assert_eq!(snap.lag, SimDuration::from_micros(490_000));
        assert_eq!(snap.servers.len(), 1);
        assert_eq!(snap.servers[0].open_requests, 2);
        assert!(snap.state_bytes > 0);
    }

    #[test]
    fn heap_compaction_bounds_state_under_pinned_watermark() {
        // One ancient open request pins the watermark while other
        // connections churn; the heap must not grow with the churn.
        let mut online = OnlineDetector::new(online_cfg(), services());
        online.push(&rec(0, 0, 1, MsgKind::Request, 999, 0));
        for i in 0..10_000u64 {
            let t = 1_000 + i * 100;
            online.push(&rec(t, 0, 1, MsgKind::Request, 1 + (i % 8) as u32, 0));
            online.push(&rec(t + 50, 1, 0, MsgKind::Response, 1 + (i % 8) as u32, 0));
        }
        let state = online.servers.get(&1).unwrap();
        assert!(
            state.heap.len() <= 2 * state.open + 16,
            "heap grew to {} with {} open",
            state.heap.len(),
            state.open
        );
        // The ring grows while the watermark is pinned (correctness over
        // memory until the request resolves) — resolve it and the ring
        // drains.
        online.push(&rec(2_000_000, 1, 0, MsgKind::Response, 999, 0));
        let state = online.servers.get(&1).unwrap();
        assert!(state.finalized > 0, "watermark released finalization");
        assert!(
            state.ring.len() <= 2,
            "ring drained after release: {}",
            state.ring.len()
        );
    }

    #[test]
    fn bounded_mode_skips_retained_series() {
        let recs = demo_records();
        let mut cfg = online_cfg();
        cfg.retain = false;
        let mut online = OnlineDetector::new(cfg, services());
        for r in &recs {
            online.push(r);
        }
        let reports = online.finish(SimTime::from_millis(2_930)).reports;
        assert!(reports[0].loads.is_empty());
        assert!(reports[0].states.is_empty());
        assert!(reports[0].nstar.is_none());
        assert!(reports[0].matched > 0);
    }
}
