#![warn(missing_docs)]

//! # fgbd-core — fine-grained transient bottleneck detection
//!
//! The primary contribution of *"Detecting Transient Bottlenecks in n-Tier
//! Applications through Fine-Grained Analysis"* (Wang et al., ICDCS 2013),
//! as a library. Given per-server request spans from passive network
//! tracing ([`fgbd_trace`]), it:
//!
//! 1. computes fine-grained **load** (time-weighted concurrent requests)
//!    and **normalized throughput** (work units per interval) series at
//!    granularities down to 50 ms — [`series`];
//! 2. estimates each server's **congestion point N\*** by statistical
//!    intervention analysis over the load/throughput correlation —
//!    [`nstar`];
//! 3. classifies every interval (normal / congested / frozen) and
//!    aggregates congestion episodes, ranking servers by how often they are
//!    **transient bottlenecks** — [`detect`];
//! 4. explains root causes: **POI** (frozen) intervals flag stop-the-world
//!    events like JVM GC; multiple congested-throughput **plateaus** flag
//!    DVFS clock switching — [`plateau`]; interval-aligned correlations
//!    ([`correlate`]) connect the dots (GC ratio ↔ load ↔ response time);
//!    and [`oplaw`] audits captures against Little's Law / the Utilization
//!    Law, the operational foundations the method rests on. The paper's
//!    stated future work — automatic selection of the monitoring interval
//!    length — is implemented in [`interval`].
//!
//! # Examples
//!
//! Detect a transient bottleneck in a hand-built span log:
//!
//! ```
//! use fgbd_core::detect::{analyze_server, DetectorConfig};
//! use fgbd_core::series::Window;
//! use fgbd_des::{SimDuration, SimTime};
//! use fgbd_trace::servicetime::ServiceTimeTable;
//! use fgbd_trace::{ClassId, ConnId, NodeId, Span};
//!
//! let server = NodeId(1);
//! let mut spans = Vec::new();
//! // Steady phase: one 10 ms request at a time.
//! for i in 0..200u64 {
//!     spans.push(Span {
//!         server, class: ClassId(0), conn: ConnId(0), truth: None,
//!         arrival: SimTime::from_micros(i * 10_000),
//!         departure: SimTime::from_micros(i * 10_000 + 9_000),
//!     });
//! }
//! // A burst of 40 concurrent requests that drain slowly.
//! for j in 0..40u64 {
//!     spans.push(Span {
//!         server, class: ClassId(0), conn: ConnId(1), truth: None,
//!         arrival: SimTime::from_millis(2_000),
//!         departure: SimTime::from_micros(2_050_000 + j * 5_000),
//!     });
//! }
//! let mut services = ServiceTimeTable::new();
//! services.insert(server, ClassId(0), SimDuration::from_millis(10));
//! let window = Window::new(SimTime::ZERO, SimTime::from_millis(2_400),
//!                          SimDuration::from_millis(50));
//! let report = analyze_server(&spans, server, window, &services,
//!                             SimDuration::from_millis(10),
//!                             &DetectorConfig::default());
//! assert!(report.congested_intervals() > 0);
//! ```

pub mod correlate;
pub mod detect;
pub mod interval;
pub mod nstar;
pub mod online;
pub mod oplaw;
pub mod plateau;
pub mod series;
pub mod stats;

pub use detect::{analyze_server, rank_bottlenecks, DetectorConfig, IntervalState, ServerReport};
pub use nstar::{NStar, NStarConfig};
pub use online::{
    MonitorEvent, MonitorSnapshot, OnlineConfig, OnlineDetector, OnlineFinish, OnlineReport,
    ServerSnapshot, VerdictKind,
};
pub use plateau::{find_plateaus, match_levels, Plateau, PlateauConfig};
pub use series::{LoadSeries, ThroughputSeries, Window};
