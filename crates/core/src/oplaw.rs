//! Operational-law validation (Denning & Buzen, the paper's reference \[9\]).
//!
//! The detection method rests on operational analysis: a server's
//! throughput grows with load until the bottleneck resource saturates
//! (Utilization Law), and load, throughput, and residence time are tied by
//! Little's Law (`L = X · R`). This module checks those identities directly
//! on measured spans, giving the analysis pipeline a built-in consistency
//! harness: if Little's Law does not hold on a capture, the capture (or the
//! clock that produced it) is broken, not the server.

use fgbd_des::SimTime;
use fgbd_trace::Span;
use serde::{Deserialize, Serialize};

use crate::series::Window;

/// The three operational quantities over one measurement window, computed
/// independently of each other from raw spans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationalQuantities {
    /// Time-average number of requests in the server (`L`).
    pub mean_load: f64,
    /// Completion rate in requests per second (`X`).
    pub throughput: f64,
    /// Mean residence time in seconds of requests *completing* in the
    /// window (`R`).
    pub mean_residence: f64,
    /// Completions observed.
    pub completions: usize,
}

impl OperationalQuantities {
    /// Computes `L`, `X`, and `R` over `[from, to)` from spans.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`.
    pub fn measure(spans: &[Span], from: SimTime, to: SimTime) -> OperationalQuantities {
        assert!(to > from, "empty measurement window");
        let secs = (to - from).as_secs_f64();
        let mut residence_integral = 0.0;
        let mut completions = 0usize;
        let mut completed_residence = 0.0;
        for s in spans {
            if s.overlaps(from, to) {
                let a = s.arrival.max(from);
                let d = s.departure.min(to);
                residence_integral += (d - a).as_secs_f64();
            }
            if s.departure >= from && s.departure < to {
                completions += 1;
                completed_residence += s.residence().as_secs_f64();
            }
        }
        OperationalQuantities {
            mean_load: residence_integral / secs,
            throughput: completions as f64 / secs,
            mean_residence: if completions == 0 {
                0.0
            } else {
                completed_residence / completions as f64
            },
            completions,
        }
    }

    /// Little's Law residual `|L − X·R| / max(L, ε)` — near zero on a
    /// steady-state window, growing with boundary effects on short windows.
    pub fn littles_law_residual(&self) -> f64 {
        let lhs = self.mean_load;
        let rhs = self.throughput * self.mean_residence;
        (lhs - rhs).abs() / lhs.max(1e-9)
    }
}

/// A windowed Little's-Law audit over a whole capture: the fraction of
/// intervals whose residual exceeds `tolerance`.
///
/// Boundary effects make single 50 ms intervals noisy; audits are usually
/// run at 1 s+ granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LittlesLawAudit {
    /// Per-interval residuals (NaN where the interval had no completions).
    pub residuals: Vec<f64>,
    /// Fraction of defined residuals above the tolerance.
    pub violation_fraction: f64,
    /// The tolerance used.
    pub tolerance: f64,
}

impl LittlesLawAudit {
    /// Audits `spans` over every interval of `window`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive.
    pub fn run(spans: &[Span], window: &Window, tolerance: f64) -> LittlesLawAudit {
        assert!(tolerance > 0.0, "tolerance must be positive");
        let mut residuals = Vec::with_capacity(window.len());
        let mut defined = 0usize;
        let mut violations = 0usize;
        for i in 0..window.len() {
            let (from, to) = window.bounds(i);
            let q = OperationalQuantities::measure(spans, from, to);
            if q.completions == 0 || q.mean_load < 1e-9 {
                residuals.push(f64::NAN);
                continue;
            }
            let r = q.littles_law_residual();
            defined += 1;
            if r > tolerance {
                violations += 1;
            }
            residuals.push(r);
        }
        LittlesLawAudit {
            residuals,
            violation_fraction: if defined == 0 {
                0.0
            } else {
                violations as f64 / defined as f64
            },
            tolerance,
        }
    }
}

/// Utilization-Law cross-check: given a server's measured busy time and its
/// completions over a window, the implied mean service demand
/// `D = busy / completions`; the Utilization Law then predicts
/// `TP_max ≈ capacity / D`. Returns `(demand_seconds, predicted_tp_max)`.
///
/// Comparing `predicted_tp_max` against the N\* analysis's empirical
/// `TP_max` validates that the detected ceiling is the CPU and not an
/// artifact.
///
/// # Panics
///
/// Panics if `completions == 0` or any argument is non-positive.
pub fn utilization_law_ceiling(
    busy_core_seconds: f64,
    completions: u64,
    cores: u32,
    window_seconds: f64,
) -> (f64, f64) {
    assert!(completions > 0, "need completions to infer demand");
    assert!(
        busy_core_seconds >= 0.0 && window_seconds > 0.0 && cores > 0,
        "invalid utilization-law inputs"
    );
    let demand = busy_core_seconds / completions as f64;
    let tp_max = if demand > 0.0 {
        f64::from(cores) / demand
    } else {
        f64::INFINITY
    };
    (demand, tp_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbd_des::SimDuration;
    use fgbd_trace::{ClassId, ConnId, NodeId};

    fn span(a_us: u64, d_us: u64) -> Span {
        Span {
            server: NodeId(1),
            class: ClassId(0),
            arrival: SimTime::from_micros(a_us),
            departure: SimTime::from_micros(d_us),
            conn: ConnId(0),
            truth: None,
        }
    }

    /// A deterministic periodic workload entirely inside the window
    /// satisfies Little's Law exactly.
    #[test]
    fn littles_law_holds_exactly_for_contained_spans() {
        // 100 requests, each 10 ms, arriving every 20 ms: L = 0.5, X = 50/s,
        // R = 10 ms -> X*R = 0.5.
        let spans: Vec<Span> = (0..100)
            .map(|i| span(i * 20_000, i * 20_000 + 10_000))
            .collect();
        let q = OperationalQuantities::measure(&spans, SimTime::ZERO, SimTime::from_millis(2_000));
        assert!((q.mean_load - 0.5).abs() < 1e-9);
        assert!((q.throughput - 50.0).abs() < 1e-9);
        assert!((q.mean_residence - 0.010).abs() < 1e-12);
        assert!(q.littles_law_residual() < 1e-9);
    }

    #[test]
    fn boundary_spans_create_bounded_residuals() {
        // A single span half inside the window inflates L relative to X*R
        // (its completion falls outside) — the residual is defined and
        // positive but the quantities stay sane.
        let spans = vec![span(900_000, 1_100_000)];
        let q = OperationalQuantities::measure(&spans, SimTime::ZERO, SimTime::from_secs(1));
        assert!(q.mean_load > 0.0);
        assert_eq!(q.completions, 0);
        assert_eq!(q.mean_residence, 0.0);
    }

    #[test]
    fn audit_passes_on_steady_traffic() {
        let spans: Vec<Span> = (0..2_000)
            .map(|i| span(i * 5_000, i * 5_000 + 3_000))
            .collect();
        let window = Window::new(
            SimTime::ZERO,
            SimTime::from_secs(10),
            SimDuration::from_secs(1),
        );
        let audit = LittlesLawAudit::run(&spans, &window, 0.05);
        assert_eq!(audit.residuals.len(), 10);
        assert!(
            audit.violation_fraction < 0.11,
            "violations {}",
            audit.violation_fraction
        );
    }

    #[test]
    fn audit_flags_corrupted_capture() {
        // Corrupt: departures before arrivals would panic earlier, so model
        // corruption as absurdly inflated residences (clock skew): spans
        // claim 10x residence vs their true overlap pattern.
        let mut spans: Vec<Span> = (0..200)
            .map(|i| span(i * 5_000, i * 5_000 + 3_000))
            .collect();
        // "Skewed" records: departure stamped 400 ms late.
        for s in spans.iter_mut().skip(100) {
            s.departure += SimDuration::from_millis(400);
        }
        let window = Window::new(
            SimTime::ZERO,
            SimTime::from_millis(1_500),
            SimDuration::from_millis(500),
        );
        let audit = LittlesLawAudit::run(&spans, &window, 0.05);
        // The skewed region violates the law.
        assert!(
            audit.violation_fraction > 0.3,
            "violations {}",
            audit.violation_fraction
        );
    }

    #[test]
    fn utilization_law_recovers_demand_and_ceiling() {
        // 1 core busy 0.8 of 10 s, 4,000 completions: D = 2 ms, TP_max 500/s.
        let (d, tp) = utilization_law_ceiling(8.0, 4_000, 1, 10.0);
        assert!((d - 0.002).abs() < 1e-12);
        assert!((tp - 500.0).abs() < 1e-9);
        // Two cores double the ceiling.
        let (_, tp2) = utilization_law_ceiling(8.0, 4_000, 2, 10.0);
        assert!((tp2 - 1_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "completions")]
    fn utilization_law_rejects_zero_completions() {
        utilization_law_ceiling(1.0, 0, 1, 1.0);
    }
}
