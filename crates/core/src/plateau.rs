//! Throughput-plateau (mode) detection for congested intervals — the
//! analysis behind Fig 12: with SpeedStep enabled, MySQL's congested
//! intervals cluster around one saturated-throughput level *per P-state the
//! CPU visited* (≈3,700 / ≈5,000 / ≈7,000 req/s in the paper); with
//! SpeedStep disabled a single plateau remains.
//!
//! Modes are found on a density histogram whose bin width scales with the
//! data (a fraction of the median value), smoothed by a short moving
//! average; peaks survive only with sufficient **topographic prominence**
//! (the valley separating them from higher ground must dip well below the
//! peak), which merges the ripples of a single broad cluster while keeping
//! genuinely separated plateaus.

use serde::{Deserialize, Serialize};

use crate::stats::percentile;

/// Parameters of the mode finder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlateauConfig {
    /// Histogram bin width as a fraction of the median value. Two plateaus
    /// closer than about twice this fraction merge.
    pub bandwidth_frac: f64,
    /// Moving-average half-width (bins) used to smooth the histogram.
    pub smooth: usize,
    /// Minimum topographic prominence as a fraction of the peak's own
    /// height: the saddle toward higher ground must dip below
    /// `(1 − min_prominence) · height`.
    pub min_prominence: f64,
    /// Plateaus holding less than this fraction of samples are dropped.
    pub min_share: f64,
}

impl Default for PlateauConfig {
    fn default() -> Self {
        PlateauConfig {
            bandwidth_frac: 0.05,
            smooth: 2,
            min_prominence: 0.5,
            min_share: 0.04,
        }
    }
}

/// One detected throughput plateau.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plateau {
    /// Plateau level (mean of the samples assigned to it).
    pub level: f64,
    /// Fraction of congested intervals belonging to this plateau.
    pub share: f64,
}

/// Finds throughput plateaus among congested-interval throughput values.
///
/// Returns plateaus ascending by level; empty when fewer than 8 samples are
/// supplied (too little evidence to call modes).
///
/// # Panics
///
/// Panics if `cfg.bandwidth_frac` is not positive.
pub fn find_plateaus(values: &[f64], cfg: &PlateauConfig) -> Vec<Plateau> {
    assert!(cfg.bandwidth_frac > 0.0, "bandwidth must be positive");
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 8 {
        return Vec::new();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let median = percentile(&finite, 0.5).expect("non-empty");
    let width = (cfg.bandwidth_frac * median.abs()).max(1e-12);
    if hi - lo < width {
        // All values within one bandwidth — a single plateau.
        let level = finite.iter().sum::<f64>() / finite.len() as f64;
        return vec![Plateau { level, share: 1.0 }];
    }
    // Bin so the smoothing window (2·smooth+1 bins) spans one bandwidth.
    let bin_w = width / (2 * cfg.smooth + 1) as f64;
    let bins = (((hi - lo) / bin_w).ceil() as usize).clamp(4, 4_000);
    let bw = (hi - lo) / bins as f64;
    let mut hist = vec![0.0f64; bins];
    for &v in &finite {
        let b = (((v - lo) / bw) as usize).min(bins - 1);
        hist[b] += 1.0;
    }
    let smoothed: Vec<f64> = (0..bins)
        .map(|i| {
            let a = i.saturating_sub(cfg.smooth);
            let b = (i + cfg.smooth + 1).min(bins);
            hist[a..b].iter().sum::<f64>() / (b - a) as f64
        })
        .collect();

    // Local maxima (plateau-tolerant: left side allows equality).
    let maxima: Vec<usize> = (0..bins)
        .filter(|&i| {
            let v = smoothed[i];
            v > 0.0 && (i == 0 || smoothed[i - 1] <= v) && (i + 1 == bins || smoothed[i + 1] < v)
        })
        .collect();
    if maxima.is_empty() {
        return Vec::new();
    }

    // Topographic prominence: for each peak, the saddle is the higher of
    // the two minima on the paths to the nearest strictly-higher bin on
    // each side (or 0 at the data edge).
    let prominent: Vec<usize> = maxima
        .iter()
        .copied()
        .filter(|&p| {
            let h = smoothed[p];
            let saddle_toward = |range: &mut dyn Iterator<Item = usize>| -> Option<f64> {
                let mut valley = h;
                for j in range {
                    valley = valley.min(smoothed[j]);
                    if smoothed[j] > h {
                        return Some(valley);
                    }
                }
                None // reached the edge without meeting higher ground
            };
            let left = saddle_toward(&mut (0..p).rev());
            let right = saddle_toward(&mut (p + 1..bins));
            let saddle = match (left, right) {
                (None, None) => return true, // the global maximum
                (Some(s), None) | (None, Some(s)) => s,
                (Some(a), Some(b)) => a.max(b),
            };
            h - saddle >= cfg.min_prominence * h
        })
        .collect();
    if prominent.is_empty() {
        return Vec::new();
    }

    // Assign every sample to the nearest surviving peak.
    let centers: Vec<f64> = prominent
        .iter()
        .map(|&i| lo + bw * (i as f64 + 0.5))
        .collect();
    let mut mass = vec![0.0f64; centers.len()];
    let mut sum = vec![0.0f64; centers.len()];
    for &v in &finite {
        let j = nearest(&centers, v);
        mass[j] += 1.0;
        sum[j] += v;
    }
    let total: f64 = mass.iter().sum();
    let mut out: Vec<Plateau> = (0..centers.len())
        .filter(|&j| mass[j] / total >= cfg.min_share)
        .map(|j| Plateau {
            level: sum[j] / mass[j],
            share: mass[j] / total,
        })
        .collect();
    out.sort_by(|a, b| a.level.partial_cmp(&b.level).expect("finite"));
    out
}

fn nearest(centers: &[f64], v: f64) -> usize {
    centers
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (v - **a)
                .abs()
                .partial_cmp(&(v - **b).abs())
                .expect("finite")
        })
        .map(|(i, _)| i)
        .expect("centers non-empty")
}

/// Matches detected plateau levels to candidate capacity levels (e.g.
/// per-P-state saturated throughputs); returns for each plateau the index of
/// the nearest candidate. Used to attribute Fig 12's plateaus to Table II's
/// P-states.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn match_levels(plateaus: &[Plateau], candidates: &[f64]) -> Vec<usize> {
    assert!(!candidates.is_empty(), "need at least one candidate level");
    plateaus
        .iter()
        .map(|p| nearest(candidates, p.level))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic jitter in [-1, 1].
    fn jitter(i: usize) -> f64 {
        (((i * 2_654_435_761) % 2_000) as f64 / 1_000.0) - 1.0
    }

    #[test]
    fn single_cluster_is_one_plateau() {
        let values: Vec<f64> = (0..300).map(|i| 3_700.0 + 80.0 * jitter(i)).collect();
        let p = find_plateaus(&values, &PlateauConfig::default());
        assert_eq!(p.len(), 1, "plateaus {p:?}");
        assert!((p[0].level - 3_700.0).abs() < 60.0);
        assert!((p[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_pstate_clusters_are_three_plateaus() {
        // The Fig 12(b) shape: 3,470 / 4,626 / 6,553 with spread.
        let mut values = Vec::new();
        for i in 0..240 {
            values.push(3_470.0 + 100.0 * jitter(i));
        }
        for i in 0..150 {
            values.push(4_626.0 + 100.0 * jitter(i + 1_000));
        }
        for i in 0..180 {
            values.push(6_553.0 + 120.0 * jitter(i + 2_000));
        }
        let p = find_plateaus(&values, &PlateauConfig::default());
        assert_eq!(p.len(), 3, "plateaus {p:?}");
        assert!((p[0].level - 3_470.0).abs() < 120.0);
        assert!((p[1].level - 4_626.0).abs() < 120.0);
        assert!((p[2].level - 6_553.0).abs() < 140.0);
        let share_sum: f64 = p.iter().map(|x| x.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // And they map onto the right P-state capacities.
        let caps = [6_553.0, 6_168.0, 5_012.0, 4_626.0, 3_470.0];
        assert_eq!(match_levels(&p, &caps), vec![4, 3, 0]);
    }

    #[test]
    fn minority_plateau_survives_if_separated() {
        let mut values = Vec::new();
        for i in 0..500 {
            values.push(6_500.0 + 100.0 * jitter(i));
        }
        for i in 0..40 {
            values.push(3_500.0 + 60.0 * jitter(i + 9_000)); // 7.4% share
        }
        let p = find_plateaus(&values, &PlateauConfig::default());
        assert_eq!(p.len(), 2, "plateaus {p:?}");
        assert!(p[0].share > 0.05 && p[0].share < 0.10);
    }

    #[test]
    fn tiny_sample_yields_nothing() {
        assert!(find_plateaus(&[1.0, 2.0], &PlateauConfig::default()).is_empty());
        assert!(find_plateaus(&[], &PlateauConfig::default()).is_empty());
    }

    #[test]
    fn identical_values_are_one_plateau() {
        let values = vec![500.0; 100];
        let p = find_plateaus(&values, &PlateauConfig::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].level, 500.0);
    }

    #[test]
    fn close_clusters_merge() {
        // Two clusters 3% apart: inside one bandwidth, must merge.
        let mut values = Vec::new();
        for i in 0..200 {
            values.push(5_000.0 + 30.0 * jitter(i));
        }
        for i in 0..200 {
            values.push(5_150.0 + 30.0 * jitter(i + 500));
        }
        let p = find_plateaus(&values, &PlateauConfig::default());
        assert_eq!(p.len(), 1, "plateaus {p:?}");
        assert!((p[0].level - 5_075.0).abs() < 100.0);
    }

    #[test]
    #[should_panic(expected = "candidate")]
    fn match_levels_rejects_empty_candidates() {
        match_levels(
            &[Plateau {
                level: 1.0,
                share: 1.0,
            }],
            &[],
        );
    }
}
