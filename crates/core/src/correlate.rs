//! Interval-aligned correlation utilities — the evidence plots of Fig 10:
//! Tomcat's GC running ratio correlates with its load (10a), and its load
//! correlates with system response time (10b).

use fgbd_des::SimTime;

use crate::series::Window;
pub use crate::stats::{lagged_pearson, pearson};

/// Averages a point process of `(time, value)` events per interval of
/// `window`; intervals with no events get `f64::NAN`.
///
/// Used to put end-to-end response-time samples (one per finished
/// transaction) on the same grid as a load series.
pub fn mean_per_interval(events: &[(SimTime, f64)], window: &Window) -> Vec<f64> {
    let n = window.len();
    let mut sum = vec![0.0f64; n];
    let mut cnt = vec![0u32; n];
    let ilen = window.interval.as_micros();
    for &(at, v) in events {
        if at < window.start || at >= window.end {
            continue;
        }
        let i = ((at - window.start).as_micros() / ilen) as usize;
        if i < n {
            sum[i] += v;
            cnt[i] += 1;
        }
    }
    (0..n)
        .map(|i| {
            if cnt[i] == 0 {
                f64::NAN
            } else {
                sum[i] / f64::from(cnt[i])
            }
        })
        .collect()
}

/// Counts events per interval (per-second rates).
pub fn rate_per_interval(events: &[SimTime], window: &Window) -> Vec<f64> {
    let n = window.len();
    let mut cnt = vec![0u32; n];
    let ilen = window.interval.as_micros();
    for &at in events {
        if at < window.start || at >= window.end {
            continue;
        }
        let i = ((at - window.start).as_micros() / ilen) as usize;
        if i < n {
            cnt[i] += 1;
        }
    }
    let secs = window.interval.as_secs_f64();
    cnt.into_iter().map(|c| f64::from(c) / secs).collect()
}

/// Pearson correlation over interval pairs where **both** series are
/// finite — response-time series contain NaN for empty intervals, which
/// plain [`pearson`] would poison.
pub fn finite_pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    let pairs: (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip();
    pearson(&pairs.0, &pairs.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbd_des::SimDuration;

    fn window() -> Window {
        Window::new(
            SimTime::ZERO,
            SimTime::from_millis(200),
            SimDuration::from_millis(50),
        )
    }

    #[test]
    fn mean_per_interval_averages_and_marks_gaps() {
        let events = vec![
            (SimTime::from_millis(10), 1.0),
            (SimTime::from_millis(20), 3.0),
            (SimTime::from_millis(60), 5.0),
            (SimTime::from_millis(210), 9.0), // outside window
        ];
        let m = mean_per_interval(&events, &window());
        assert_eq!(m.len(), 4);
        assert!((m[0] - 2.0).abs() < 1e-12);
        assert!((m[1] - 5.0).abs() < 1e-12);
        assert!(m[2].is_nan());
        assert!(m[3].is_nan());
    }

    #[test]
    fn rate_per_interval_counts() {
        let events = vec![
            SimTime::from_millis(10),
            SimTime::from_millis(20),
            SimTime::from_millis(60),
        ];
        let r = rate_per_interval(&events, &window());
        assert!((r[0] - 40.0).abs() < 1e-12); // 2 events / 0.05s
        assert!((r[1] - 20.0).abs() < 1e-12);
        assert_eq!(r[2], 0.0);
    }

    #[test]
    fn finite_pearson_skips_nan_intervals() {
        let xs = vec![1.0, 2.0, f64::NAN, 4.0, 5.0];
        let ys = vec![2.0, 4.0, 100.0, 8.0, 10.0];
        let r = finite_pearson(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        // Symmetric: NaN on the other side too.
        let r2 = finite_pearson(&ys, &xs).unwrap();
        assert!((r2 - 1.0).abs() < 1e-12);
        // Too few finite pairs.
        assert_eq!(finite_pearson(&[f64::NAN, 1.0], &[1.0, f64::NAN]), None);
    }
}
