#![warn(missing_docs)]

//! # fgbd-des — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the `fgbd` reproduction of *"Detecting
//! Transient Bottlenecks in n-Tier Applications through Fine-Grained
//! Analysis"* (ICDCS 2013). It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time,
//!   matching the microsecond timestamps produced by the paper's passive
//!   network tracing.
//! * [`EventQueue`] and the [`Simulation`] driver — a hierarchical timing
//!   wheel with amortized O(1) schedule/pop and deterministic FIFO
//!   tie-breaking at equal [`SimTime`] (the contract is specified in the
//!   [`queue`] module docs), so identical seeds produce identical traces.
//! * [`Dice`] — a seeded random-variate generator (exponential, uniform,
//!   bounded Pareto, …) used by the workload and transient-event models.
//! * [`PsIntegrator`] — an exact egalitarian processor-sharing integrator
//!   used by the n-tier server model to advance many concurrent requests in
//!   O(log n) per event without time-slicing error.
//!
//! # Examples
//!
//! ```
//! use fgbd_des::{SimTime, SimDuration, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(5), "late");
//! q.schedule(SimTime::from_millis(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_millis(1));
//! assert_eq!(ev, "early");
//! ```

pub mod hash;
pub mod parallel;
pub mod ps;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod sync;
pub mod time;

pub use parallel::{run_lockstep, Envelope, LockstepConfig, LockstepReport, NoMsg, ShardActor};
pub use ps::{JobId, PsIntegrator};
pub use queue::EventQueue;
pub use rng::Dice;
pub use sim::{Actor, Scheduler, Simulation};
pub use time::{SimDuration, SimTime};
