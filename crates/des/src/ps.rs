//! Exact egalitarian processor-sharing (PS) integrator.
//!
//! A multi-core server processing `n` concurrent requests gives each request
//! a service rate of `speed · min(1, cores/n)` work-units per second (each
//! request runs on at most one core; beyond `cores` active requests the cores
//! are shared equally). Because all active jobs progress at the *same* rate,
//! attained service can be tracked with a single global accumulator: a job
//! that arrives when the accumulator reads `A` completes when the accumulator
//! reaches `A + demand`. This makes every insert/remove/completion cheap and
//! introduces **no time-slicing discretization error** — essential when
//! the analysis downstream looks at 50 ms windows.
//!
//! The integrator also supports `speed` changes (DVFS P-state transitions)
//! and freezes (stop-the-world garbage collection), the two transient-event
//! mechanisms studied in the paper.
//!
//! # Structure: per-class FIFO lanes under a tournament min
//!
//! Completion thresholds are `A + d` where `A` (the shared attained-service
//! accumulator) is monotone non-decreasing in insertion time. When demands
//! `d` within a *class* of jobs are deterministic — or merely similar, as
//! with the n-tier simulator's per-class lognormal demands — same-class
//! thresholds arrive in (nearly) increasing order, so each class can be a
//! plain FIFO lane: insert is an O(1) tail append, and the global minimum is
//! a K-way tournament over the lane heads. Inserts that *would* break a
//! lane's monotonicity (possible when attained progress stalls under a GC
//! freeze, or when demand variance outruns the accumulator between
//! arrivals) spill to a small ordered heap that participates in the same
//! tournament — correctness never depends on the monotonicity holding, only
//! the constant factor does. The winning key is cached across
//! [`PsIntegrator::next_completion`] calls, so the per-event reschedule
//! probe in the simulator's hot loop is a field read, not a heap peek plus
//! a hash probe.
//!
//! The previous `BinaryHeap` + lazy-deletion index implementation is kept
//! verbatim as [`reference::PsIntegrator`] — the executable specification.
//! Property tests (`crates/des/tests/properties.rs`) hold the lane
//! integrator to identical `(time, completion-sequence)` behaviour across
//! randomized DVFS speed-change and freeze/unfreeze schedules, and both to
//! a slow time-slicing integrator within its discretization tolerance.
//!
//! Unlike the event queue, this structure cannot become a timing wheel: its
//! keys are *attained-work thresholds* — continuous `f64`s whose mapping
//! to completion times is rescaled retroactively by every DVFS speed
//! change and GC freeze, so there is no stable integer time axis to
//! bucket on, and quantizing thresholds would reintroduce exactly the
//! time-slicing error this integrator exists to avoid.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::{SimDuration, SimTime};

/// Opaque identifier of a job inside a [`PsIntegrator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Completion-threshold key: ordered first by threshold value then by
/// insertion sequence so equal thresholds complete FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Key {
    // Thresholds are non-negative finite f64s, for which IEEE-754 bit
    // patterns order identically to the values themselves.
    bits: u64,
    seq: u64,
}

impl Key {
    fn new(threshold: f64, seq: u64) -> Self {
        debug_assert!(threshold.is_finite() && threshold >= 0.0);
        Key {
            bits: threshold.to_bits(),
            seq,
        }
    }

    fn threshold(self) -> f64 {
        f64::from_bits(self.bits)
    }
}

/// Where the cached tournament winner lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// Head of lane `i`.
    Lane(u32),
    /// Top of the spill heap.
    Spill,
}

/// Exact processor-sharing progress integrator for one server.
///
/// Work is measured in *work-units*; in the n-tier simulator one work-unit is
/// one megacycle, and `speed` is the CPU clock in MHz, so demands are
/// CPU-time-at-reference-clock quantities.
///
/// Jobs carry an optional *lane* hint ([`PsIntegrator::insert_lane`]) — the
/// n-tier system passes the request class — which buys O(1) inserts while
/// the lane stays monotone (see the module docs). [`PsIntegrator::insert`]
/// uses lane 0.
///
/// # Examples
///
/// ```
/// use fgbd_des::{JobId, PsIntegrator, SimTime};
///
/// // 1 core at 100 work-units/s.
/// let mut ps = PsIntegrator::new(100.0, 1);
/// ps.insert(SimTime::ZERO, JobId(1), 50.0); // needs 0.5 s alone
/// ps.insert(SimTime::ZERO, JobId(2), 50.0); // shares the core -> 1.0 s
/// let done = ps.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(done, SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct PsIntegrator {
    speed: f64,
    cores: u32,
    frozen: bool,
    /// Per-job attained service accumulator (work-units).
    attained: f64,
    last_update: SimTime,
    /// Per-lane FIFO queues; invariant: keys within a lane are strictly
    /// increasing (each insert gets a fresh sequence number, so keys are
    /// unique), which makes every lane head a tournament candidate.
    lanes: Vec<VecDeque<(Key, JobId)>>,
    /// Inserts that would have broken their lane's monotonicity. Ordered
    /// min-first; always exact (no lazy deletion — [`Self::remove`] is a
    /// cold path that deletes eagerly).
    spill: BinaryHeap<Reverse<(Key, JobId)>>,
    /// Live job count (lanes + spill).
    live: usize,
    seq: u64,
    /// Integral of occupied cores over time (core-seconds of job progress).
    busy_core_seconds: f64,
    /// Cached tournament winner; meaningful only while `top_valid`.
    top: Option<(Key, JobId, Place)>,
    top_valid: bool,
    /// Lane appends + lane pops, accumulated in a plain field (the event
    /// loop is far too hot for per-op atomics) and flushed to the
    /// process-wide `des.ps_lane_ops` counter when the integrator drops.
    lane_ops: u64,
    /// Spill-heap pushes + pops, flushed to `des.ps_heap_ops` on drop —
    /// the ratio against `des.ps_lane_ops` is the monotonicity hit rate.
    heap_ops: u64,
}

impl Drop for PsIntegrator {
    fn drop(&mut self) {
        if self.lane_ops > 0 {
            fgbd_obsv::counter!("des.ps_lane_ops", self.lane_ops);
        }
        if self.heap_ops > 0 {
            fgbd_obsv::counter!("des.ps_heap_ops", self.heap_ops);
        }
    }
}

impl PsIntegrator {
    /// Creates an idle integrator with a single lane.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0` or `cores == 0`.
    pub fn new(speed: f64, cores: u32) -> Self {
        Self::with_lanes(speed, cores, 1)
    }

    /// Creates an idle integrator with `lanes` pre-sized FIFO lanes, so a
    /// caller that knows its class count (the n-tier system does, from the
    /// workload mix) never grows the lane table in the hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0` or `cores == 0`.
    pub fn with_lanes(speed: f64, cores: u32, lanes: usize) -> Self {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        assert!(cores > 0, "need at least one core");
        PsIntegrator {
            speed,
            cores,
            frozen: false,
            attained: 0.0,
            last_update: SimTime::ZERO,
            lanes: std::iter::repeat_with(VecDeque::new)
                .take(lanes.max(1))
                .collect(),
            spill: BinaryHeap::new(),
            live: 0,
            seq: 0,
            busy_core_seconds: 0.0,
            top: None,
            top_valid: true,
            lane_ops: 0,
            heap_ops: 0,
        }
    }

    /// Current per-job progress rate in work-units per second.
    fn per_job_rate(&self) -> f64 {
        if self.frozen || self.live == 0 {
            return 0.0;
        }
        let n = self.live as f64;
        self.speed * (self.cores as f64 / n).min(1.0)
    }

    /// Number of cores currently doing job work.
    fn cores_in_use(&self) -> f64 {
        if self.frozen {
            return 0.0;
        }
        (self.live as f64).min(self.cores as f64)
    }

    /// The current global minimum `(key, job, place)`, recomputing the
    /// cached tournament if an op invalidated it. O(lanes) on a miss, O(1)
    /// on a hit — and the hot loop (one `next_completion` probe per
    /// simulator event) hits far more often than it misses.
    fn peek_top(&mut self) -> Option<(Key, JobId, Place)> {
        if self.top_valid {
            return self.top;
        }
        let mut best: Option<(Key, JobId, Place)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some(&(key, job)) = lane.front() {
                if best.is_none_or(|(bk, _, _)| key < bk) {
                    best = Some((key, job, Place::Lane(i as u32)));
                }
            }
        }
        if let Some(&Reverse((key, job))) = self.spill.peek() {
            if best.is_none_or(|(bk, _, _)| key < bk) {
                best = Some((key, job, Place::Spill));
            }
        }
        self.top = best;
        self.top_valid = true;
        best
    }

    /// Removes the cached tournament winner from its structure.
    fn pop_top(&mut self, key: Key, place: Place) {
        match place {
            Place::Lane(i) => {
                let popped = self.lanes[i as usize].pop_front();
                debug_assert_eq!(popped.map(|(k, _)| k), Some(key));
                self.lane_ops += 1;
            }
            Place::Spill => {
                let popped = self.spill.pop();
                debug_assert_eq!(popped.map(|Reverse((k, _))| k), Some(key));
                self.heap_ops += 1;
            }
        }
        self.live -= 1;
        self.top_valid = false;
    }

    /// Integrates progress up to `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last update — callers must only
    /// move forward in time.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "PS integrator moved backwards");
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            self.attained += self.per_job_rate() * dt;
            self.busy_core_seconds += self.cores_in_use() * dt;
        }
        self.last_update = now;
    }

    /// Changes the CPU clock (DVFS transition). Progress up to `now` is
    /// integrated at the old speed.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0`.
    pub fn set_speed(&mut self, now: SimTime, speed: f64) {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        self.advance(now);
        self.speed = speed;
    }

    /// Current CPU clock in work-units per second per core.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Freezes or thaws all job progress (stop-the-world GC). Progress up to
    /// `now` is integrated with the old state.
    pub fn set_frozen(&mut self, now: SimTime, frozen: bool) {
        self.advance(now);
        self.frozen = frozen;
    }

    /// `true` while a freeze is in effect.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Admits a job needing `demand` work-units, on lane 0.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not positive and finite; debug builds also
    /// panic if `job` is already present.
    pub fn insert(&mut self, now: SimTime, job: JobId, demand: f64) {
        self.insert_lane(now, job, demand, 0);
    }

    /// Admits a job needing `demand` work-units on FIFO lane `lane`
    /// (created on demand). The lane is purely a performance hint — any
    /// job may use any lane; grouping jobs whose demands are similar (the
    /// n-tier system groups by request class) maximizes the monotone-append
    /// hit rate.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not positive and finite; debug builds also
    /// panic if `job` is already present.
    pub fn insert_lane(&mut self, now: SimTime, job: JobId, demand: f64, lane: usize) {
        assert!(
            demand > 0.0 && demand.is_finite(),
            "demand must be positive"
        );
        debug_assert!(!self.contains(job), "job inserted twice: {job:?}");
        self.advance(now);
        let key = Key::new(self.attained + demand, self.seq);
        self.seq += 1;
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, VecDeque::new);
        }
        let q = &mut self.lanes[lane];
        let place = if q.back().is_none_or(|&(tail, _)| tail < key) {
            q.push_back((key, job));
            self.lane_ops += 1;
            Place::Lane(lane as u32)
        } else {
            // Monotonicity miss: attained progress since the lane's tail was
            // inserted did not cover the demand gap (a freeze, or demand
            // variance). Order is preserved by the spill heap instead.
            self.spill.push(Reverse((key, job)));
            self.heap_ops += 1;
            Place::Spill
        };
        self.live += 1;
        // Keep the cached top coherent: a smaller key takes the crown; an
        // equal-or-larger one cannot displace it (keys are unique).
        if self.top_valid {
            match self.top {
                Some((tk, _, _)) if tk < key => {}
                _ => self.top = Some((key, job, place)),
            }
        }
    }

    /// `true` if `job` is currently in service. O(n) — membership is not
    /// indexed; the simulator tracks its own visits and never asks.
    pub fn contains(&self, job: JobId) -> bool {
        self.lanes.iter().any(|l| l.iter().any(|&(_, j)| j == job))
            || self.spill.iter().any(|&Reverse((_, j))| j == job)
    }

    /// Removes a job before completion, returning its remaining work-units,
    /// or `None` if the job is not present. Cold path: O(n) search, eager
    /// removal (nothing stale is ever left behind).
    pub fn remove(&mut self, now: SimTime, job: JobId) -> Option<f64> {
        self.advance(now);
        let mut key = None;
        'search: for lane in &mut self.lanes {
            for i in 0..lane.len() {
                if lane[i].1 == job {
                    key = lane.remove(i).map(|(k, _)| k);
                    break 'search;
                }
            }
        }
        if key.is_none() && self.spill.iter().any(|&Reverse((_, j))| j == job) {
            let old = std::mem::take(&mut self.spill);
            self.spill = old
                .into_iter()
                .filter(|&Reverse((k, j))| {
                    if j == job && key.is_none() {
                        key = Some(k);
                        false
                    } else {
                        true
                    }
                })
                .collect();
        }
        let key = key?;
        self.live -= 1;
        self.top_valid = false;
        Some((key.threshold() - self.attained).max(0.0))
    }

    /// The absolute time at which the next job will complete if nothing else
    /// changes, rounded *up* to the next microsecond. `None` if the
    /// integrator is empty or frozen.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let rate = self.per_job_rate();
        if rate <= 0.0 {
            return None;
        }
        let min_thr = self.peek_top()?.0.threshold();
        let remaining = (min_thr - self.attained).max(0.0);
        let dt_us = (remaining / rate * 1e6).ceil() as u64;
        now.checked_add(SimDuration::from_micros(dt_us))
    }

    /// Pops every job whose service demand has been met by `now`, in
    /// completion order, appending them to `out` (which is cleared first).
    /// The caller owns the buffer, so the steady-state event loop can reuse
    /// one allocation for every completion batch.
    pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<JobId>) {
        out.clear();
        self.advance(now);
        // Completion events are scheduled at the microsecond *after* the true
        // completion instant (ceil), so attained has met the threshold up to
        // f64 rounding noise; the epsilon absorbs that noise.
        let eps = 1e-9 + self.attained.abs() * 1e-12;
        while let Some((key, job, place)) = self.peek_top() {
            if key.threshold() <= self.attained + eps {
                self.pop_top(key, place);
                out.push(job);
            } else {
                break;
            }
        }
    }

    /// Pops every job whose service demand has been met by `now`, in
    /// completion order. Allocates a fresh buffer; hot loops should prefer
    /// [`Self::pop_due_into`].
    pub fn pop_due(&mut self, now: SimTime) -> Vec<JobId> {
        let mut done = Vec::new();
        self.pop_due_into(now, &mut done);
        done
    }

    /// Number of jobs currently in service.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no jobs are in service.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Remaining work across all jobs, in work-units, as of `now`.
    pub fn backlog(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        let att = self.attained;
        let lanes: f64 = self
            .lanes
            .iter()
            .flat_map(|l| l.iter())
            .map(|&(k, _)| (k.threshold() - att).max(0.0))
            .sum();
        let spill: f64 = self
            .spill
            .iter()
            .map(|&Reverse((k, _))| (k.threshold() - att).max(0.0))
            .sum();
        lanes + spill
    }

    /// Integral of cores occupied by job progress, in core-seconds, as of
    /// `now`. Stop-the-world freezes contribute nothing here; the server
    /// model accounts GC CPU burn separately.
    pub fn busy_core_seconds(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.busy_core_seconds
    }
}

pub mod reference {
    //! The original `BinaryHeap` + lazy-deletion-index integrator, kept
    //! verbatim as the executable specification of the PS contract (the
    //! same role `queue::reference::HeapQueue` plays for the event queue).
    //! The property tests in `tests/properties.rs` hold the lane-based
    //! [`PsIntegrator`](super::PsIntegrator) to identical completion
    //! sequences; the `ps_integrator` Criterion bench measures the gap.

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use super::{JobId, Key};
    use crate::hash::FxHashMap;
    use crate::time::{SimDuration, SimTime};

    /// Exact processor-sharing integrator over a lazy-deletion min-heap:
    /// O(log n) insert/complete, with a `JobId → Key` index as the source
    /// of truth for membership.
    #[derive(Debug)]
    pub struct PsIntegrator {
        speed: f64,
        cores: u32,
        frozen: bool,
        attained: f64,
        last_update: SimTime,
        /// Min-heap of completion thresholds, with **lazy deletion**:
        /// `remove` only drops the `index` entry, and stale heap entries
        /// are skipped when they surface at the top.
        jobs: BinaryHeap<Reverse<(Key, JobId)>>,
        index: FxHashMap<JobId, Key>,
        seq: u64,
        busy_core_seconds: f64,
    }

    impl PsIntegrator {
        /// Creates an idle integrator.
        ///
        /// # Panics
        ///
        /// Panics if `speed <= 0` or `cores == 0`.
        pub fn new(speed: f64, cores: u32) -> Self {
            assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
            assert!(cores > 0, "need at least one core");
            PsIntegrator {
                speed,
                cores,
                frozen: false,
                attained: 0.0,
                last_update: SimTime::ZERO,
                jobs: BinaryHeap::new(),
                index: FxHashMap::default(),
                seq: 0,
                busy_core_seconds: 0.0,
            }
        }

        fn per_job_rate(&self) -> f64 {
            if self.frozen || self.index.is_empty() {
                return 0.0;
            }
            let n = self.index.len() as f64;
            self.speed * (self.cores as f64 / n).min(1.0)
        }

        fn cores_in_use(&self) -> f64 {
            if self.frozen {
                return 0.0;
            }
            (self.index.len() as f64).min(self.cores as f64)
        }

        /// Discards lazily-deleted heap entries until the top is live, and
        /// returns it. A heap entry is live iff it matches the job's
        /// current key in `index`.
        fn live_top(&mut self) -> Option<(Key, JobId)> {
            while let Some(&Reverse((key, job))) = self.jobs.peek() {
                if self.index.get(&job) == Some(&key) {
                    return Some((key, job));
                }
                self.jobs.pop();
            }
            None
        }

        /// Integrates progress up to `now`.
        pub fn advance(&mut self, now: SimTime) {
            debug_assert!(now >= self.last_update, "PS integrator moved backwards");
            let dt = now.saturating_since(self.last_update).as_secs_f64();
            if dt > 0.0 {
                self.attained += self.per_job_rate() * dt;
                self.busy_core_seconds += self.cores_in_use() * dt;
            }
            self.last_update = now;
        }

        /// Changes the CPU clock (DVFS transition).
        ///
        /// # Panics
        ///
        /// Panics if `speed <= 0`.
        pub fn set_speed(&mut self, now: SimTime, speed: f64) {
            assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
            self.advance(now);
            self.speed = speed;
        }

        /// Freezes or thaws all job progress (stop-the-world GC).
        pub fn set_frozen(&mut self, now: SimTime, frozen: bool) {
            self.advance(now);
            self.frozen = frozen;
        }

        /// Admits a job needing `demand` work-units.
        ///
        /// # Panics
        ///
        /// Panics if `demand` is not positive and finite, or if `job` is
        /// already present.
        pub fn insert(&mut self, now: SimTime, job: JobId, demand: f64) {
            assert!(
                demand > 0.0 && demand.is_finite(),
                "demand must be positive"
            );
            self.advance(now);
            let key = Key::new(self.attained + demand, self.seq);
            self.seq += 1;
            let prev = self.index.insert(job, key);
            assert!(prev.is_none(), "job inserted twice: {job:?}");
            self.jobs.push(Reverse((key, job)));
        }

        /// Removes a job before completion, returning its remaining
        /// work-units, or `None` if the job is not present.
        pub fn remove(&mut self, now: SimTime, job: JobId) -> Option<f64> {
            self.advance(now);
            let key = self.index.remove(&job)?;
            Some((key.threshold() - self.attained).max(0.0))
        }

        /// The absolute time at which the next job will complete if nothing
        /// else changes, rounded *up* to the next microsecond.
        pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
            self.advance(now);
            let rate = self.per_job_rate();
            if rate <= 0.0 {
                return None;
            }
            let min_thr = self.live_top()?.0.threshold();
            let remaining = (min_thr - self.attained).max(0.0);
            let dt_us = (remaining / rate * 1e6).ceil() as u64;
            now.checked_add(SimDuration::from_micros(dt_us))
        }

        /// Pops every job whose service demand has been met by `now`, in
        /// completion order, appending them to `out` (cleared first).
        pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<JobId>) {
            out.clear();
            self.advance(now);
            let eps = 1e-9 + self.attained.abs() * 1e-12;
            while let Some((key, job)) = self.live_top() {
                if key.threshold() <= self.attained + eps {
                    self.jobs.pop();
                    self.index.remove(&job);
                    out.push(job);
                } else {
                    break;
                }
            }
        }

        /// Pops every job whose service demand has been met by `now`, in
        /// completion order.
        pub fn pop_due(&mut self, now: SimTime) -> Vec<JobId> {
            let mut done = Vec::new();
            self.pop_due_into(now, &mut done);
            done
        }

        /// Number of jobs currently in service.
        pub fn len(&self) -> usize {
            self.index.len()
        }

        /// `true` if no jobs are in service.
        pub fn is_empty(&self) -> bool {
            self.index.is_empty()
        }

        /// Integral of cores occupied by job progress, in core-seconds.
        pub fn busy_core_seconds(&mut self, now: SimTime) -> f64 {
            self.advance(now);
            self.busy_core_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn single_job_completes_at_demand_over_speed() {
        let mut ps = PsIntegrator::new(200.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(500)));
        assert_eq!(ps.pop_due(t(500)), vec![JobId(1)]);
        assert!(ps.is_empty());
    }

    #[test]
    fn equal_jobs_share_one_core_and_finish_together() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 50.0);
        ps.insert(SimTime::ZERO, JobId(2), 50.0);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(1000)));
        let done = ps.pop_due(t(1000));
        assert_eq!(done, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn jobs_below_core_count_run_at_full_speed() {
        let mut ps = PsIntegrator::new(100.0, 4);
        for i in 0..4 {
            ps.insert(SimTime::ZERO, JobId(i), 100.0);
        }
        // Four cores, four jobs: no sharing, all done at 1 s.
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(1000)));
        assert_eq!(ps.pop_due(t(1000)).len(), 4);
    }

    #[test]
    fn late_arrival_slows_everyone() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        // After 0.5 s job 1 has attained 50 units.
        ps.insert(t(500), JobId(2), 100.0);
        // Both now progress at 50 u/s; job 1 needs 50 more -> 1 s.
        assert_eq!(ps.next_completion(t(500)), Some(t(1500)));
        assert_eq!(ps.pop_due(t(1500)), vec![JobId(1)]);
        // Job 2 alone again, 50 units left at 100 u/s.
        assert_eq!(ps.next_completion(t(1500)), Some(t(2000)));
        assert_eq!(ps.pop_due(t(2000)), vec![JobId(2)]);
    }

    #[test]
    fn freeze_halts_progress() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        ps.set_frozen(t(200), true);
        assert_eq!(ps.next_completion(t(300)), None);
        ps.set_frozen(t(700), false);
        // 20 units attained before freeze, 80 to go at 100 u/s -> 0.8 s more.
        assert_eq!(ps.next_completion(t(700)), Some(t(1500)));
    }

    #[test]
    fn speed_change_rescales_remaining_time() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        ps.set_speed(t(500), 50.0); // half clock after 50 units attained
        assert_eq!(ps.next_completion(t(500)), Some(t(1500)));
    }

    #[test]
    fn remove_returns_remaining_work() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        let rem = ps.remove(t(300), JobId(1)).unwrap();
        assert!((rem - 70.0).abs() < 1e-9, "remaining was {rem}");
        assert_eq!(ps.remove(t(300), JobId(1)), None);
        assert!(ps.is_empty());
    }

    #[test]
    fn backlog_tracks_total_outstanding_work() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.insert(SimTime::ZERO, JobId(1), 30.0);
        ps.insert(SimTime::ZERO, JobId(2), 70.0);
        assert!((ps.backlog(SimTime::ZERO) - 100.0).abs() < 1e-9);
        // Both on own cores at 100 u/s; after 0.1 s: 10 units each attained.
        assert!((ps.backlog(t(100)) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn busy_core_seconds_integrates_occupancy() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.insert(SimTime::ZERO, JobId(1), 100.0); // 1 core busy
        ps.insert(t(500), JobId(2), 100.0); // 2 cores busy
                                            // At t=1.0: job1 done (attained 100 at t=1.0).
        let busy = ps.busy_core_seconds(t(1000));
        assert!((busy - 1.5).abs() < 1e-9, "busy was {busy}");
    }

    #[test]
    fn completion_order_is_fifo_for_equal_thresholds() {
        let mut ps = PsIntegrator::new(100.0, 1);
        for i in 0..10 {
            ps.insert(SimTime::ZERO, JobId(i), 10.0);
        }
        let when = ps.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(ps.pop_due(when), (0..10).map(JobId).collect::<Vec<_>>());
    }

    #[test]
    fn lanes_interleave_in_global_threshold_order() {
        // Two lanes with staggered demands: completions must interleave by
        // threshold, not drain lane-by-lane.
        let mut ps = PsIntegrator::new(100.0, 4);
        ps.insert_lane(SimTime::ZERO, JobId(1), 10.0, 1);
        ps.insert_lane(SimTime::ZERO, JobId(2), 20.0, 2);
        ps.insert_lane(SimTime::ZERO, JobId(3), 30.0, 1);
        ps.insert_lane(SimTime::ZERO, JobId(4), 40.0, 2);
        assert_eq!(ps.len(), 4);
        assert_eq!(
            ps.pop_due(t(400)),
            vec![JobId(1), JobId(2), JobId(3), JobId(4)]
        );
    }

    #[test]
    fn non_monotone_insert_spills_but_completes_in_order() {
        // Frozen progress: the second, smaller demand on the same lane
        // violates monotonicity and must spill — and still complete first.
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.set_frozen(SimTime::ZERO, true);
        ps.insert_lane(SimTime::ZERO, JobId(1), 50.0, 1);
        ps.insert_lane(t(100), JobId(2), 10.0, 1);
        ps.set_frozen(t(200), false);
        assert_eq!(ps.next_completion(t(200)), Some(t(300)));
        assert_eq!(ps.pop_due(t(300)), vec![JobId(2)]);
        assert_eq!(ps.pop_due(t(700)), vec![JobId(1)]);
    }

    #[test]
    fn conservation_of_work_under_many_events() {
        // Work in == work out, regardless of interleaving.
        let mut ps = PsIntegrator::new(123.0, 3);
        let mut inserted = 0.0;
        let mut now = SimTime::ZERO;
        for i in 0..100u64 {
            now += SimDuration::from_micros(i * 137 % 5000);
            let demand = 1.0 + (i as f64 * 7.3) % 20.0;
            inserted += demand;
            ps.insert_lane(now, JobId(i), demand, (i % 5) as usize);
            if i % 3 == 0 {
                if let Some(due) = ps.next_completion(now) {
                    now = due;
                    ps.pop_due(now);
                }
            }
        }
        // Drain.
        while let Some(due) = ps.next_completion(now) {
            now = due;
            ps.pop_due(now);
        }
        assert!(ps.is_empty());
        let attained_total = ps.busy_core_seconds(now) * 123.0;
        // Attained core-work must equal inserted demand (within scheduling
        // roundup of 1 us per completion event).
        assert!(
            (attained_total - inserted).abs() < inserted * 1e-3 + 1.0,
            "in={inserted} out={attained_total}"
        );
    }

    #[test]
    fn removed_job_never_drives_completion() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.insert(SimTime::ZERO, JobId(1), 10.0); // would complete first
        ps.insert(SimTime::ZERO, JobId(2), 50.0);
        ps.remove(SimTime::ZERO, JobId(1));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(500)));
        assert_eq!(ps.pop_due(t(500)), vec![JobId(2)]);
        assert!(ps.is_empty());
    }

    #[test]
    fn removed_spilled_job_never_drives_completion() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.set_frozen(SimTime::ZERO, true);
        ps.insert_lane(SimTime::ZERO, JobId(1), 50.0, 1);
        ps.insert_lane(t(10), JobId(2), 10.0, 1); // spills
        ps.set_frozen(t(20), false);
        let rem = ps.remove(t(20), JobId(2)).unwrap();
        assert!((rem - 10.0).abs() < 1e-9, "remaining was {rem}");
        assert_eq!(ps.pop_due(t(520)), vec![JobId(1)]);
    }

    #[test]
    fn reinserted_job_uses_its_new_threshold() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 10.0);
        ps.remove(SimTime::ZERO, JobId(1));
        // Same id, new demand: removal was eager, so the reinsert stands
        // alone.
        ps.insert(SimTime::ZERO, JobId(1), 80.0);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(800)));
        assert_eq!(ps.pop_due(t(800)), vec![JobId(1)]);
    }

    #[test]
    fn pop_due_into_clears_and_reuses_the_buffer() {
        let mut ps = PsIntegrator::new(100.0, 1);
        let mut buf = vec![JobId(99)]; // stale content must be cleared
        ps.insert(SimTime::ZERO, JobId(1), 50.0);
        ps.pop_due_into(t(500), &mut buf);
        assert_eq!(buf, vec![JobId(1)]);
        ps.insert(t(500), JobId(2), 50.0);
        ps.pop_due_into(t(1000), &mut buf);
        assert_eq!(buf, vec![JobId(2)]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_insert_panics() {
        let mut ps = PsIntegrator::new(1.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 1.0);
        ps.insert(SimTime::ZERO, JobId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn reference_duplicate_insert_panics() {
        let mut ps = reference::PsIntegrator::new(1.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 1.0);
        ps.insert(SimTime::ZERO, JobId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_demand_panics() {
        let mut ps = PsIntegrator::new(1.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn reference_zero_demand_panics() {
        let mut ps = reference::PsIntegrator::new(1.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 0.0);
    }
}
