//! Exact egalitarian processor-sharing (PS) integrator.
//!
//! A multi-core server processing `n` concurrent requests gives each request
//! a service rate of `speed · min(1, cores/n)` work-units per second (each
//! request runs on at most one core; beyond `cores` active requests the cores
//! are shared equally). Because all active jobs progress at the *same* rate,
//! attained service can be tracked with a single global accumulator: a job
//! that arrives when the accumulator reads `A` completes when the accumulator
//! reaches `A + demand`. This makes every insert/remove/completion O(log n)
//! and introduces **no time-slicing discretization error** — essential when
//! the analysis downstream looks at 50 ms windows.
//!
//! The integrator also supports `speed` changes (DVFS P-state transitions)
//! and freezes (stop-the-world garbage collection), the two transient-event
//! mechanisms studied in the paper.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::hash::FxHashMap;
use crate::time::{SimDuration, SimTime};

/// Opaque identifier of a job inside a [`PsIntegrator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Completion-threshold key: ordered first by threshold value then by
/// insertion sequence so equal thresholds complete FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Key {
    // Thresholds are non-negative finite f64s, for which IEEE-754 bit
    // patterns order identically to the values themselves.
    bits: u64,
    seq: u64,
}

impl Key {
    fn new(threshold: f64, seq: u64) -> Self {
        debug_assert!(threshold.is_finite() && threshold >= 0.0);
        Key {
            bits: threshold.to_bits(),
            seq,
        }
    }

    fn threshold(self) -> f64 {
        f64::from_bits(self.bits)
    }
}

/// Exact processor-sharing progress integrator for one server.
///
/// Work is measured in *work-units*; in the n-tier simulator one work-unit is
/// one megacycle, and `speed` is the CPU clock in MHz, so demands are
/// CPU-time-at-reference-clock quantities.
///
/// # Examples
///
/// ```
/// use fgbd_des::{JobId, PsIntegrator, SimTime};
///
/// // 1 core at 100 work-units/s.
/// let mut ps = PsIntegrator::new(100.0, 1);
/// ps.insert(SimTime::ZERO, JobId(1), 50.0); // needs 0.5 s alone
/// ps.insert(SimTime::ZERO, JobId(2), 50.0); // shares the core -> 1.0 s
/// let done = ps.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(done, SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct PsIntegrator {
    speed: f64,
    cores: u32,
    frozen: bool,
    /// Per-job attained service accumulator (work-units).
    attained: f64,
    last_update: SimTime,
    /// Min-heap of completion thresholds, with **lazy deletion**: [`Self::remove`]
    /// only drops the `index` entry, and stale heap entries are skipped when
    /// they surface at the top. This keeps the hot event loop on a flat
    /// `Vec`-backed heap (push/pop touch contiguous memory, and the retained
    /// capacity means no per-event allocation at steady state) instead of
    /// node-allocating `BTreeMap` rebalances.
    ///
    /// Unlike the event queue, this heap cannot become a timing wheel: its
    /// keys are *attained-work thresholds* — continuous `f64`s whose mapping
    /// to completion times is rescaled retroactively by every DVFS speed
    /// change and GC freeze, so there is no stable integer time axis to
    /// bucket on, and quantizing thresholds would reintroduce exactly the
    /// time-slicing error this integrator exists to avoid.
    jobs: BinaryHeap<Reverse<(Key, JobId)>>,
    /// Live jobs and their current keys — the source of truth for
    /// membership. Fx-hashed: `JobId`s are sequential trusted integers, and
    /// this map is hit on every insert/remove/lazy-deletion check, where
    /// SipHash was measurable.
    index: FxHashMap<JobId, Key>,
    seq: u64,
    /// Integral of occupied cores over time (core-seconds of job progress).
    busy_core_seconds: f64,
    /// Heap pushes + pops, accumulated in a plain field (the event loop is
    /// far too hot for per-op atomics) and flushed to the process-wide
    /// `des.ps_heap_ops` counter when the integrator drops.
    heap_ops: u64,
}

impl Drop for PsIntegrator {
    fn drop(&mut self) {
        if self.heap_ops > 0 {
            fgbd_obsv::counter!("des.ps_heap_ops", self.heap_ops);
        }
    }
}

impl PsIntegrator {
    /// Creates an idle integrator.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0` or `cores == 0`.
    pub fn new(speed: f64, cores: u32) -> Self {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        assert!(cores > 0, "need at least one core");
        PsIntegrator {
            speed,
            cores,
            frozen: false,
            attained: 0.0,
            last_update: SimTime::ZERO,
            jobs: BinaryHeap::new(),
            index: FxHashMap::default(),
            seq: 0,
            busy_core_seconds: 0.0,
            heap_ops: 0,
        }
    }

    /// Current per-job progress rate in work-units per second.
    fn per_job_rate(&self) -> f64 {
        if self.frozen || self.index.is_empty() {
            return 0.0;
        }
        let n = self.index.len() as f64;
        self.speed * (self.cores as f64 / n).min(1.0)
    }

    /// Number of cores currently doing job work.
    fn cores_in_use(&self) -> f64 {
        if self.frozen {
            return 0.0;
        }
        (self.index.len() as f64).min(self.cores as f64)
    }

    /// Discards lazily-deleted heap entries until the top is live, and
    /// returns it. A heap entry is live iff it matches the job's current key
    /// in `index`.
    fn live_top(&mut self) -> Option<(Key, JobId)> {
        while let Some(&Reverse((key, job))) = self.jobs.peek() {
            if self.index.get(&job) == Some(&key) {
                return Some((key, job));
            }
            self.jobs.pop();
            self.heap_ops += 1;
        }
        None
    }

    /// Integrates progress up to `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last update — callers must only
    /// move forward in time.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "PS integrator moved backwards");
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            self.attained += self.per_job_rate() * dt;
            self.busy_core_seconds += self.cores_in_use() * dt;
        }
        self.last_update = now;
    }

    /// Changes the CPU clock (DVFS transition). Progress up to `now` is
    /// integrated at the old speed.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0`.
    pub fn set_speed(&mut self, now: SimTime, speed: f64) {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        self.advance(now);
        self.speed = speed;
    }

    /// Current CPU clock in work-units per second per core.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Freezes or thaws all job progress (stop-the-world GC). Progress up to
    /// `now` is integrated with the old state.
    pub fn set_frozen(&mut self, now: SimTime, frozen: bool) {
        self.advance(now);
        self.frozen = frozen;
    }

    /// `true` while a freeze is in effect.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Admits a job needing `demand` work-units.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not positive and finite, or if `job` is already
    /// present.
    pub fn insert(&mut self, now: SimTime, job: JobId, demand: f64) {
        assert!(
            demand > 0.0 && demand.is_finite(),
            "demand must be positive"
        );
        self.advance(now);
        let key = Key::new(self.attained + demand, self.seq);
        self.seq += 1;
        let prev = self.index.insert(job, key);
        assert!(prev.is_none(), "job inserted twice: {job:?}");
        self.jobs.push(Reverse((key, job)));
        self.heap_ops += 1;
    }

    /// Removes a job before completion, returning its remaining work-units,
    /// or `None` if the job is not present. The heap entry is deleted lazily
    /// when it surfaces at the top.
    pub fn remove(&mut self, now: SimTime, job: JobId) -> Option<f64> {
        self.advance(now);
        let key = self.index.remove(&job)?;
        Some((key.threshold() - self.attained).max(0.0))
    }

    /// The absolute time at which the next job will complete if nothing else
    /// changes, rounded *up* to the next microsecond. `None` if the
    /// integrator is empty or frozen.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let rate = self.per_job_rate();
        if rate <= 0.0 {
            return None;
        }
        let min_thr = self.live_top()?.0.threshold();
        let remaining = (min_thr - self.attained).max(0.0);
        let dt_us = (remaining / rate * 1e6).ceil() as u64;
        now.checked_add(SimDuration::from_micros(dt_us))
    }

    /// Pops every job whose service demand has been met by `now`, in
    /// completion order, appending them to `out` (which is cleared first).
    /// The caller owns the buffer, so the steady-state event loop can reuse
    /// one allocation for every completion batch.
    pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<JobId>) {
        out.clear();
        self.advance(now);
        // Completion events are scheduled at the microsecond *after* the true
        // completion instant (ceil), so attained has met the threshold up to
        // f64 rounding noise; the epsilon absorbs that noise.
        let eps = 1e-9 + self.attained.abs() * 1e-12;
        while let Some((key, job)) = self.live_top() {
            if key.threshold() <= self.attained + eps {
                self.jobs.pop();
                self.heap_ops += 1;
                self.index.remove(&job);
                out.push(job);
            } else {
                break;
            }
        }
    }

    /// Pops every job whose service demand has been met by `now`, in
    /// completion order. Allocates a fresh buffer; hot loops should prefer
    /// [`Self::pop_due_into`].
    pub fn pop_due(&mut self, now: SimTime) -> Vec<JobId> {
        let mut done = Vec::new();
        self.pop_due_into(now, &mut done);
        done
    }

    /// Number of jobs currently in service.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if no jobs are in service.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Remaining work across all jobs, in work-units, as of `now`.
    pub fn backlog(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.index
            .values()
            .map(|k| (k.threshold() - self.attained).max(0.0))
            .sum()
    }

    /// Integral of cores occupied by job progress, in core-seconds, as of
    /// `now`. Stop-the-world freezes contribute nothing here; the server
    /// model accounts GC CPU burn separately.
    pub fn busy_core_seconds(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.busy_core_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn single_job_completes_at_demand_over_speed() {
        let mut ps = PsIntegrator::new(200.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(500)));
        assert_eq!(ps.pop_due(t(500)), vec![JobId(1)]);
        assert!(ps.is_empty());
    }

    #[test]
    fn equal_jobs_share_one_core_and_finish_together() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 50.0);
        ps.insert(SimTime::ZERO, JobId(2), 50.0);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(1000)));
        let done = ps.pop_due(t(1000));
        assert_eq!(done, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn jobs_below_core_count_run_at_full_speed() {
        let mut ps = PsIntegrator::new(100.0, 4);
        for i in 0..4 {
            ps.insert(SimTime::ZERO, JobId(i), 100.0);
        }
        // Four cores, four jobs: no sharing, all done at 1 s.
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(1000)));
        assert_eq!(ps.pop_due(t(1000)).len(), 4);
    }

    #[test]
    fn late_arrival_slows_everyone() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        // After 0.5 s job 1 has attained 50 units.
        ps.insert(t(500), JobId(2), 100.0);
        // Both now progress at 50 u/s; job 1 needs 50 more -> 1 s.
        assert_eq!(ps.next_completion(t(500)), Some(t(1500)));
        assert_eq!(ps.pop_due(t(1500)), vec![JobId(1)]);
        // Job 2 alone again, 50 units left at 100 u/s.
        assert_eq!(ps.next_completion(t(1500)), Some(t(2000)));
        assert_eq!(ps.pop_due(t(2000)), vec![JobId(2)]);
    }

    #[test]
    fn freeze_halts_progress() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        ps.set_frozen(t(200), true);
        assert_eq!(ps.next_completion(t(300)), None);
        ps.set_frozen(t(700), false);
        // 20 units attained before freeze, 80 to go at 100 u/s -> 0.8 s more.
        assert_eq!(ps.next_completion(t(700)), Some(t(1500)));
    }

    #[test]
    fn speed_change_rescales_remaining_time() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        ps.set_speed(t(500), 50.0); // half clock after 50 units attained
        assert_eq!(ps.next_completion(t(500)), Some(t(1500)));
    }

    #[test]
    fn remove_returns_remaining_work() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 100.0);
        let rem = ps.remove(t(300), JobId(1)).unwrap();
        assert!((rem - 70.0).abs() < 1e-9, "remaining was {rem}");
        assert_eq!(ps.remove(t(300), JobId(1)), None);
        assert!(ps.is_empty());
    }

    #[test]
    fn backlog_tracks_total_outstanding_work() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.insert(SimTime::ZERO, JobId(1), 30.0);
        ps.insert(SimTime::ZERO, JobId(2), 70.0);
        assert!((ps.backlog(SimTime::ZERO) - 100.0).abs() < 1e-9);
        // Both on own cores at 100 u/s; after 0.1 s: 10 units each attained.
        assert!((ps.backlog(t(100)) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn busy_core_seconds_integrates_occupancy() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.insert(SimTime::ZERO, JobId(1), 100.0); // 1 core busy
        ps.insert(t(500), JobId(2), 100.0); // 2 cores busy
                                            // At t=1.0: job1 done (attained 100 at t=1.0).
        let busy = ps.busy_core_seconds(t(1000));
        assert!((busy - 1.5).abs() < 1e-9, "busy was {busy}");
    }

    #[test]
    fn completion_order_is_fifo_for_equal_thresholds() {
        let mut ps = PsIntegrator::new(100.0, 1);
        for i in 0..10 {
            ps.insert(SimTime::ZERO, JobId(i), 10.0);
        }
        let when = ps.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(ps.pop_due(when), (0..10).map(JobId).collect::<Vec<_>>());
    }

    #[test]
    fn conservation_of_work_under_many_events() {
        // Work in == work out, regardless of interleaving.
        let mut ps = PsIntegrator::new(123.0, 3);
        let mut inserted = 0.0;
        let mut now = SimTime::ZERO;
        for i in 0..100u64 {
            now += SimDuration::from_micros(i * 137 % 5000);
            let demand = 1.0 + (i as f64 * 7.3) % 20.0;
            inserted += demand;
            ps.insert(now, JobId(i), demand);
            if i % 3 == 0 {
                if let Some(due) = ps.next_completion(now) {
                    now = due;
                    ps.pop_due(now);
                }
            }
        }
        // Drain.
        while let Some(due) = ps.next_completion(now) {
            now = due;
            ps.pop_due(now);
        }
        assert!(ps.is_empty());
        let attained_total = ps.busy_core_seconds(now) * 123.0;
        // Attained core-work must equal inserted demand (within scheduling
        // roundup of 1 us per completion event).
        assert!(
            (attained_total - inserted).abs() < inserted * 1e-3 + 1.0,
            "in={inserted} out={attained_total}"
        );
    }

    #[test]
    fn removed_job_is_skipped_by_lazy_deletion() {
        let mut ps = PsIntegrator::new(100.0, 2);
        ps.insert(SimTime::ZERO, JobId(1), 10.0); // would complete first
        ps.insert(SimTime::ZERO, JobId(2), 50.0);
        ps.remove(SimTime::ZERO, JobId(1));
        assert_eq!(ps.len(), 1);
        // The stale heap entry for job 1 must not drive the completion time.
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(500)));
        assert_eq!(ps.pop_due(t(500)), vec![JobId(2)]);
        assert!(ps.is_empty());
    }

    #[test]
    fn reinserted_job_uses_its_new_threshold() {
        let mut ps = PsIntegrator::new(100.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 10.0);
        ps.remove(SimTime::ZERO, JobId(1));
        // Same id, new demand: the stale (smaller) heap entry must be
        // ignored even though the job id matches.
        ps.insert(SimTime::ZERO, JobId(1), 80.0);
        assert_eq!(ps.next_completion(SimTime::ZERO), Some(t(800)));
        assert_eq!(ps.pop_due(t(800)), vec![JobId(1)]);
    }

    #[test]
    fn pop_due_into_clears_and_reuses_the_buffer() {
        let mut ps = PsIntegrator::new(100.0, 1);
        let mut buf = vec![JobId(99)]; // stale content must be cleared
        ps.insert(SimTime::ZERO, JobId(1), 50.0);
        ps.pop_due_into(t(500), &mut buf);
        assert_eq!(buf, vec![JobId(1)]);
        ps.insert(t(500), JobId(2), 50.0);
        ps.pop_due_into(t(1000), &mut buf);
        assert_eq!(buf, vec![JobId(2)]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_insert_panics() {
        let mut ps = PsIntegrator::new(1.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 1.0);
        ps.insert(SimTime::ZERO, JobId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_demand_panics() {
        let mut ps = PsIntegrator::new(1.0, 1);
        ps.insert(SimTime::ZERO, JobId(1), 0.0);
    }
}
