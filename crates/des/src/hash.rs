//! A fast, deterministic hasher for small trusted integer keys.
//!
//! The multiplicative rotate-xor construction popularized by rustc's FxHash.
//! `std`'s default SipHash defends against adversarial keys at a real
//! per-lookup cost; none of the workspace's hot maps (PS integrator job
//! index, trace interning tables) ever see untrusted input, so they key on
//! this instead. Shared here because both `fgbd-des` and `fgbd-trace` need
//! it and the workspace stays dependency-free.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Multiplicative rotate-xor hasher (the FxHash construction).
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher`]; zero-sized and deterministic (no
/// per-process random state), so iteration-order-independent algorithms
/// built on it stay reproducible.
#[derive(Default, Clone, Copy, Debug)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher.hash_one((3u32, 7u64));
        let b = FxBuildHasher.hash_one((3u32, 7u64));
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher.hash_one((7u32, 3u64)));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.get(&2), None);
    }
}
