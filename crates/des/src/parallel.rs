//! Conservative lockstep execution of sharded simulations.
//!
//! A simulated system is split into K *shards*, each a complete
//! [`Simulation`] advancing its own hierarchical timing wheel. Shards run
//! concurrently inside fixed-width time windows and synchronize only at
//! window barriers, where cross-shard messages are exchanged: the classic
//! conservative (Chandy–Misra–Bryant style) discipline, with the barrier
//! playing the role of a broadcast null message.
//!
//! # Lookahead contract
//!
//! The window width must not exceed the model's *lookahead* — the minimum
//! simulated latency of any cross-shard interaction. If every message
//! generated at time `t` is due at `t + L` or later and the window width
//! `W ≤ L`, then a message generated anywhere inside window `[s, s + W]`
//! is due at or after the window's end, so exchanging messages only at the
//! barrier can never violate causality (the driver asserts this per
//! message). For *exact* equivalence with a sequential co-simulation of
//! all shards, choose `W` strictly below `L`: then every delivery lands
//! strictly inside a later window and interleaves with local events in
//! pure timestamp order.
//!
//! # Determinism
//!
//! The trajectory of a lockstep run is a pure function of the shard
//! states and the window width. Worker threads are a performance knob
//! only: shards are data-independent between barriers, and the exchange
//! at each barrier sorts deliveries by `(due time, source shard, send
//! order)` before applying them, so any interleaving of the workers
//! produces the same event sequence in every shard.

use crate::sim::{Actor, Simulation};
use crate::time::{SimDuration, SimTime};

/// A cross-shard message awaiting delivery.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Destination shard index.
    pub dest: usize,
    /// Simulated time at which the message takes effect; must be at or
    /// after the end of the window that generated it (see the module docs
    /// on lookahead).
    pub due: SimTime,
    /// The payload.
    pub msg: M,
}

/// A shard participating in a lockstep run: a normal [`Actor`] plus the
/// cross-shard mailbox protocol.
pub trait ShardActor: Actor + Send {
    /// Payload type of cross-shard messages. Shards that never interact
    /// (shared-nothing population shards) use [`NoMsg`].
    type Msg: Send;

    /// Moves every message generated during the window just simulated
    /// into `out`, in the order it was generated. Called at each barrier
    /// with the shard quiescent.
    fn drain_outbox(&mut self, out: &mut Vec<Envelope<Self::Msg>>);

    /// Converts an inbound message from shard `from` into the local event
    /// that realizes it; the driver schedules that event at the
    /// envelope's due time.
    fn accept(&mut self, from: usize, msg: Self::Msg) -> Self::Event;
}

/// Message type for shards that never communicate; uninhabited, so
/// [`ShardActor::accept`] is statically unreachable.
#[derive(Debug, Clone, Copy)]
pub enum NoMsg {}

/// Tuning knobs of a lockstep run.
#[derive(Debug, Clone, Copy)]
pub struct LockstepConfig {
    /// Synchronization window width; must be positive and at most the
    /// model's lookahead (see the module docs).
    pub window: SimDuration,
    /// Number of worker threads to spread shards over; clamped to
    /// `1..=shards`. Affects wall time only, never the trajectory.
    pub workers: usize,
}

/// Summary of a completed lockstep run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepReport {
    /// Number of window barriers executed.
    pub barriers: u64,
    /// Number of (ordered) shard pairs that exchanged no message in some
    /// window — each is an implicit null message advancing the receiving
    /// shard's time bound.
    pub null_messages: u64,
    /// Number of cross-shard messages delivered.
    pub messages: u64,
}

/// Runs every shard to `horizon` under the lockstep discipline.
///
/// Shards advance window by window: each window runs all shards to the
/// window's end (concurrently when `cfg.workers > 1`), then a barrier
/// drains every outbox, sorts the deliveries deterministically, and
/// schedules them on their destination shards. The run ends when the
/// horizon is reached, or early once every shard is drained and no
/// deliveries are in flight.
///
/// # Panics
///
/// Panics if `shards` is empty, the window is zero, or a message violates
/// the lookahead contract (due before the end of the window that
/// generated it, destination out of range, or self-addressed).
pub fn run_lockstep<A: ShardActor>(
    shards: &mut [Simulation<A>],
    horizon: SimTime,
    cfg: &LockstepConfig,
) -> LockstepReport
where
    A::Event: Send,
{
    let k = shards.len();
    assert!(k > 0, "lockstep run needs at least one shard");
    assert!(
        cfg.window > SimDuration::ZERO,
        "lockstep window must be positive"
    );
    let workers = cfg.workers.clamp(1, k);
    let span_base = fgbd_obsv::span::current_path();

    let mut report = LockstepReport::default();
    let mut outbox: Vec<Envelope<A::Msg>> = Vec::new();
    let mut deliveries: Vec<(SimTime, usize, Envelope<A::Msg>)> = Vec::new();
    // Ordered-pair traffic matrix for null-message accounting.
    let mut pair_sent = vec![false; k * k];

    let mut window_start = SimTime::ZERO;
    loop {
        let window_end = (window_start + cfg.window).min(horizon);

        if workers == 1 {
            for shard in shards.iter_mut() {
                shard.run_until(window_end);
            }
        } else {
            // Contiguous chunks, one per worker. Shards share nothing
            // between barriers, so any assignment yields the same
            // trajectory; chunking just balances the load.
            let chunk = k.div_ceil(workers);
            std::thread::scope(|scope| {
                for shard_chunk in shards.chunks_mut(chunk) {
                    let base = &span_base;
                    scope.spawn(move || {
                        // Workers report their spans under the caller's
                        // span path, like every fgbd worker pool.
                        fgbd_obsv::span::adopt_path(base);
                        for shard in shard_chunk {
                            shard.run_until(window_end);
                        }
                        fgbd_obsv::span::flush_thread();
                    });
                }
            });
        }

        report.barriers += 1;
        fgbd_obsv::counter!("des.sync_barriers", 1);

        // Exchange: drain outboxes in shard order, then deliver in
        // deterministic (due, source, send-order) order. The sort is
        // stable and the collection order is already (source asc, send
        // order asc), so sorting by due time alone preserves the rest.
        pair_sent.iter_mut().for_each(|p| *p = false);
        for (src, shard) in shards.iter_mut().enumerate() {
            shard.actor_mut().drain_outbox(&mut outbox);
            for env in outbox.drain(..) {
                assert!(env.dest < k, "message to unknown shard {}", env.dest);
                assert!(env.dest != src, "self-addressed cross-shard message");
                assert!(
                    env.due >= window_end,
                    "lookahead violation: message due {:?} inside window ending {:?}",
                    env.due,
                    window_end
                );
                pair_sent[src * k + env.dest] = true;
                deliveries.push((env.due, src, env));
            }
        }
        deliveries.sort_by_key(|(due, _, _)| *due);
        report.messages += deliveries.len() as u64;
        for (due, src, env) in deliveries.drain(..) {
            let event = shards[env.dest].actor_mut().accept(src, env.msg);
            shards[env.dest].prime(due, event);
        }
        let quiet = pair_sent.iter().filter(|sent| !**sent).count() as u64
            // Self-pairs are not message channels.
            - k as u64;
        if quiet > 0 {
            report.null_messages += quiet;
            fgbd_obsv::counter!("des.null_messages", quiet);
        }

        if window_end >= horizon {
            break;
        }
        // Early exit: every wheel drained and nothing in flight.
        if shards.iter().all(|s| s.pending() == 0) {
            break;
        }
        window_start = window_end;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Scheduler;

    /// A shard that ping-pongs tokens with its peer: on each token it
    /// waits a deterministic local delay, then emits the token back with
    /// a cross-shard latency strictly above the window.
    struct Pinger {
        id: usize,
        peer: usize,
        hops_left: u32,
        latency: SimDuration,
        seen: Vec<SimTime>,
        out: Vec<Envelope<u32>>,
    }

    impl Actor for Pinger {
        type Event = u32;
        fn handle(&mut self, now: SimTime, token: u32, _sched: &mut Scheduler<u32>) {
            self.seen.push(now);
            if self.hops_left > 0 {
                self.hops_left -= 1;
                self.out.push(Envelope {
                    dest: self.peer,
                    due: now + self.latency,
                    msg: token + 1,
                });
            }
        }
    }

    impl ShardActor for Pinger {
        type Msg = u32;
        fn drain_outbox(&mut self, out: &mut Vec<Envelope<u32>>) {
            out.append(&mut self.out);
        }
        fn accept(&mut self, from: usize, msg: u32) -> u32 {
            assert_eq!(from, self.peer);
            msg
        }
    }

    fn pinger_pair(hops: u32, latency_ms: u64) -> Vec<Simulation<Pinger>> {
        let mk = |id: usize, peer: usize| {
            Simulation::new(Pinger {
                id,
                peer,
                hops_left: hops,
                latency: SimDuration::from_millis(latency_ms),
                seen: Vec::new(),
                out: Vec::new(),
            })
        };
        let mut shards = vec![mk(0, 1), mk(1, 0)];
        shards[0].prime(SimTime::from_millis(1), 0);
        shards
    }

    #[test]
    fn ping_pong_crosses_shards_in_timestamp_order() {
        let mut shards = pinger_pair(6, 10);
        let report = run_lockstep(
            &mut shards,
            SimTime::from_secs(1),
            &LockstepConfig {
                window: SimDuration::from_millis(5),
                workers: 2,
            },
        );
        // Token bounces at 1ms, 11ms, 21ms, …: shard 0 sees the even
        // hops, shard 1 the odd ones, until both hop budgets (6 each)
        // are spent.
        let expect = |start: u64, n: u64| -> Vec<SimTime> {
            (0..n)
                .map(|i| SimTime::from_millis(start + 20 * i))
                .collect()
        };
        assert_eq!(shards[0].actor().seen, expect(1, 7));
        assert_eq!(shards[1].actor().seen, expect(11, 6));
        assert_eq!(report.messages, 12);
        assert!(report.barriers > 0);
        assert_eq!(shards[0].actor().id, 0);
    }

    #[test]
    fn worker_count_is_trajectory_invariant() {
        let runs: Vec<Vec<SimTime>> = [1usize, 2]
            .into_iter()
            .map(|workers| {
                let mut shards = pinger_pair(8, 7);
                run_lockstep(
                    &mut shards,
                    SimTime::from_secs(1),
                    &LockstepConfig {
                        window: SimDuration::from_millis(3),
                        workers,
                    },
                );
                shards
                    .iter()
                    .flat_map(|s| s.actor().seen.iter().copied())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn idle_shards_exit_early_and_count_null_messages() {
        // No initial event in shard 1's queue and only one in shard 0's:
        // after the first exchange both wheels drain and the run stops
        // long before the horizon.
        let mut shards = pinger_pair(0, 10);
        let report = run_lockstep(
            &mut shards,
            SimTime::from_secs(3_600),
            &LockstepConfig {
                window: SimDuration::from_millis(5),
                workers: 2,
            },
        );
        assert_eq!(report.messages, 0);
        assert!(report.barriers < 10, "drained run must exit early");
        // Every barrier left both ordered pairs quiet.
        assert_eq!(report.null_messages, 2 * report.barriers);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn lookahead_violations_are_caught() {
        // Latency below the window: the message comes due inside the very
        // window that generated it.
        let mut shards = pinger_pair(2, 1);
        run_lockstep(
            &mut shards,
            SimTime::from_secs(1),
            &LockstepConfig {
                window: SimDuration::from_millis(50),
                workers: 1,
            },
        );
    }
}
