//! A bounded single-producer / single-consumer channel — the streaming
//! trace conduit between the simulator thread and the online analysis
//! front-end (see `fgbd-trace`'s `stream` module).
//!
//! The design is the classic Lamport ring: a fixed-capacity slot array
//! indexed by two monotonically increasing positions. The producer owns
//! `tail`, the consumer owns `head`; each publishes its own index with a
//! `Release` store and reads the other side's with an `Acquire` load, so
//! a slot's payload is always visible before the index that announces it.
//! No locks, no allocation per operation, and — because each side caches
//! the opposing index — the fast path is one atomic store per op.
//!
//! Backpressure is explicit: [`Sender::send`] blocks (spin → yield →
//! short sleep) when the ring is full and reports how many sends had to
//! wait via [`Sender::stalls`], which the streaming pipeline surfaces as
//! the `trace.stream_stalls` counter. Dropping either endpoint closes the
//! channel: a blocked producer errors out instead of deadlocking when the
//! consumer died, and the consumer drains the remaining items and then
//! sees end-of-stream.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of busy-spin probes before yielding the CPU, and number of
/// yields before falling back to a short sleep. The sleep matters on
/// single-core hosts: a producer that only ever spins/yields against a
/// consumer blocked elsewhere would burn its whole timeslice.
const SPINS_BEFORE_YIELD: u32 = 64;
const YIELDS_BEFORE_SLEEP: u32 = 64;
const BLOCKED_SLEEP: std::time::Duration = std::time::Duration::from_micros(20);

/// Busy-spin budget before the ladder escalates to yields. Spinning only
/// pays when the opposing endpoint can make progress *concurrently*; on an
/// effectively single-core host every spin probe is stolen from the very
/// thread that would unblock us, so the budget drops to zero and the
/// ladder starts at `yield_now` (this was the low-shard streaming
/// regression: shards 1–2 spent their stall time spinning against a
/// descheduled peer).
fn spin_budget() -> u32 {
    use std::sync::OnceLock;
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            SPINS_BEFORE_YIELD
        } else {
            0
        }
    })
}

/// Cache-line padding so the producer- and consumer-owned indices do not
/// false-share.
#[repr(align(64))]
struct Pad<T>(T);

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer position (next slot to pop). Monotonic; slot = `head % cap`.
    head: Pad<AtomicUsize>,
    /// Producer position (next slot to fill). Monotonic; slot = `tail % cap`.
    tail: Pad<AtomicUsize>,
    /// Set when either endpoint drops.
    closed: AtomicBool,
}

// SAFETY: the slot array is only ever accessed by the unique producer
// (writes at `tail`) and the unique consumer (reads at `head`), and every
// hand-off is ordered by a Release store / Acquire load of the index that
// guards the slot. `T: Send` is required because values cross threads.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (`Arc` exclusive), so plain loads suffice.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) hold initialized values that
            // were published but never consumed.
            unsafe { (*self.slots[i % cap].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The producing endpoint of an SPSC channel; see [`channel`].
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
    /// Last observed consumer position — refreshed only when the ring
    /// looks full, so the uncontended send path does no Acquire load.
    head_cache: usize,
    stalls: u64,
}

/// The consuming endpoint of an SPSC channel; see [`channel`].
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    /// Last observed producer position — refreshed only when the ring
    /// looks empty.
    tail_cache: usize,
}

/// Error returned by [`Sender::send`] when the receiver was dropped; the
/// unsent value is handed back.
#[derive(Debug)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a closed spsc channel")
    }
}

/// Creates a bounded SPSC channel holding at most `capacity` in-flight
/// values.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc channel capacity must be positive");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        slots,
        head: Pad(AtomicUsize::new(0)),
        tail: Pad(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Sender {
            ring: Arc::clone(&ring),
            head_cache: 0,
            stalls: 0,
        },
        Receiver {
            ring,
            tail_cache: 0,
        },
    )
}

/// One step of the spin → yield → sleep backoff ladder.
fn backoff(round: u32) {
    let spins = spin_budget();
    if round < spins {
        std::hint::spin_loop();
    } else if round < spins + YIELDS_BEFORE_SLEEP {
        std::thread::yield_now();
    } else {
        std::thread::sleep(BLOCKED_SLEEP);
    }
}

impl<T> Sender<T> {
    /// Attempts to enqueue without blocking; hands `v` back when the ring
    /// is full (callers that must not block — e.g. best-effort buffer
    /// recycling — use this and treat `Err` as "drop it").
    pub fn try_send(&mut self, v: T) -> Result<(), T> {
        let cap = self.ring.slots.len();
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) == cap {
            self.head_cache = self.ring.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) == cap {
                return Err(v);
            }
        }
        // SAFETY: the slot at `tail` is free — the consumer is at or past
        // `tail - cap` — and only this (unique) producer writes slots.
        unsafe { (*self.ring.slots[tail % cap].get()).write(v) };
        self.ring
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues `v`, blocking while the ring is full. A send that had to
    /// wait at least once increments [`Sender::stalls`].
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] (with the value) if the receiver was dropped,
    /// so a dead consumer surfaces as an error instead of a deadlock.
    pub fn send(&mut self, v: T) -> Result<(), SendError<T>> {
        let mut v = v;
        let mut round = 0u32;
        loop {
            match self.try_send(v) {
                Ok(()) => return Ok(()),
                Err(back) => v = back,
            }
            if self.ring.closed.load(Ordering::Acquire) {
                return Err(SendError(v));
            }
            if round == 0 {
                self.stalls += 1;
            }
            backoff(round);
            round = round.saturating_add(1);
        }
    }

    /// Number of [`Sender::send`] calls that found the ring full and had
    /// to wait — the producer-side backpressure count.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Receiver<T> {
    /// Attempts to dequeue without blocking; `None` when the ring is
    /// currently empty (which does not imply the channel is closed).
    pub fn try_recv(&mut self) -> Option<T> {
        let cap = self.ring.slots.len();
        let head = self.ring.head.0.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        // SAFETY: `head < tail`, so the slot holds a value the producer
        // published (ordered by the Acquire load of `tail` that advanced
        // `tail_cache` past it), and only this consumer reads slots.
        let v = unsafe { (*self.ring.slots[head % cap].get()).assume_init_read() };
        self.ring
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Dequeues the next value, blocking while the ring is empty. Returns
    /// `None` only when the channel is closed **and** fully drained.
    pub fn recv(&mut self) -> Option<T> {
        let mut round = 0u32;
        loop {
            if let Some(v) = self.try_recv() {
                return Some(v);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // The Acquire on `closed` orders this after the producer's
                // final publish, so one more poll sees everything.
                return self.try_recv();
            }
            backoff(round);
            round = round.saturating_add(1);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert!(rx.try_recv().is_none());
        assert_eq!(tx.stalls(), 0);
    }

    #[test]
    fn full_ring_stalls_then_recovers() {
        let (mut tx, mut rx) = channel::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap();
            tx.stalls()
        });
        // Give the producer a moment to hit the full ring.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(t.join().unwrap(), 1, "blocked send counts one stall");
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn dropping_receiver_fails_the_sender() {
        let (mut tx, rx) = channel::<u32>(1);
        tx.send(7).unwrap();
        drop(rx);
        let err = tx.send(8).unwrap_err();
        assert_eq!(err.0, 8);
        assert!(err.to_string().contains("closed"));
    }

    #[test]
    fn dropping_sender_drains_then_ends() {
        let (mut tx, mut rx) = channel::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn unconsumed_values_are_dropped_with_the_ring() {
        let payload = Arc::new(());
        let (mut tx, rx) = channel::<Arc<()>>(4);
        tx.send(Arc::clone(&payload)).unwrap();
        tx.send(Arc::clone(&payload)).unwrap();
        assert_eq!(Arc::strong_count(&payload), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1, "ring drop frees slots");
    }

    /// Cross-thread stress: every value arrives exactly once, in order,
    /// through a ring much smaller than the stream.
    #[test]
    fn cross_thread_order_and_completeness() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).unwrap();
            }
            tx.stalls()
        });
        let mut expect = 0u64;
        let mut sum = 0u64;
        while let Some(v) = rx.recv() {
            assert_eq!(v, expect, "out-of-order delivery");
            expect += 1;
            sum = sum.wrapping_add(v);
        }
        assert_eq!(expect, N);
        assert_eq!(sum, N * (N - 1) / 2);
        let _stalls = producer.join().unwrap();
    }
}
