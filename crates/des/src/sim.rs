//! The simulation driver: an [`Actor`] state machine fed by an event queue
//! through a [`Scheduler`] handle.
//!
//! The whole simulated system is one `Actor` with a typed event enum. This
//! monolithic-state design avoids shared-ownership gymnastics, keeps event
//! dispatch a plain `match`, and makes determinism trivial to audit.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// The behaviour of a simulated system: how it reacts to each event.
pub trait Actor {
    /// The event alphabet of the system.
    type Event;

    /// Reacts to `event` occurring at `now`, scheduling follow-up events on
    /// `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle through which an [`Actor`] schedules future events.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`, returning its FIFO
    /// ticket (see [`Self::restamp`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — causality violations are always bugs.
    pub fn at(&mut self, at: SimTime, event: E) -> u64 {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event)
    }

    /// Re-stamps the pending event `(at, seq)` with a fresh FIFO ticket —
    /// the same-instant ordering a cancel-and-reschedule would produce —
    /// and returns it. `None` if no such event is pending; the caller
    /// should fall back to scheduling afresh.
    pub fn restamp(&mut self, at: SimTime, seq: u64) -> Option<u64> {
        self.queue.restamp(at, seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.schedule(at, event);
    }

    /// Schedules `event` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn immediately(&mut self, event: E) {
        self.queue.schedule(self.now, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Drives an [`Actor`] until a time horizon or event exhaustion.
///
/// # Examples
///
/// ```
/// use fgbd_des::{Actor, Scheduler, SimDuration, SimTime, Simulation};
///
/// struct Counter {
///     ticks: u32,
/// }
///
/// impl Actor for Counter {
///     type Event = ();
///     fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
///         self.ticks += 1;
///         if self.ticks < 10 {
///             sched.after(SimDuration::from_millis(100), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { ticks: 0 });
/// sim.prime(SimTime::ZERO, ());
/// let end = sim.run_until(SimTime::from_secs(5));
/// assert_eq!(sim.actor().ticks, 10);
/// assert_eq!(end, SimTime::from_millis(900));
/// ```
#[derive(Debug)]
pub struct Simulation<A: Actor> {
    actor: A,
    sched: Scheduler<A::Event>,
    events_processed: u64,
}

impl<A: Actor> Simulation<A> {
    /// Wraps `actor` with an empty event queue at time zero.
    pub fn new(actor: A) -> Self {
        Simulation {
            actor,
            sched: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// Seeds the queue with an initial event before running.
    pub fn prime(&mut self, at: SimTime, event: A::Event) {
        self.sched.at(at, event);
    }

    /// Runs until the queue drains or the next event is past `horizon`.
    ///
    /// Returns the time of the last event processed (or the prior clock value
    /// if nothing ran). Events at exactly `horizon` are processed; later ones
    /// stay queued.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        let before = self.events_processed;
        // The horizon check rides inside the pop (`pop_at_or_before`), not a
        // separate peek: a peek walks the same head bucket the pop is about
        // to scan or cascade, doubling the queue's share of the per-event
        // budget for a bounds check the wheel can answer in one comparison.
        while let Some((t, ev)) = self.sched.queue.pop_at_or_before(horizon) {
            debug_assert!(t >= self.sched.now, "event queue went back in time");
            self.sched.now = t;
            self.actor.handle(t, ev, &mut self.sched);
            self.events_processed += 1;
        }
        // Telemetry stays out of the dispatch loop: one flush per run,
        // not one atomic per event.
        let delta = self.events_processed - before;
        if delta > 0 {
            fgbd_obsv::counter!("des.events", delta);
            fgbd_obsv::histogram!("des.events_per_run", delta);
        }
        self.sched.now
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// The simulated system.
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Mutable access to the simulated system (for instrumentation between
    /// runs).
    pub fn actor_mut(&mut self) -> &mut A {
        &mut self.actor
    }

    /// Consumes the simulation, returning the final actor state.
    pub fn into_actor(self) -> A {
        self.actor
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Actor for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if ev == 1 {
                // Fan out: one immediate, one delayed.
                sched.immediately(2);
                sched.after(SimDuration::from_millis(10), 3);
            }
        }
    }

    #[test]
    fn cascade_executes_in_causal_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.prime(SimTime::from_millis(5), 1);
        sim.run_to_completion();
        let seen = &sim.actor().seen;
        assert_eq!(
            seen,
            &vec![
                (SimTime::from_millis(5), 1),
                (SimTime::from_millis(5), 2),
                (SimTime::from_millis(15), 3),
            ]
        );
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn horizon_stops_but_keeps_future_events() {
        let mut sim = Simulation::new(Recorder::default());
        sim.prime(SimTime::from_millis(5), 1);
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.actor().seen.len(), 2); // events at exactly the horizon run
                                               // The delayed event is still queued; running further delivers it.
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.actor().seen.len(), 3);
    }

    #[test]
    fn run_on_empty_queue_is_a_no_op() {
        let mut sim = Simulation::new(Recorder::default());
        let t = sim.run_until(SimTime::from_secs(10));
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn event_exactly_at_horizon_runs_and_later_schedules_stay_ordered() {
        // After stopping at a horizon with a far-future event pending (the
        // peek that declined it must not advance the wheel), scheduling an
        // earlier event still delivers in time order.
        let mut sim = Simulation::new(Recorder::default());
        sim.prime(SimTime::from_millis(5), 0);
        sim.prime(SimTime::from_secs(3600), 9);
        let end = sim.run_until(SimTime::from_millis(5));
        assert_eq!(end, SimTime::from_millis(5));
        assert_eq!(sim.actor().seen, vec![(SimTime::from_millis(5), 0)]);
        sim.prime(SimTime::from_millis(7), 5);
        sim.run_to_completion();
        assert_eq!(
            sim.actor().seen,
            vec![
                (SimTime::from_millis(5), 0),
                (SimTime::from_millis(7), 5),
                (SimTime::from_secs(3600), 9),
            ]
        );
    }

    #[test]
    fn schedule_at_now_reentrancy_is_fifo_with_queued_peers() {
        // An actor that reschedules at the current instant from inside
        // `handle` runs after the events already queued for that instant.
        struct Chain {
            order: Vec<u32>,
        }
        impl Actor for Chain {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.order.push(ev);
                if ev < 3 {
                    sched.immediately(ev + 10);
                }
            }
        }
        let mut sim = Simulation::new(Chain { order: vec![] });
        let t = SimTime::from_millis(1);
        for ev in [1, 2, 3] {
            sim.prime(t, ev);
        }
        sim.run_until(t);
        // 1, 2, 3 were queued first; their at-now children follow in the
        // order the parents fired.
        assert_eq!(sim.actor().order, vec![1, 2, 3, 11, 12]);
        assert_eq!(sim.now(), t);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Actor for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.at(now - SimDuration::from_micros(1), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.prime(SimTime::from_millis(1), ());
        sim.run_to_completion();
    }
}
