//! The pending-event set: a binary heap ordered by (time, insertion sequence).
//!
//! Ties at the same instant are broken by insertion order, which keeps event
//! delivery deterministic — a prerequisite for the reproducible experiments
//! in `fgbd-repro`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use fgbd_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c');
/// q.schedule(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest pending event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        // Scheduling something earlier than the current head is fine.
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
