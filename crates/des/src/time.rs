//! Simulated time: integer microseconds since the start of the run.
//!
//! The paper's passive tracing records request arrival/departure timestamps
//! at microsecond granularity; keeping simulated time integral makes every
//! comparison exact and every run reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since time zero.
///
/// # Examples
///
/// ```
/// use fgbd_des::{SimTime, SimDuration};
///
/// let t = SimTime::from_millis(50) + SimDuration::from_micros(250);
/// assert_eq!(t.as_micros(), 50_250);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use fgbd_des::SimDuration;
///
/// let d = SimDuration::from_millis(3) * 2;
/// assert_eq!(d.as_secs_f64(), 0.006);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "SimTime must be non-negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// This instant as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration must be non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// This duration as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl From<u64> for SimDuration {
    fn from(us: u64) -> Self {
        SimDuration(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_millis(50).as_secs_f64(), 0.05);
        assert_eq!(SimDuration::from_secs_f64(0.000_001).as_micros(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(3);
        assert_eq!((t + d).as_micros(), 13_000);
        assert_eq!((t - d).as_micros(), 7_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(9));
        assert_eq!(SimDuration::from_millis(9) / 3, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1_500)), "1.500000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_micros(7)),
            Some(SimTime::from_micros(7))
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
