//! Property-based tests for the DES kernel invariants.

use fgbd_des::queue::reference::HeapQueue;
use fgbd_des::{Dice, EventQueue, JobId, PsIntegrator, SimDuration, SimTime};
use proptest::prelude::*;

/// Decodes one raw op for the wheel-vs-heap equivalence driver: a schedule
/// time drawn from regimes that stress every queue path (same-instant ties,
/// wheel level boundaries, the overflow range, and times below the wheel's
/// clock), or a pop/peek probe.
fn decode_op(kind: u64, raw: u64) -> Option<u64> {
    const BOUNDARIES: [u64; 12] = [
        0,
        63,
        64,
        65,
        4_095,
        4_096,
        262_143,
        262_144,
        16_777_216,
        (1 << 42) - 1,
        1 << 42,
        (1 << 42) + 1,
    ];
    match kind {
        // Dense small times: same-instant FIFO ties.
        0 | 1 => Some(raw % 64),
        // A 3-minute-capture-scale range.
        2 => Some(raw % 200_000_000),
        // Exact level/overflow boundaries, and sums of two of them.
        3 => Some(BOUNDARIES[(raw % 12) as usize] + BOUNDARIES[((raw / 12) % 12) as usize]),
        // Anything up to four wheel ranges out.
        4 => Some(raw),
        _ => None,
    }
}

proptest! {
    /// The timing wheel and the reference heap queue deliver bit-identical
    /// `(time, payload)` sequences — same pops, same peeks, same lengths —
    /// under arbitrary schedule/pop/peek interleavings, including
    /// same-instant ties, schedules below an advanced clock (the `run_until`
    /// horizon-crossing shape: peek far ahead, decline, schedule earlier),
    /// and overflow promotions.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec((0u64..8, 0u64..(1u64 << 44)), 2..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &(kind, raw)) in ops.iter().enumerate() {
            match decode_op(kind, raw) {
                Some(t) => {
                    let t = SimTime::from_micros(t);
                    wheel.schedule(t, i);
                    heap.schedule(t, i);
                }
                None if kind == 7 => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                }
                None => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain: every remaining event must come out identically.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Events always pop in non-decreasing time order, FIFO within a tick.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated within a tick");
                }
            }
            last = Some((t, i));
        }
    }

    /// The PS integrator conserves work: every admitted job completes after
    /// attaining exactly its demand (within event-grid roundup).
    #[test]
    fn ps_conserves_work(
        demands in prop::collection::vec(0.1f64..50.0, 1..60),
        gaps in prop::collection::vec(0u64..20_000, 1..60),
        speed in 10.0f64..5_000.0,
        cores in 1u32..8,
    ) {
        let mut ps = PsIntegrator::new(speed, cores);
        let mut now = SimTime::ZERO;
        let mut inserted = 0.0;
        let mut completed = 0;
        let n = demands.len().min(gaps.len());
        for i in 0..n {
            let arrive = now + SimDuration::from_micros(gaps[i]);
            // Drain completions that fall before the next arrival, exactly as
            // the event loop would.
            while let Some(due) = ps.next_completion(now) {
                if due > arrive {
                    break;
                }
                now = due;
                completed += ps.pop_due(now).len();
            }
            now = arrive;
            ps.insert(now, JobId(i as u64), demands[i]);
            inserted += demands[i];
        }
        while let Some(due) = ps.next_completion(now) {
            prop_assert!(due >= now);
            now = due;
            completed += ps.pop_due(now).len();
        }
        prop_assert_eq!(completed, n);
        prop_assert!(ps.is_empty());
        let out = ps.busy_core_seconds(now) * speed;
        // Each completion event rounds up by <= 1 us; bound total slack.
        let slack = n as f64 * speed * 1e-6 * cores as f64 + 1e-6 * inserted + 1e-9;
        prop_assert!((out - inserted).abs() <= slack + inserted * 1e-9,
            "in={} out={} slack={}", inserted, out, slack);
    }

    /// A job's sojourn time in PS is never shorter than demand/speed (its
    /// isolated running time) no matter what else happens.
    #[test]
    fn ps_sojourn_lower_bound(
        demands in prop::collection::vec(1.0f64..20.0, 2..30),
        speed in 100.0f64..2_000.0,
    ) {
        let mut ps = PsIntegrator::new(speed, 1);
        let mut now = SimTime::ZERO;
        for (i, &d) in demands.iter().enumerate() {
            ps.insert(now, JobId(i as u64), d);
        }
        let mut finish = vec![SimTime::ZERO; demands.len()];
        while let Some(due) = ps.next_completion(now) {
            now = due;
            for j in ps.pop_due(now) {
                finish[j.0 as usize] = now;
            }
        }
        for (i, &d) in demands.iter().enumerate() {
            let sojourn = finish[i].as_secs_f64();
            prop_assert!(sojourn + 2e-6 >= d / speed,
                "job {} finished faster than isolated time", i);
        }
    }

    /// Removing a job and re-inserting its remaining work preserves the
    /// final completion time (up to event-grid rounding).
    #[test]
    fn ps_remove_reinsert_equivalence(demand in 5.0f64..100.0, cut_ms in 1u64..40) {
        let speed = 100.0;
        // Run A: uninterrupted.
        let mut a = PsIntegrator::new(speed, 1);
        a.insert(SimTime::ZERO, JobId(1), demand);
        let fin_a = a.next_completion(SimTime::ZERO).unwrap();

        // Run B: remove at cut, re-insert immediately with remaining work.
        let cut = SimTime::from_millis(cut_ms);
        let mut b = PsIntegrator::new(speed, 1);
        b.insert(SimTime::ZERO, JobId(1), demand);
        if cut < fin_a {
            let rem = b.remove(cut, JobId(1)).unwrap();
            prop_assert!(rem > 0.0);
            b.insert(cut, JobId(2), rem);
            let fin_b = b.next_completion(cut).unwrap();
            let diff = fin_b.as_secs_f64() - fin_a.as_secs_f64();
            prop_assert!(diff.abs() < 5e-6, "diff {}", diff);
        }
    }

    /// Dice::weighted never returns an index with zero weight.
    #[test]
    fn weighted_never_picks_zero(seed in 0u64..1_000, pattern in prop::collection::vec(prop::bool::ANY, 1..10)) {
        prop_assume!(pattern.iter().any(|&b| b));
        let weights: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut d = Dice::seed(seed);
        for _ in 0..50 {
            let i = d.weighted(&weights);
            prop_assert!(pattern[i]);
        }
    }

    /// Exponential and bounded-Pareto samples respect their supports.
    #[test]
    fn variates_in_support(seed in 0u64..1_000) {
        let mut d = Dice::seed(seed);
        for _ in 0..100 {
            prop_assert!(d.exp(2.0) >= 0.0);
            let p = d.bounded_pareto(1.5, 2.0, 10.0);
            prop_assert!((2.0..=10.0).contains(&p));
            let u = d.uniform_in(-3.0, 4.5);
            prop_assert!((-3.0..4.5).contains(&u));
        }
    }
}
