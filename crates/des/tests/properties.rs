//! Property-based tests for the DES kernel invariants.

use fgbd_des::queue::reference::HeapQueue;
use fgbd_des::{
    run_lockstep, Actor, Dice, Envelope, EventQueue, JobId, LockstepConfig, PsIntegrator,
    Scheduler, ShardActor, SimDuration, SimTime, Simulation,
};
use proptest::prelude::*;

/// One stop on a token ring spread across shards: node `i` forwards the
/// token to node `(i + 1) % k` after a deterministic per-node delay plus
/// the cross-shard link latency (the model's lookahead). Each `handle`
/// call burns a few injected `yield_now` calls so worker threads get
/// shaken into different OS schedules — the trajectory must not care.
struct RingNode {
    id: usize,
    k: usize,
    delay: SimDuration,
    latency: SimDuration,
    yields: u32,
    seen: Vec<(SimTime, u32)>,
    out: Vec<Envelope<u32>>,
}

impl Actor for RingNode {
    type Event = u32;
    fn handle(&mut self, now: SimTime, hops_left: u32, _sched: &mut Scheduler<u32>) {
        for _ in 0..self.yields {
            std::thread::yield_now();
        }
        self.seen.push((now, hops_left));
        if hops_left > 0 {
            self.out.push(Envelope {
                dest: (self.id + 1) % self.k,
                due: now + self.delay + self.latency,
                msg: hops_left - 1,
            });
        }
    }
}

impl ShardActor for RingNode {
    type Msg = u32;
    fn drain_outbox(&mut self, out: &mut Vec<Envelope<u32>>) {
        out.append(&mut self.out);
    }
    fn accept(&mut self, from: usize, msg: u32) -> u32 {
        assert_eq!((from + 1) % self.k, self.id, "token skipped a ring stop");
        msg
    }
}

/// Decodes one raw op for the wheel-vs-heap equivalence driver: a schedule
/// time drawn from regimes that stress every queue path (same-instant ties,
/// wheel level boundaries, the overflow range, and times below the wheel's
/// clock), or a pop/peek probe.
fn decode_op(kind: u64, raw: u64) -> Option<u64> {
    const BOUNDARIES: [u64; 12] = [
        0,
        63,
        64,
        65,
        4_095,
        4_096,
        262_143,
        262_144,
        16_777_216,
        (1 << 42) - 1,
        1 << 42,
        (1 << 42) + 1,
    ];
    match kind {
        // Dense small times: same-instant FIFO ties.
        0 | 1 => Some(raw % 64),
        // A 3-minute-capture-scale range.
        2 => Some(raw % 200_000_000),
        // Exact level/overflow boundaries, and sums of two of them.
        3 => Some(BOUNDARIES[(raw % 12) as usize] + BOUNDARIES[((raw / 12) % 12) as usize]),
        // Anything up to four wheel ranges out.
        4 => Some(raw),
        _ => None,
    }
}

proptest! {
    /// The timing wheel and the reference heap queue deliver bit-identical
    /// `(time, payload)` sequences — same pops, same peeks, same lengths —
    /// under arbitrary schedule/pop/peek/restamp interleavings, including
    /// same-instant ties, schedules below an advanced clock (the `run_until`
    /// horizon-crossing shape: peek far ahead, decline, schedule earlier),
    /// and overflow promotions.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec((0u64..8, 0u64..(1u64 << 44)), 2..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        // Every ticket ever issued, live or not: a restamp op may target a
        // popped entry, which both queues must report as gone.
        let mut tickets: Vec<(SimTime, u64)> = Vec::new();
        for (i, &(kind, raw)) in ops.iter().enumerate() {
            match decode_op(kind, raw) {
                Some(t) => {
                    let t = SimTime::from_micros(t);
                    let sw = wheel.schedule(t, i);
                    let sh = heap.schedule(t, i);
                    prop_assert_eq!(sw, sh);
                    tickets.push((t, sw));
                }
                None if kind == 7 => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                }
                None if kind == 6 && !tickets.is_empty() => {
                    let k = (raw as usize) % tickets.len();
                    let (t, seq) = tickets[k];
                    let rw = wheel.restamp(t, seq);
                    let rh = heap.restamp(t, seq);
                    prop_assert_eq!(rw, rh, "restamp diverged for ({:?}, {})", t, seq);
                    if let Some(fresh) = rw {
                        tickets[k].1 = fresh;
                    }
                }
                None => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain: every remaining event must come out identically.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Events always pop in non-decreasing time order, FIFO within a tick.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated within a tick");
                }
            }
            last = Some((t, i));
        }
    }

    /// The PS integrator conserves work: every admitted job completes after
    /// attaining exactly its demand (within event-grid roundup).
    #[test]
    fn ps_conserves_work(
        demands in prop::collection::vec(0.1f64..50.0, 1..60),
        gaps in prop::collection::vec(0u64..20_000, 1..60),
        speed in 10.0f64..5_000.0,
        cores in 1u32..8,
    ) {
        let mut ps = PsIntegrator::new(speed, cores);
        let mut now = SimTime::ZERO;
        let mut inserted = 0.0;
        let mut completed = 0;
        let n = demands.len().min(gaps.len());
        for i in 0..n {
            let arrive = now + SimDuration::from_micros(gaps[i]);
            // Drain completions that fall before the next arrival, exactly as
            // the event loop would.
            while let Some(due) = ps.next_completion(now) {
                if due > arrive {
                    break;
                }
                now = due;
                completed += ps.pop_due(now).len();
            }
            now = arrive;
            ps.insert(now, JobId(i as u64), demands[i]);
            inserted += demands[i];
        }
        while let Some(due) = ps.next_completion(now) {
            prop_assert!(due >= now);
            now = due;
            completed += ps.pop_due(now).len();
        }
        prop_assert_eq!(completed, n);
        prop_assert!(ps.is_empty());
        let out = ps.busy_core_seconds(now) * speed;
        // Each completion event rounds up by <= 1 us; bound total slack.
        let slack = n as f64 * speed * 1e-6 * cores as f64 + 1e-6 * inserted + 1e-9;
        prop_assert!((out - inserted).abs() <= slack + inserted * 1e-9,
            "in={} out={} slack={}", inserted, out, slack);
    }

    /// A job's sojourn time in PS is never shorter than demand/speed (its
    /// isolated running time) no matter what else happens.
    #[test]
    fn ps_sojourn_lower_bound(
        demands in prop::collection::vec(1.0f64..20.0, 2..30),
        speed in 100.0f64..2_000.0,
    ) {
        let mut ps = PsIntegrator::new(speed, 1);
        let mut now = SimTime::ZERO;
        for (i, &d) in demands.iter().enumerate() {
            ps.insert(now, JobId(i as u64), d);
        }
        let mut finish = vec![SimTime::ZERO; demands.len()];
        while let Some(due) = ps.next_completion(now) {
            now = due;
            for j in ps.pop_due(now) {
                finish[j.0 as usize] = now;
            }
        }
        for (i, &d) in demands.iter().enumerate() {
            let sojourn = finish[i].as_secs_f64();
            prop_assert!(sojourn + 2e-6 >= d / speed,
                "job {} finished faster than isolated time", i);
        }
    }

    /// Removing a job and re-inserting its remaining work preserves the
    /// final completion time (up to event-grid rounding).
    #[test]
    fn ps_remove_reinsert_equivalence(demand in 5.0f64..100.0, cut_ms in 1u64..40) {
        let speed = 100.0;
        // Run A: uninterrupted.
        let mut a = PsIntegrator::new(speed, 1);
        a.insert(SimTime::ZERO, JobId(1), demand);
        let fin_a = a.next_completion(SimTime::ZERO).unwrap();

        // Run B: remove at cut, re-insert immediately with remaining work.
        let cut = SimTime::from_millis(cut_ms);
        let mut b = PsIntegrator::new(speed, 1);
        b.insert(SimTime::ZERO, JobId(1), demand);
        if cut < fin_a {
            let rem = b.remove(cut, JobId(1)).unwrap();
            prop_assert!(rem > 0.0);
            b.insert(cut, JobId(2), rem);
            let fin_b = b.next_completion(cut).unwrap();
            let diff = fin_b.as_secs_f64() - fin_a.as_secs_f64();
            prop_assert!(diff.abs() < 5e-6, "diff {}", diff);
        }
    }

    /// Dice::weighted never returns an index with zero weight.
    #[test]
    fn weighted_never_picks_zero(seed in 0u64..1_000, pattern in prop::collection::vec(prop::bool::ANY, 1..10)) {
        prop_assume!(pattern.iter().any(|&b| b));
        let weights: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut d = Dice::seed(seed);
        for _ in 0..50 {
            let i = d.weighted(&weights);
            prop_assert!(pattern[i]);
        }
    }

    /// RNG streams split from one root never overlap: the 64-draw
    /// prefixes of any two distinct streams are pairwise distinct, and
    /// none replays the unsplit root sequence.
    #[test]
    fn rng_streams_never_overlap(root in 0u64..(1u64 << 62), k in 2usize..9) {
        let mut prefixes: Vec<Vec<u64>> = (0..k as u64)
            .map(|s| {
                let mut d = Dice::stream(root, s);
                (0..64).map(|_| d.uniform().to_bits()).collect()
            })
            .collect();
        let mut base = Dice::seed(root);
        prefixes.push((0..64).map(|_| base.uniform().to_bits()).collect());
        for i in 0..prefixes.len() {
            for j in (i + 1)..prefixes.len() {
                prop_assert_ne!(&prefixes[i], &prefixes[j],
                    "streams {} and {} collide under root {}", i, j, root);
            }
        }
    }

    /// A stream's seed is a pure function of `(root, index)`: splitting
    /// off more streams, or splitting in any order, never perturbs an
    /// existing stream. This is what lets a sharded simulation keep pod
    /// 0's trajectory fixed while the shard count varies.
    #[test]
    fn rng_stream_split_is_pure(root in 0u64..(1u64 << 62), s in 0u64..64) {
        prop_assert_eq!(Dice::stream_seed(root, s), Dice::stream_seed(root, s));
        let direct: Vec<u64> = {
            let mut d = Dice::stream(root, s);
            (0..32).map(|_| d.uniform().to_bits()).collect()
        };
        // Split off every lower-indexed stream first; stream `s` must not
        // notice.
        for other in 0..s {
            let _ = Dice::stream(root, other);
        }
        let mut again = Dice::stream(root, s);
        let replay: Vec<u64> = (0..32).map(|_| again.uniform().to_bits()).collect();
        prop_assert_eq!(direct, replay);
    }

    /// Lockstep execution of a cross-shard token ring matches the
    /// analytic sequential reference exactly — same arrival times, same
    /// token values at every stop — for any shard count, any window
    /// strictly below the lookahead, and any worker count, with injected
    /// yields shaking the worker schedules.
    #[test]
    fn lockstep_matches_sequential_reference(
        k in 2usize..5,
        hops in 1u32..40,
        latency_ms in 2u64..30,
        window_frac in 1u64..100,
        workers in 1usize..5,
        delays_ms in prop::collection::vec(0u64..25, 4..5),
        yields in 0u32..4,
    ) {
        let latency = SimDuration::from_millis(latency_ms);
        // Any window in (0, latency) satisfies the strict lookahead bound.
        let window_us = 1 + (latency_ms * 1_000 - 2) * window_frac / 100;
        let mut shards: Vec<Simulation<RingNode>> = (0..k)
            .map(|id| {
                Simulation::new(RingNode {
                    id,
                    k,
                    delay: SimDuration::from_millis(delays_ms[id]),
                    latency,
                    yields,
                    seen: Vec::new(),
                    out: Vec::new(),
                })
            })
            .collect();
        shards[0].prime(SimTime::from_millis(1), hops);
        let report = run_lockstep(
            &mut shards,
            SimTime::from_secs(3_600),
            &LockstepConfig {
                window: SimDuration::from_micros(window_us),
                workers,
            },
        );

        // Sequential reference: the ring is a chain recurrence.
        let mut expected: Vec<Vec<(SimTime, u32)>> = vec![Vec::new(); k];
        let mut t = SimTime::from_millis(1);
        let mut node = 0usize;
        let mut v = hops;
        loop {
            expected[node].push((t, v));
            if v == 0 {
                break;
            }
            t = t + SimDuration::from_millis(delays_ms[node]) + latency;
            node = (node + 1) % k;
            v -= 1;
        }

        for (id, shard) in shards.iter().enumerate() {
            prop_assert_eq!(&shard.actor().seen, &expected[id],
                "node {} diverged from the reference", id);
        }
        prop_assert_eq!(report.messages, u64::from(hops));
    }

    /// Exponential and bounded-Pareto samples respect their supports.
    #[test]
    fn variates_in_support(seed in 0u64..1_000) {
        let mut d = Dice::seed(seed);
        for _ in 0..100 {
            prop_assert!(d.exp(2.0) >= 0.0);
            let p = d.bounded_pareto(1.5, 2.0, 10.0);
            prop_assert!((2.0..=10.0).contains(&p));
            let u = d.uniform_in(-3.0, 4.5);
            prop_assert!((-3.0..4.5).contains(&u));
        }
    }
}

use fgbd_des::ps::reference::PsIntegrator as RefPs;

/// Decodes one raw op for the PS fast-vs-reference equivalence driver.
/// Demands span ~nine decades (1e-7 .. ~5e2 work-units) so completion
/// intervals land both below and far above the 1 us event grid.
fn ps_demand(raw: u64) -> f64 {
    let mant = 1.0 + ((raw >> 4) % 100) as f64 / 25.0; // 1.0 .. 4.96
    let exp = (raw % 10) as i32 - 7; // 1e-7 .. 1e2
    mant * 10f64.powi(exp)
}

/// Single drain step shared by the equivalence proptest: probe both
/// integrators, insist on the same verdict, and if a completion is due,
/// advance to it and insist on the same completion batch (order included).
fn ps_drain_step(
    fast: &mut PsIntegrator,
    slow: &mut RefPs,
    now: &mut SimTime,
    live: &mut Vec<JobId>,
) -> Result<bool, String> {
    let a = fast.next_completion(*now);
    let b = slow.next_completion(*now);
    prop_assert_eq!(a, b, "next_completion diverged at {:?}", *now);
    match a {
        Some(due) => {
            *now = due;
            let da = fast.pop_due(*now);
            let db = slow.pop_due(*now);
            prop_assert_eq!(&da, &db, "completion batch diverged at {:?}", *now);
            live.retain(|j| !da.contains(j));
            Ok(true)
        }
        None => Ok(false),
    }
}

proptest! {
    /// The lane-based PS integrator is observably *identical* to the
    /// heap+lazy-deletion reference — same `next_completion` instants, same
    /// completion batches in the same order, same remaining work on
    /// removal, same busy-core integral to the bit — across randomized
    /// schedules of arrivals, mid-service removals, DVFS speed changes
    /// (including on an empty integrator), GC freeze/unfreeze spans
    /// (including spans an armed completion falls inside), and event-loop
    /// drains. Lanes on the fast side are assigned pseudo-randomly: a lane
    /// is a performance hint and must never become an ordering input.
    #[test]
    fn ps_lane_integrator_matches_reference(
        ops in prop::collection::vec((0u64..8, 0u64..(1u64 << 32)), 1..150),
        speed in 50.0f64..2_000.0,
        cores in 1u32..6,
    ) {
        let mut fast = PsIntegrator::with_lanes(speed, cores, 4);
        let mut slow = RefPs::new(speed, cores);
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut live: Vec<JobId> = Vec::new();
        let mut frozen = false;
        for &(kind, raw) in &ops {
            now += SimDuration::from_micros(raw % 2_500);
            match kind {
                // Arrivals are the most common op (three op codes).
                0..=2 => {
                    let job = JobId(next_id);
                    next_id += 1;
                    let demand = ps_demand(raw);
                    fast.insert_lane(now, job, demand, (raw % 4) as usize);
                    slow.insert(now, job, demand);
                    live.push(job);
                }
                3 => {
                    if !live.is_empty() {
                        let job = live.swap_remove(raw as usize % live.len());
                        let ra = fast.remove(now, job);
                        let rb = slow.remove(now, job);
                        // Identical float op sequences -> identical bits.
                        prop_assert_eq!(ra.map(f64::to_bits), rb.map(f64::to_bits));
                    }
                }
                4 => {
                    // Hits the empty integrator whenever the schedule says
                    // so — a speed change with no jobs must be inert on
                    // both sides.
                    let s = 10.0 + (raw % 5_000) as f64;
                    fast.set_speed(now, s);
                    slow.set_speed(now, s);
                }
                5 => {
                    // Toggle; spans routinely cover armed completions
                    // because drains (ops 6-7) interleave freely.
                    frozen = !frozen;
                    fast.set_frozen(now, frozen);
                    slow.set_frozen(now, frozen);
                }
                _ => {
                    ps_drain_step(&mut fast, &mut slow, &mut now, &mut live)?;
                }
            }
            prop_assert_eq!(fast.len(), slow.len());
        }
        if frozen {
            fast.set_frozen(now, false);
            slow.set_frozen(now, false);
        }
        while ps_drain_step(&mut fast, &mut slow, &mut now, &mut live)? {}
        prop_assert!(fast.is_empty() && slow.is_empty());
        prop_assert!(live.is_empty());
        prop_assert_eq!(
            fast.busy_core_seconds(now).to_bits(),
            slow.busy_core_seconds(now).to_bits()
        );
    }
}

/// One entry in the randomized DVFS/GC timeline the oracle test replays.
#[derive(Clone, Copy, Debug)]
enum PsEvent {
    Arrive(JobId, f64),
    Speed(f64),
    Freeze(bool),
}

/// Replays `timeline` against the exact integrator with an event-loop
/// drain, returning each job's completion time in microseconds.
fn ps_exact_run(timeline: &[(u64, PsEvent)], cores: u32) -> Vec<(JobId, u64)> {
    let mut ps = PsIntegrator::with_lanes(200.0, cores, 2);
    let mut now = SimTime::ZERO;
    let mut done = Vec::new();
    for &(t_us, ev) in timeline {
        let t = SimTime::from_micros(t_us);
        while let Some(due) = ps.next_completion(now) {
            if due > t {
                break;
            }
            now = due;
            for j in ps.pop_due(now) {
                done.push((j, now.as_micros()));
            }
        }
        now = t;
        match ev {
            PsEvent::Arrive(job, demand) => ps.insert(now, job, demand),
            PsEvent::Speed(s) => ps.set_speed(now, s),
            PsEvent::Freeze(f) => ps.set_frozen(now, f),
        }
    }
    while let Some(due) = ps.next_completion(now) {
        now = due;
        for j in ps.pop_due(now) {
            done.push((j, now.as_micros()));
        }
    }
    done
}

/// Replays `timeline` against a brute-force time-sliced PS simulation:
/// every `dt_us` the egalitarian per-job rate is recomputed and each live
/// job's remaining demand decremented. Deliberately naive — this is the
/// slow executable definition of processor sharing, discretization error
/// and all.
fn ps_sliced_run(timeline: &[(u64, PsEvent)], cores: u32, dt_us: u64) -> Vec<(JobId, u64)> {
    let mut speed = 200.0;
    let mut frozen = false;
    let mut jobs: Vec<(JobId, f64)> = Vec::new();
    let mut done = Vec::new();
    let mut idx = 0;
    let mut t_us = 0u64;
    while idx < timeline.len() || !jobs.is_empty() {
        while idx < timeline.len() && timeline[idx].0 <= t_us {
            match timeline[idx].1 {
                PsEvent::Arrive(job, demand) => jobs.push((job, demand)),
                PsEvent::Speed(s) => speed = s,
                PsEvent::Freeze(f) => frozen = f,
            }
            idx += 1;
        }
        if !frozen && !jobs.is_empty() {
            let n = jobs.len() as f64;
            let step = speed * (f64::from(cores) / n).min(1.0) * dt_us as f64 * 1e-6;
            for j in &mut jobs {
                j.1 -= step;
            }
            jobs.retain(|&(id, rem)| {
                if rem <= 1e-12 {
                    done.push((id, t_us + dt_us));
                    false
                } else {
                    true
                }
            });
        }
        t_us += dt_us;
        assert!(t_us < 60_000_000, "sliced oracle ran away");
    }
    done
}

proptest! {
    // The sliced oracle walks tens of thousands of slices per case; keep
    // the case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact integrator agrees with the slow time-slicing definition of
    /// egalitarian PS — per-job completion times within the oracle's
    /// discretization tolerance — across randomized arrival schedules
    /// overlaid with DVFS speed changes and GC freeze spans. The exact
    /// integrator exists precisely to avoid this oracle's slicing error, so
    /// the tolerance scales with slice width and event count, nothing else.
    #[test]
    fn ps_matches_slow_time_slicing_oracle(
        arrivals in prop::collection::vec((0u64..40_000, 1u64..100), 1..9),
        speeds in prop::collection::vec((0u64..60_000, 100u64..400), 0..4),
        freezes in prop::collection::vec((0u64..60_000, 200u64..15_000), 0..3),
        cores in 1u32..4,
    ) {
        let mut timeline: Vec<(u64, PsEvent)> = Vec::new();
        for (i, &(t, d)) in arrivals.iter().enumerate() {
            // 0.05 .. 5 work-units at >= 100 u/s: everything completes in
            // well under a simulated second.
            timeline.push((t, PsEvent::Arrive(JobId(i as u64), d as f64 * 0.05)));
        }
        for &(t, s) in &speeds {
            timeline.push((t, PsEvent::Speed(s as f64)));
        }
        for &(t, dur) in &freezes {
            timeline.push((t, PsEvent::Freeze(true)));
            timeline.push((t + dur, PsEvent::Freeze(false)));
        }
        timeline.sort_by_key(|&(t, _)| t);
        // Both replays must end unfrozen or neither drains; the sort keeps
        // freeze/unfreeze pairs ordered, so ending frozen means a span ran
        // past every later unfreeze — append a final thaw.
        let frozen_at_end = timeline
            .iter()
            .fold(false, |f, &(_, ev)| match ev {
                PsEvent::Freeze(x) => x,
                _ => f,
            });
        if frozen_at_end {
            let last = timeline.last().map_or(0, |&(t, _)| t);
            timeline.push((last + 1, PsEvent::Freeze(false)));
        }

        const DT_US: u64 = 20;
        let exact = ps_exact_run(&timeline, cores);
        let sliced = ps_sliced_run(&timeline, cores, DT_US);
        prop_assert_eq!(exact.len(), sliced.len());
        // Each timeline event (and each completion, which changes the
        // sharing factor mid-slice) contributes up to one slice of error.
        let tol = DT_US * (2 * timeline.len() as u64 + 8);
        for &(job, t_exact) in &exact {
            let found = sliced.iter().find(|&&(j, _)| j == job).map(|&(_, t)| t);
            prop_assert!(found.is_some(), "{:?} missing from oracle", job);
            let t_sliced = found.unwrap();
            prop_assert!(
                t_exact.abs_diff(t_sliced) <= tol,
                "{:?}: exact {} us vs sliced {} us (tol {} us)",
                job, t_exact, t_sliced, tol
            );
        }
    }
}

/// A DVFS transition on an *empty* integrator must be inert: no progress,
/// no phantom busy time, and a later job completes exactly as if the
/// integrator were freshly built at the new speed — on both
/// implementations.
#[test]
fn ps_speed_change_with_empty_heap_is_inert() {
    let mut fast = PsIntegrator::new(100.0, 2);
    let mut slow = RefPs::new(100.0, 2);
    for ps_set in [50.0, 400.0] {
        fast.set_speed(SimTime::from_millis(10), ps_set);
        slow.set_speed(SimTime::from_millis(10), ps_set);
    }
    let t1 = SimTime::from_millis(20);
    fast.insert(t1, JobId(1), 40.0);
    slow.insert(t1, JobId(1), 40.0);
    // 40 units at 400 u/s -> 100 ms.
    let due = SimTime::from_millis(120);
    assert_eq!(fast.next_completion(t1), Some(due));
    assert_eq!(slow.next_completion(t1), Some(due));
    assert_eq!(fast.pop_due(due), vec![JobId(1)]);
    assert_eq!(slow.pop_due(due), vec![JobId(1)]);
    // No job ran before t1: the busy integral starts at the insert.
    assert_eq!(
        fast.busy_core_seconds(due).to_bits(),
        slow.busy_core_seconds(due).to_bits()
    );
    assert!((fast.busy_core_seconds(due) - 0.1).abs() < 1e-9);
}

/// A GC freeze that spans an armed completion pushes it out by exactly the
/// frozen interval, identically on both implementations.
#[test]
fn ps_freeze_spanning_completion_defers_it_by_the_frozen_interval() {
    let mut fast = PsIntegrator::new(100.0, 1);
    let mut slow = RefPs::new(100.0, 1);
    fast.insert(SimTime::ZERO, JobId(7), 50.0);
    slow.insert(SimTime::ZERO, JobId(7), 50.0);
    // Armed for t=500 ms; freeze 300..900 ms swallows it.
    assert_eq!(
        fast.next_completion(SimTime::ZERO),
        Some(SimTime::from_millis(500))
    );
    fast.set_frozen(SimTime::from_millis(300), true);
    slow.set_frozen(SimTime::from_millis(300), true);
    assert_eq!(fast.next_completion(SimTime::from_millis(500)), None);
    assert_eq!(slow.next_completion(SimTime::from_millis(500)), None);
    fast.set_frozen(SimTime::from_millis(900), false);
    slow.set_frozen(SimTime::from_millis(900), false);
    // 30 units attained before the freeze; 20 to go -> 1100 ms.
    let due = SimTime::from_millis(1100);
    assert_eq!(fast.next_completion(SimTime::from_millis(900)), Some(due));
    assert_eq!(slow.next_completion(SimTime::from_millis(900)), Some(due));
    assert_eq!(fast.pop_due(due), vec![JobId(7)]);
    assert_eq!(slow.pop_due(due), vec![JobId(7)]);
}

/// Zero demand is rejected by contract (see the `should_panic` tests in
/// `ps.rs`); the nearest legal thing is a demand so small its completion
/// interval rounds up to the 1 us event grid. Both implementations must
/// agree on that floor and complete the job on the very next probe.
#[test]
fn ps_near_zero_demand_completes_on_the_next_microsecond_tick() {
    let mut fast = PsIntegrator::new(100.0, 1);
    let mut slow = RefPs::new(100.0, 1);
    let t0 = SimTime::from_millis(5);
    fast.insert(t0, JobId(1), 1e-9);
    slow.insert(t0, JobId(1), 1e-9);
    let due = t0 + SimDuration::from_micros(1);
    assert_eq!(fast.next_completion(t0), Some(due));
    assert_eq!(slow.next_completion(t0), Some(due));
    assert_eq!(fast.pop_due(due), vec![JobId(1)]);
    assert_eq!(slow.pop_due(due), vec![JobId(1)]);
    assert!(fast.is_empty() && slow.is_empty());
}
