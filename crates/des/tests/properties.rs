//! Property-based tests for the DES kernel invariants.

use fgbd_des::queue::reference::HeapQueue;
use fgbd_des::{
    run_lockstep, Actor, Dice, Envelope, EventQueue, JobId, LockstepConfig, PsIntegrator,
    Scheduler, ShardActor, SimDuration, SimTime, Simulation,
};
use proptest::prelude::*;

/// One stop on a token ring spread across shards: node `i` forwards the
/// token to node `(i + 1) % k` after a deterministic per-node delay plus
/// the cross-shard link latency (the model's lookahead). Each `handle`
/// call burns a few injected `yield_now` calls so worker threads get
/// shaken into different OS schedules — the trajectory must not care.
struct RingNode {
    id: usize,
    k: usize,
    delay: SimDuration,
    latency: SimDuration,
    yields: u32,
    seen: Vec<(SimTime, u32)>,
    out: Vec<Envelope<u32>>,
}

impl Actor for RingNode {
    type Event = u32;
    fn handle(&mut self, now: SimTime, hops_left: u32, _sched: &mut Scheduler<u32>) {
        for _ in 0..self.yields {
            std::thread::yield_now();
        }
        self.seen.push((now, hops_left));
        if hops_left > 0 {
            self.out.push(Envelope {
                dest: (self.id + 1) % self.k,
                due: now + self.delay + self.latency,
                msg: hops_left - 1,
            });
        }
    }
}

impl ShardActor for RingNode {
    type Msg = u32;
    fn drain_outbox(&mut self, out: &mut Vec<Envelope<u32>>) {
        out.append(&mut self.out);
    }
    fn accept(&mut self, from: usize, msg: u32) -> u32 {
        assert_eq!((from + 1) % self.k, self.id, "token skipped a ring stop");
        msg
    }
}

/// Decodes one raw op for the wheel-vs-heap equivalence driver: a schedule
/// time drawn from regimes that stress every queue path (same-instant ties,
/// wheel level boundaries, the overflow range, and times below the wheel's
/// clock), or a pop/peek probe.
fn decode_op(kind: u64, raw: u64) -> Option<u64> {
    const BOUNDARIES: [u64; 12] = [
        0,
        63,
        64,
        65,
        4_095,
        4_096,
        262_143,
        262_144,
        16_777_216,
        (1 << 42) - 1,
        1 << 42,
        (1 << 42) + 1,
    ];
    match kind {
        // Dense small times: same-instant FIFO ties.
        0 | 1 => Some(raw % 64),
        // A 3-minute-capture-scale range.
        2 => Some(raw % 200_000_000),
        // Exact level/overflow boundaries, and sums of two of them.
        3 => Some(BOUNDARIES[(raw % 12) as usize] + BOUNDARIES[((raw / 12) % 12) as usize]),
        // Anything up to four wheel ranges out.
        4 => Some(raw),
        _ => None,
    }
}

proptest! {
    /// The timing wheel and the reference heap queue deliver bit-identical
    /// `(time, payload)` sequences — same pops, same peeks, same lengths —
    /// under arbitrary schedule/pop/peek interleavings, including
    /// same-instant ties, schedules below an advanced clock (the `run_until`
    /// horizon-crossing shape: peek far ahead, decline, schedule earlier),
    /// and overflow promotions.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec((0u64..8, 0u64..(1u64 << 44)), 2..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &(kind, raw)) in ops.iter().enumerate() {
            match decode_op(kind, raw) {
                Some(t) => {
                    let t = SimTime::from_micros(t);
                    wheel.schedule(t, i);
                    heap.schedule(t, i);
                }
                None if kind == 7 => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                }
                None => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain: every remaining event must come out identically.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Events always pop in non-decreasing time order, FIFO within a tick.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated within a tick");
                }
            }
            last = Some((t, i));
        }
    }

    /// The PS integrator conserves work: every admitted job completes after
    /// attaining exactly its demand (within event-grid roundup).
    #[test]
    fn ps_conserves_work(
        demands in prop::collection::vec(0.1f64..50.0, 1..60),
        gaps in prop::collection::vec(0u64..20_000, 1..60),
        speed in 10.0f64..5_000.0,
        cores in 1u32..8,
    ) {
        let mut ps = PsIntegrator::new(speed, cores);
        let mut now = SimTime::ZERO;
        let mut inserted = 0.0;
        let mut completed = 0;
        let n = demands.len().min(gaps.len());
        for i in 0..n {
            let arrive = now + SimDuration::from_micros(gaps[i]);
            // Drain completions that fall before the next arrival, exactly as
            // the event loop would.
            while let Some(due) = ps.next_completion(now) {
                if due > arrive {
                    break;
                }
                now = due;
                completed += ps.pop_due(now).len();
            }
            now = arrive;
            ps.insert(now, JobId(i as u64), demands[i]);
            inserted += demands[i];
        }
        while let Some(due) = ps.next_completion(now) {
            prop_assert!(due >= now);
            now = due;
            completed += ps.pop_due(now).len();
        }
        prop_assert_eq!(completed, n);
        prop_assert!(ps.is_empty());
        let out = ps.busy_core_seconds(now) * speed;
        // Each completion event rounds up by <= 1 us; bound total slack.
        let slack = n as f64 * speed * 1e-6 * cores as f64 + 1e-6 * inserted + 1e-9;
        prop_assert!((out - inserted).abs() <= slack + inserted * 1e-9,
            "in={} out={} slack={}", inserted, out, slack);
    }

    /// A job's sojourn time in PS is never shorter than demand/speed (its
    /// isolated running time) no matter what else happens.
    #[test]
    fn ps_sojourn_lower_bound(
        demands in prop::collection::vec(1.0f64..20.0, 2..30),
        speed in 100.0f64..2_000.0,
    ) {
        let mut ps = PsIntegrator::new(speed, 1);
        let mut now = SimTime::ZERO;
        for (i, &d) in demands.iter().enumerate() {
            ps.insert(now, JobId(i as u64), d);
        }
        let mut finish = vec![SimTime::ZERO; demands.len()];
        while let Some(due) = ps.next_completion(now) {
            now = due;
            for j in ps.pop_due(now) {
                finish[j.0 as usize] = now;
            }
        }
        for (i, &d) in demands.iter().enumerate() {
            let sojourn = finish[i].as_secs_f64();
            prop_assert!(sojourn + 2e-6 >= d / speed,
                "job {} finished faster than isolated time", i);
        }
    }

    /// Removing a job and re-inserting its remaining work preserves the
    /// final completion time (up to event-grid rounding).
    #[test]
    fn ps_remove_reinsert_equivalence(demand in 5.0f64..100.0, cut_ms in 1u64..40) {
        let speed = 100.0;
        // Run A: uninterrupted.
        let mut a = PsIntegrator::new(speed, 1);
        a.insert(SimTime::ZERO, JobId(1), demand);
        let fin_a = a.next_completion(SimTime::ZERO).unwrap();

        // Run B: remove at cut, re-insert immediately with remaining work.
        let cut = SimTime::from_millis(cut_ms);
        let mut b = PsIntegrator::new(speed, 1);
        b.insert(SimTime::ZERO, JobId(1), demand);
        if cut < fin_a {
            let rem = b.remove(cut, JobId(1)).unwrap();
            prop_assert!(rem > 0.0);
            b.insert(cut, JobId(2), rem);
            let fin_b = b.next_completion(cut).unwrap();
            let diff = fin_b.as_secs_f64() - fin_a.as_secs_f64();
            prop_assert!(diff.abs() < 5e-6, "diff {}", diff);
        }
    }

    /// Dice::weighted never returns an index with zero weight.
    #[test]
    fn weighted_never_picks_zero(seed in 0u64..1_000, pattern in prop::collection::vec(prop::bool::ANY, 1..10)) {
        prop_assume!(pattern.iter().any(|&b| b));
        let weights: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut d = Dice::seed(seed);
        for _ in 0..50 {
            let i = d.weighted(&weights);
            prop_assert!(pattern[i]);
        }
    }

    /// RNG streams split from one root never overlap: the 64-draw
    /// prefixes of any two distinct streams are pairwise distinct, and
    /// none replays the unsplit root sequence.
    #[test]
    fn rng_streams_never_overlap(root in 0u64..(1u64 << 62), k in 2usize..9) {
        let mut prefixes: Vec<Vec<u64>> = (0..k as u64)
            .map(|s| {
                let mut d = Dice::stream(root, s);
                (0..64).map(|_| d.uniform().to_bits()).collect()
            })
            .collect();
        let mut base = Dice::seed(root);
        prefixes.push((0..64).map(|_| base.uniform().to_bits()).collect());
        for i in 0..prefixes.len() {
            for j in (i + 1)..prefixes.len() {
                prop_assert_ne!(&prefixes[i], &prefixes[j],
                    "streams {} and {} collide under root {}", i, j, root);
            }
        }
    }

    /// A stream's seed is a pure function of `(root, index)`: splitting
    /// off more streams, or splitting in any order, never perturbs an
    /// existing stream. This is what lets a sharded simulation keep pod
    /// 0's trajectory fixed while the shard count varies.
    #[test]
    fn rng_stream_split_is_pure(root in 0u64..(1u64 << 62), s in 0u64..64) {
        prop_assert_eq!(Dice::stream_seed(root, s), Dice::stream_seed(root, s));
        let direct: Vec<u64> = {
            let mut d = Dice::stream(root, s);
            (0..32).map(|_| d.uniform().to_bits()).collect()
        };
        // Split off every lower-indexed stream first; stream `s` must not
        // notice.
        for other in 0..s {
            let _ = Dice::stream(root, other);
        }
        let mut again = Dice::stream(root, s);
        let replay: Vec<u64> = (0..32).map(|_| again.uniform().to_bits()).collect();
        prop_assert_eq!(direct, replay);
    }

    /// Lockstep execution of a cross-shard token ring matches the
    /// analytic sequential reference exactly — same arrival times, same
    /// token values at every stop — for any shard count, any window
    /// strictly below the lookahead, and any worker count, with injected
    /// yields shaking the worker schedules.
    #[test]
    fn lockstep_matches_sequential_reference(
        k in 2usize..5,
        hops in 1u32..40,
        latency_ms in 2u64..30,
        window_frac in 1u64..100,
        workers in 1usize..5,
        delays_ms in prop::collection::vec(0u64..25, 4..5),
        yields in 0u32..4,
    ) {
        let latency = SimDuration::from_millis(latency_ms);
        // Any window in (0, latency) satisfies the strict lookahead bound.
        let window_us = 1 + (latency_ms * 1_000 - 2) * window_frac / 100;
        let mut shards: Vec<Simulation<RingNode>> = (0..k)
            .map(|id| {
                Simulation::new(RingNode {
                    id,
                    k,
                    delay: SimDuration::from_millis(delays_ms[id]),
                    latency,
                    yields,
                    seen: Vec::new(),
                    out: Vec::new(),
                })
            })
            .collect();
        shards[0].prime(SimTime::from_millis(1), hops);
        let report = run_lockstep(
            &mut shards,
            SimTime::from_secs(3_600),
            &LockstepConfig {
                window: SimDuration::from_micros(window_us),
                workers,
            },
        );

        // Sequential reference: the ring is a chain recurrence.
        let mut expected: Vec<Vec<(SimTime, u32)>> = vec![Vec::new(); k];
        let mut t = SimTime::from_millis(1);
        let mut node = 0usize;
        let mut v = hops;
        loop {
            expected[node].push((t, v));
            if v == 0 {
                break;
            }
            t = t + SimDuration::from_millis(delays_ms[node]) + latency;
            node = (node + 1) % k;
            v -= 1;
        }

        for (id, shard) in shards.iter().enumerate() {
            prop_assert_eq!(&shard.actor().seen, &expected[id],
                "node {} diverged from the reference", id);
        }
        prop_assert_eq!(report.messages, u64::from(hops));
    }

    /// Exponential and bounded-Pareto samples respect their supports.
    #[test]
    fn variates_in_support(seed in 0u64..1_000) {
        let mut d = Dice::seed(seed);
        for _ in 0..100 {
            prop_assert!(d.exp(2.0) >= 0.0);
            let p = d.bounded_pareto(1.5, 2.0, 10.0);
            prop_assert!((2.0..=10.0).contains(&p));
            let u = d.uniform_in(-3.0, 4.5);
            prop_assert!((-3.0..4.5).contains(&u));
        }
    }
}
