#![warn(missing_docs)]

//! # fgbd-metrics — coarse-grained monitors and summary statistics
//!
//! The paper contrasts its fine-grained passive-tracing method with the
//! conventional monitoring stack (Sysstat at 1 s, esxtop at 2 s). This crate
//! provides that conventional stack for the reproduction:
//!
//! * [`sampler`] — sysstat-like utilization monitors derived from the
//!   simulator's cumulative busy integrals at any period, plus the paper's
//!   monitoring-overhead model (6% CPU at 100 ms sampling, 12% at 20 ms).
//!   These regenerate Table I and Fig 3 — the "no resource looks saturated"
//!   baseline view.
//! * [`histogram`] — bucketed histograms (linear, logarithmic, and the
//!   paper's Fig 2(c) edges) for long-tail response-time distributions.
//! * [`sla`] — bounded-response-time SLA accounting and the paper's cited
//!   "100 ms costs 1% of sales" revenue heuristic (§II-B).
//! * [`timeseries`] — smoothing / downsampling / rate-derivation helpers.
//!
//! # Examples
//!
//! ```
//! use fgbd_des::{SimDuration, SimTime};
//! use fgbd_metrics::sampler::UtilizationSeries;
//!
//! // A server busy 30% of one core for 5 seconds.
//! let cumulative: Vec<(SimTime, f64)> = (0..=50)
//!     .map(|i| (SimTime::from_millis(i * 100), i as f64 * 0.03))
//!     .collect();
//! let series = UtilizationSeries::sample(&cumulative, 1, SimDuration::from_secs(1));
//! assert_eq!(series.len(), 5);
//! assert!((series.samples()[0].util - 0.3).abs() < 1e-9);
//! ```

pub mod histogram;
pub mod sampler;
pub mod sla;
pub mod timeseries;

pub use histogram::Histogram;
pub use sampler::{sampling_overhead_frac, UtilSample, UtilizationSeries};
pub use sla::{revenue_loss_fraction, SlaOutcome, SlaPolicy};
