//! Bucketed histograms for response-time distributions (the long-tail,
//! bi-modal Fig 2(c)) and general summary statistics.

use serde::{Deserialize, Serialize};

/// A histogram over explicit bucket edges, with an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram whose buckets are `[edges[i], edges[i+1])` plus a final
    /// `>= edges.last()` overflow bucket; values below `edges[0]` land in
    /// the underflow bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `edges` has at least two strictly increasing values.
    pub fn with_edges(edges: Vec<f64>) -> Histogram {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must strictly increase"
        );
        let n = edges.len();
        Histogram {
            edges,
            counts: vec![0; n],
            underflow: 0,
            total: 0,
        }
    }

    /// Evenly spaced buckets across `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn linear(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(lo < hi && buckets > 0, "bad linear histogram spec");
        let w = (hi - lo) / buckets as f64;
        Histogram::with_edges((0..=buckets).map(|i| lo + w * i as f64).collect())
    }

    /// Logarithmically spaced buckets across `[lo, hi)` — the natural scale
    /// for a response-time spectrum spanning "2 to 3 orders of magnitude"
    /// (paper §I).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `buckets > 0`.
    pub fn log(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(lo > 0.0 && lo < hi && buckets > 0, "bad log histogram spec");
        let r = (hi / lo).powf(1.0 / buckets as f64);
        Histogram::with_edges((0..=buckets).map(|i| lo * r.powi(i as i32)).collect())
    }

    /// The bucket edges of the paper's Fig 2(c): response-time seconds
    /// 0.1, 0.5, 1.0, 1.5, …, 4.0 with a `> 4 s` overflow bucket.
    pub fn fig2c_edges() -> Histogram {
        Histogram::with_edges(vec![0.0, 0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0])
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v < self.edges[0] {
            self.underflow += 1;
            return;
        }
        // Last real bucket edge opens the overflow bucket.
        let i = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&v).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let last = self.counts.len() - 1;
        self.counts[i.min(last)] += 1;
    }

    /// Records many values.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// `(lower edge, upper edge, count)` triples; the final bucket's upper
    /// edge is `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        (0..self.counts.len())
            .map(|i| {
                let hi = self.edges.get(i + 1).copied().unwrap_or(f64::INFINITY);
                (self.edges[i], hi, self.counts[i])
            })
            .collect()
    }

    /// Values below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of values at or above `threshold` (threshold must be an
    /// edge for an exact answer; otherwise the containing bucket is
    /// included whole).
    pub fn frac_at_least(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above: u64 = self
            .buckets()
            .iter()
            .filter(|&&(lo, _, _)| lo >= threshold)
            .map(|&(_, _, c)| c)
            .sum();
        above as f64 / self.total as f64
    }

    /// Number of distinct local maxima among bucket counts — a crude
    /// modality check used to verify Fig 2(c)'s bi-modal shape.
    pub fn modes(&self) -> usize {
        let c = &self.counts;
        (0..c.len())
            .filter(|&i| {
                c[i] > 0 && (i == 0 || c[i - 1] < c[i]) && (i + 1 == c.len() || c[i + 1] <= c[i])
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_right_buckets() {
        let mut h = Histogram::with_edges(vec![0.0, 1.0, 2.0]);
        h.record_all([0.5, 1.5, 2.5, 99.0, -1.0]);
        let b = h.buckets();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], (0.0, 1.0, 1));
        assert_eq!(b[1], (1.0, 2.0, 1));
        assert_eq!(b[2], (2.0, f64::INFINITY, 2));
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn exact_edge_goes_to_upper_bucket() {
        let mut h = Histogram::with_edges(vec![0.0, 1.0, 2.0]);
        h.record(1.0);
        assert_eq!(h.buckets()[1].2, 1);
    }

    #[test]
    fn linear_and_log_edges() {
        let lin = Histogram::linear(0.0, 10.0, 5);
        assert_eq!(lin.buckets().len(), 6);
        assert_eq!(lin.buckets()[0].0, 0.0);
        let lg = Histogram::log(0.001, 10.0, 4);
        let b = lg.buckets();
        // Log-spaced: constant ratio 10 between edges.
        assert!((b[1].0 / b[0].0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig2c_frac_over_two_seconds() {
        let mut h = Histogram::fig2c_edges();
        h.record_all([0.05, 0.2, 0.3, 1.2, 2.5, 3.6, 4.5, 5.0]);
        // 4 of 8 values are >= 2 s.
        assert!((h.frac_at_least(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bimodal_distribution_has_two_modes() {
        let mut h = Histogram::fig2c_edges();
        // Mode near 0.1-0.5 and a second near >4 (TCP retransmissions).
        for _ in 0..1_000 {
            h.record(0.2);
        }
        for _ in 0..200 {
            h.record(4.6);
        }
        assert_eq!(h.modes(), 2);
        // A unimodal pile has one mode.
        let mut u = Histogram::fig2c_edges();
        u.record_all([0.2, 0.2, 0.3, 0.2]);
        assert_eq!(u.modes(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn bad_edges_panic() {
        Histogram::with_edges(vec![0.0, 0.0, 1.0]);
    }
}
