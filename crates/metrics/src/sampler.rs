//! Coarse-grained sampling monitors — the *baseline* the paper's method is
//! measured against.
//!
//! The paper's testbed ran Sysstat at 1 s and esxtop at 2 s granularity
//! (§II-A); at that resolution every tier looks <100% utilized (Table I,
//! Fig 3) while millisecond bottlenecks come and go unseen. The paper also
//! quantifies why simply sampling faster is not an option: "about 6% CPU
//! utilization overhead at 100 ms interval and 12% at 20 ms" (§I), which
//! [`sampling_overhead_frac`] models.

use fgbd_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One utilization reading produced by a sampling monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilSample {
    /// End of the sampling window.
    pub at: SimTime,
    /// Mean utilization over the window, in `[0, 1]`.
    pub util: f64,
}

/// A sysstat-like utilization monitor: derives windowed utilization from a
/// cumulative busy integral.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSeries {
    samples: Vec<UtilSample>,
    period: SimDuration,
}

impl UtilizationSeries {
    /// Samples utilization at `period` from cumulative
    /// `(time, busy core-seconds)` readings of a server with `cores` cores.
    ///
    /// `cumulative` must be time-ordered with non-decreasing busy values
    /// (as produced by the simulator's internal sampler); readings are
    /// linearly interpolated onto the sampling grid, so `period` may be any
    /// multiple of — or even unaligned with — the source cadence.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `cores` is zero.
    pub fn sample(
        cumulative: &[(SimTime, f64)],
        cores: u32,
        period: SimDuration,
    ) -> UtilizationSeries {
        assert!(!period.is_zero(), "period must be positive");
        assert!(cores > 0, "cores must be positive");
        let mut samples = Vec::new();
        if cumulative.len() >= 2 {
            let start = cumulative[0].0;
            let end = cumulative[cumulative.len() - 1].0;
            let mut prev_t = start;
            let mut prev_b = cumulative[0].1;
            let mut t = start + period;
            while t <= end {
                let b = interpolate(cumulative, t);
                let util = ((b - prev_b) / (f64::from(cores) * (t - prev_t).as_secs_f64()))
                    .clamp(0.0, 1.0);
                samples.push(UtilSample { at: t, util });
                prev_t = t;
                prev_b = b;
                t += period;
            }
        }
        UtilizationSeries { samples, period }
    }

    /// The readings, time-ordered.
    pub fn samples(&self) -> &[UtilSample] {
        &self.samples
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Mean utilization across readings in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> f64 {
        let w: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.at >= from && s.at < to)
            .map(|s| s.util)
            .collect();
        if w.is_empty() {
            0.0
        } else {
            w.iter().sum::<f64>() / w.len() as f64
        }
    }

    /// The highest reading in `[from, to)`.
    pub fn max_in(&self, from: SimTime, to: SimTime) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.at >= from && s.at < to)
            .map(|s| s.util)
            .fold(0.0, f64::max)
    }

    /// Number of readings.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no readings were produced.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

fn interpolate(cumulative: &[(SimTime, f64)], t: SimTime) -> f64 {
    match cumulative.binary_search_by_key(&t, |&(at, _)| at) {
        Ok(i) => cumulative[i].1,
        Err(i) => {
            if i == 0 {
                cumulative[0].1
            } else if i >= cumulative.len() {
                cumulative[cumulative.len() - 1].1
            } else {
                let (t0, b0) = cumulative[i - 1];
                let (t1, b1) = cumulative[i];
                let f = (t - t0).as_secs_f64() / (t1 - t0).as_secs_f64();
                b0 + (b1 - b0) * f
            }
        }
    }
}

/// The CPU overhead a sampling monitor itself imposes, as a fraction of one
/// core, at the given sampling period.
///
/// A power law fitted to the paper's two anchors (§I): 6% at 100 ms and 12%
/// at 20 ms. Passive network tracing — the paper's alternative — has
/// negligible server-side cost regardless of its effective granularity,
/// which is the argument [`crate`] exists to quantify.
pub fn sampling_overhead_frac(period: SimDuration) -> f64 {
    let p = period.as_secs_f64().max(1e-6);
    // 0.06 * (0.1 / p)^alpha with alpha = ln 2 / ln 5.
    const ALPHA: f64 = 0.430_676_558_073_393_5;
    (0.06 * (0.1 / p).powf(ALPHA)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cumulative_ramp() -> Vec<(SimTime, f64)> {
        // Busy grows at 0.5 core-seconds per second for 10 s (util 50% on 1
        // core), then idles for 10 s.
        let mut v = Vec::new();
        for i in 0..=200u64 {
            let t = SimTime::from_millis(i * 100);
            let busy = if i <= 100 { i as f64 * 0.05 } else { 5.0 };
            v.push((t, busy));
        }
        v
    }

    #[test]
    fn one_second_sampling_sees_means() {
        let s = UtilizationSeries::sample(&cumulative_ramp(), 1, SimDuration::from_secs(1));
        assert_eq!(s.len(), 20);
        assert!((s.samples()[0].util - 0.5).abs() < 1e-9);
        assert!((s.samples()[5].util - 0.5).abs() < 1e-9);
        assert!((s.samples()[15].util - 0.0).abs() < 1e-9);
        assert!((s.mean_in(SimTime::ZERO, SimTime::from_secs(21)) - 0.25).abs() < 1e-9);
        assert!((s.max_in(SimTime::ZERO, SimTime::from_secs(20)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn coarse_sampling_hides_a_transient_spike() {
        // A 100 ms full-utilization spike inside an otherwise idle 2 s.
        let mut cum = Vec::new();
        for i in 0..=200u64 {
            let t = SimTime::from_millis(i * 10);
            let busy = if i < 100 {
                0.0
            } else if i < 110 {
                (i - 100) as f64 * 0.01
            } else {
                0.1
            };
            cum.push((t, busy));
        }
        let fine = UtilizationSeries::sample(&cum, 1, SimDuration::from_millis(50));
        let coarse = UtilizationSeries::sample(&cum, 1, SimDuration::from_secs(1));
        // Fine sampling sees the saturation; 1 s sampling reports <=10%.
        assert!(fine.max_in(SimTime::ZERO, SimTime::from_secs(2)) > 0.99);
        assert!(coarse.max_in(SimTime::ZERO, SimTime::from_secs(2)) < 0.11);
    }

    #[test]
    fn unaligned_period_interpolates() {
        let s = UtilizationSeries::sample(&cumulative_ramp(), 1, SimDuration::from_millis(333));
        assert!(!s.is_empty());
        for w in s.samples() {
            assert!((0.0..=1.0).contains(&w.util));
        }
        assert_eq!(s.period(), SimDuration::from_millis(333));
    }

    #[test]
    fn empty_or_single_reading_yields_nothing() {
        let s = UtilizationSeries::sample(&[], 1, SimDuration::from_secs(1));
        assert!(s.is_empty());
        let s1 = UtilizationSeries::sample(&[(SimTime::ZERO, 0.0)], 1, SimDuration::from_secs(1));
        assert!(s1.is_empty());
    }

    #[test]
    fn overhead_matches_paper_anchors() {
        let at100 = sampling_overhead_frac(SimDuration::from_millis(100));
        let at20 = sampling_overhead_frac(SimDuration::from_millis(20));
        assert!((at100 - 0.06).abs() < 1e-6, "{at100}");
        assert!((at20 - 0.12).abs() < 1e-3, "{at20}");
        // Monotone: faster sampling costs more.
        let at1000 = sampling_overhead_frac(SimDuration::from_secs(1));
        assert!(at1000 < at100);
        assert!(at1000 > 0.0);
        // Clamped at one full core.
        assert_eq!(sampling_overhead_frac(SimDuration::from_micros(1)), 1.0);
    }
}
