//! Service-level-agreement accounting (paper §II-B).
//!
//! The paper motivates transient-bottleneck detection with strict
//! e-commerce SLAs: "experiments at Amazon show that every 100 ms increase
//! in the page load decreases sales by 1%" (its reference \[12\], Kohavi &
//! Longbotham). This module evaluates response-time samples against an SLA
//! and applies that revenue heuristic.

use serde::{Deserialize, Serialize};

/// A bounded-response-time SLA: at least `target_fraction` of requests must
/// complete within `threshold_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// Response-time bound, seconds.
    pub threshold_s: f64,
    /// Required fraction of requests within the bound, in `(0, 1]`.
    pub target_fraction: f64,
}

impl SlaPolicy {
    /// A strict web-facing SLA: 95% of requests within 2 s (the threshold
    /// Fig 2(b) tracks).
    pub fn strict_2s() -> SlaPolicy {
        SlaPolicy {
            threshold_s: 2.0,
            target_fraction: 0.95,
        }
    }

    /// Evaluates the policy over response-time samples (seconds).
    ///
    /// # Panics
    ///
    /// Panics if the policy is malformed (non-positive threshold, target
    /// outside `(0, 1]`).
    pub fn evaluate(&self, response_times_s: &[f64]) -> SlaOutcome {
        assert!(self.threshold_s > 0.0, "threshold must be positive");
        assert!(
            self.target_fraction > 0.0 && self.target_fraction <= 1.0,
            "target must be in (0,1]"
        );
        let total = response_times_s.len();
        let within = response_times_s
            .iter()
            .filter(|&&rt| rt <= self.threshold_s)
            .count();
        let achieved = if total == 0 {
            1.0
        } else {
            within as f64 / total as f64
        };
        SlaOutcome {
            achieved_fraction: achieved,
            violated: achieved < self.target_fraction,
            total,
            violations: total - within,
        }
    }
}

/// The result of evaluating an [`SlaPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaOutcome {
    /// Fraction of requests within the bound.
    pub achieved_fraction: f64,
    /// `true` if the policy's target was missed.
    pub violated: bool,
    /// Total requests evaluated.
    pub total: usize,
    /// Requests exceeding the bound.
    pub violations: usize,
}

/// The Kohavi–Longbotham revenue heuristic: each 100 ms of additional mean
/// page latency costs ~1% of sales. Returns the estimated *fractional*
/// revenue loss of `mean_rt_s` relative to `baseline_rt_s` (zero when
/// latency improved).
///
/// # Panics
///
/// Panics if either latency is negative.
pub fn revenue_loss_fraction(baseline_rt_s: f64, mean_rt_s: f64) -> f64 {
    assert!(
        baseline_rt_s >= 0.0 && mean_rt_s >= 0.0,
        "latencies must be non-negative"
    );
    let extra_ms = (mean_rt_s - baseline_rt_s).max(0.0) * 1e3;
    (extra_ms / 100.0 * 0.01).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_counts_violations() {
        let policy = SlaPolicy {
            threshold_s: 1.0,
            target_fraction: 0.9,
        };
        let out = policy.evaluate(&[0.1, 0.2, 0.5, 1.5, 3.0]);
        assert_eq!(out.total, 5);
        assert_eq!(out.violations, 2);
        assert!((out.achieved_fraction - 0.6).abs() < 1e-12);
        assert!(out.violated);
    }

    #[test]
    fn passing_workload_is_not_violated() {
        let policy = SlaPolicy::strict_2s();
        let rts = vec![0.05; 100];
        let out = policy.evaluate(&rts);
        assert!(!out.violated);
        assert_eq!(out.violations, 0);
        assert_eq!(out.achieved_fraction, 1.0);
    }

    #[test]
    fn empty_sample_passes_vacuously() {
        let out = SlaPolicy::strict_2s().evaluate(&[]);
        assert!(!out.violated);
        assert_eq!(out.total, 0);
    }

    #[test]
    fn boundary_value_is_within_sla() {
        let policy = SlaPolicy {
            threshold_s: 2.0,
            target_fraction: 1.0,
        };
        let out = policy.evaluate(&[2.0]);
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn revenue_heuristic_matches_paper_citation() {
        // +100 ms -> 1% loss.
        assert!((revenue_loss_fraction(0.1, 0.2) - 0.01).abs() < 1e-12);
        // +1 s -> 10%.
        assert!((revenue_loss_fraction(0.5, 1.5) - 0.10).abs() < 1e-12);
        // Improvements cost nothing; losses cap at 100%.
        assert_eq!(revenue_loss_fraction(1.0, 0.5), 0.0);
        assert_eq!(revenue_loss_fraction(0.0, 50.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn revenue_heuristic_rejects_negative() {
        revenue_loss_fraction(-1.0, 0.5);
    }
}
