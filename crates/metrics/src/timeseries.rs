//! Small time-series utilities used across the harness: smoothing,
//! downsampling, and rate derivation from cumulative counters.

/// Centered moving average with the given half-width; edges use the
/// available neighbourhood. NaN inputs are skipped (an all-NaN
/// neighbourhood yields NaN).
pub fn moving_average(xs: &[f64], half_width: usize) -> Vec<f64> {
    (0..xs.len())
        .map(|i| {
            let a = i.saturating_sub(half_width);
            let b = (i + half_width + 1).min(xs.len());
            let window: Vec<f64> = xs[a..b].iter().copied().filter(|v| v.is_finite()).collect();
            if window.is_empty() {
                f64::NAN
            } else {
                window.iter().sum::<f64>() / window.len() as f64
            }
        })
        .collect()
}

/// Downsamples by averaging consecutive groups of `k`; a trailing partial
/// group is averaged over its actual size.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn downsample_mean(xs: &[f64], k: usize) -> Vec<f64> {
    assert!(k > 0, "group size must be positive");
    xs.chunks(k)
        .map(|c| {
            let vals: Vec<f64> = c.iter().copied().filter(|v| v.is_finite()).collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

/// Derives per-step rates from a cumulative counter:
/// `rates[i] = cumulative[i+1] - cumulative[i]`, clamped at zero (counters
/// are monotone; tiny negative diffs are float noise).
pub fn diff_rates(cumulative: &[f64]) -> Vec<f64> {
    cumulative
        .windows(2)
        .map(|w| (w[1] - w[0]).max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_smooths_and_handles_edges() {
        let xs = [0.0, 0.0, 10.0, 0.0, 0.0];
        let sm = moving_average(&xs, 1);
        assert_eq!(sm.len(), 5);
        assert!((sm[2] - 10.0 / 3.0).abs() < 1e-12);
        assert!((sm[0] - 0.0).abs() < 1e-12);
        // Width 0 is the identity.
        assert_eq!(moving_average(&xs, 0), xs.to_vec());
    }

    #[test]
    fn moving_average_skips_nan() {
        let xs = [1.0, f64::NAN, 3.0];
        let sm = moving_average(&xs, 1);
        assert!((sm[1] - 2.0).abs() < 1e-12);
        let all_nan = moving_average(&[f64::NAN, f64::NAN], 0);
        assert!(all_nan.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn downsample_means_groups() {
        let xs = [1.0, 3.0, 5.0, 7.0, 9.0];
        let d = downsample_mean(&xs, 2);
        assert_eq!(d.len(), 3);
        assert!((d[0] - 2.0).abs() < 1e-12);
        assert!((d[1] - 6.0).abs() < 1e-12);
        assert!((d[2] - 9.0).abs() < 1e-12); // partial tail group
    }

    #[test]
    fn diff_rates_clamps_noise() {
        let cum = [0.0, 1.0, 3.0, 2.999_999_9, 5.0];
        let r = diff_rates(&cum);
        assert_eq!(r.len(), 4);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 2.0).abs() < 1e-12);
        assert_eq!(r[2], 0.0); // clamped
        assert!(r[3] > 1.9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn downsample_rejects_zero_group() {
        downsample_mean(&[1.0], 0);
    }
}
