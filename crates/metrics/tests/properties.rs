//! Property-based tests for the monitoring baseline.

use fgbd_des::{SimDuration, SimTime};
use fgbd_metrics::{sampling_overhead_frac, Histogram, SlaPolicy, UtilizationSeries};
use proptest::prelude::*;

proptest! {
    /// Histogram totals are conserved: every recorded value lands in
    /// exactly one bucket or the underflow counter.
    #[test]
    fn histogram_conserves_mass(values in prop::collection::vec(-10.0f64..100.0, 0..300)) {
        let mut h = Histogram::linear(0.0, 50.0, 10);
        h.record_all(values.iter().copied());
        let bucketed: u64 = h.buckets().iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(bucketed + h.underflow(), h.total());
        prop_assert_eq!(h.total() as usize, values.len());
    }

    /// `frac_at_least` is monotone non-increasing in the threshold and
    /// bounded by [0, 1].
    #[test]
    fn frac_at_least_is_monotone(values in prop::collection::vec(0.0f64..10.0, 1..200)) {
        let mut h = Histogram::fig2c_edges();
        h.record_all(values.iter().copied());
        let thresholds = [0.1, 0.5, 1.0, 2.0, 3.0, 4.0];
        let fracs: Vec<f64> = thresholds.iter().map(|&t| h.frac_at_least(t)).collect();
        for w in fracs.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for f in fracs {
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    /// Utilization samples are always in [0, 1] and the series mean over
    /// the full range matches the end-to-end busy fraction.
    #[test]
    fn utilization_sampling_is_consistent(
        rates in prop::collection::vec(0.0f64..1.0, 2..40),
    ) {
        // Build a cumulative busy curve from per-100ms utilization rates.
        let mut cumulative = vec![(SimTime::ZERO, 0.0)];
        let mut busy = 0.0;
        for (i, r) in rates.iter().enumerate() {
            busy += r * 0.1;
            cumulative.push((SimTime::from_millis((i as u64 + 1) * 100), busy));
        }
        let series = UtilizationSeries::sample(&cumulative, 1, SimDuration::from_millis(100));
        prop_assert_eq!(series.len(), rates.len());
        for (s, &r) in series.samples().iter().zip(&rates) {
            prop_assert!((s.util - r).abs() < 1e-9);
        }
        // Aggregate consistency.
        let span_secs = rates.len() as f64 * 0.1;
        let expected_mean = busy / span_secs;
        let got = series.mean_in(SimTime::ZERO, SimTime::from_secs(1_000));
        prop_assert!((got - expected_mean).abs() < 1e-9);
    }

    /// The overhead model is monotone: faster sampling always costs at
    /// least as much CPU.
    #[test]
    fn overhead_is_monotone(a_ms in 1u64..10_000, b_ms in 1u64..10_000) {
        let (fast, slow) = if a_ms < b_ms { (a_ms, b_ms) } else { (b_ms, a_ms) };
        let of = sampling_overhead_frac(SimDuration::from_millis(fast));
        let os = sampling_overhead_frac(SimDuration::from_millis(slow));
        prop_assert!(of >= os - 1e-12);
        prop_assert!((0.0..=1.0).contains(&of));
    }

    /// SLA evaluation: violations + within == total, and the outcome flag
    /// agrees with the achieved fraction.
    #[test]
    fn sla_accounting_is_consistent(
        rts in prop::collection::vec(0.0f64..10.0, 0..200),
        threshold in 0.1f64..5.0,
        target in 0.01f64..1.0,
    ) {
        let policy = SlaPolicy { threshold_s: threshold, target_fraction: target };
        let out = policy.evaluate(&rts);
        prop_assert_eq!(out.total, rts.len());
        prop_assert!(out.violations <= out.total);
        let within = out.total - out.violations;
        if out.total > 0 {
            prop_assert!((out.achieved_fraction - within as f64 / out.total as f64).abs() < 1e-12);
        }
        prop_assert_eq!(out.violated, out.achieved_fraction < target);
    }
}
