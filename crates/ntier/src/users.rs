//! Compact per-user state for large closed-loop populations.
//!
//! The simulator keeps one record per emulated user for the whole run. At
//! the paper's scale (thousands of users) any layout works; at fleet scale
//! (`users: 10^6`, see `million_users` in `fgbd-repro`) the user table is
//! the largest long-lived allocation, so it is stored struct-of-arrays
//! with the transaction start time and class packed into one word:
//!
//! * `txn` — current ground-truth transaction id (8 B);
//! * `started_class` — start timestamp (µs, high 48 bits) packed with the
//!   request class (low 16 bits) — together 8 B where the array-of-structs
//!   layout spent 16 B plus padding;
//! * `retries` — connection-refusal retransmissions this transaction (4 B).
//!
//! 20 B/user versus 24 B for the previous `Vec<UserState>`, with no
//! behavioral difference: the packing is lossless (48 bits of microseconds
//! is ~8.9 simulated years, far past any horizon) and every accessor
//! round-trips exactly.

use fgbd_des::SimTime;

/// Sentinel class for users who have not issued any interaction yet.
pub const NO_CLASS: u16 = u16::MAX;

const CLASS_BITS: u32 = 16;
/// Largest packable timestamp: 2^48 µs ≈ 8.9 simulated years.
const MAX_PACKED_MICROS: u64 = (1 << (64 - CLASS_BITS)) - 1;

/// Struct-of-arrays table of per-user transaction state.
#[derive(Debug)]
pub struct UserTable {
    txn: Vec<u64>,
    /// `started_micros << 16 | class`.
    started_class: Vec<u64>,
    retries: Vec<u32>,
}

impl UserTable {
    /// A table of `n` users, all idle: no transaction, class [`NO_CLASS`],
    /// zero start time and retries.
    pub fn new(n: usize) -> UserTable {
        UserTable {
            txn: vec![0; n],
            started_class: vec![u64::from(NO_CLASS); n],
            retries: vec![0; n],
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.txn.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.txn.is_empty()
    }

    /// Current transaction id of `user`.
    pub fn txn(&self, user: u32) -> u64 {
        self.txn[user as usize]
    }

    /// Current request class of `user` ([`NO_CLASS`] before the first
    /// transaction).
    pub fn class(&self, user: u32) -> u16 {
        (self.started_class[user as usize] & ((1 << CLASS_BITS) - 1)) as u16
    }

    /// Start time of `user`'s current transaction.
    pub fn started(&self, user: u32) -> SimTime {
        SimTime::from_micros(self.started_class[user as usize] >> CLASS_BITS)
    }

    /// Retransmissions of `user`'s current transaction so far.
    pub fn retries(&self, user: u32) -> u32 {
        self.retries[user as usize]
    }

    /// Begins a new transaction for `user`, resetting its retry count.
    ///
    /// # Panics
    ///
    /// Panics if `now` exceeds the packable range (~8.9 simulated years)
    /// — far past any configured horizon, but the packing must never be
    /// silently lossy.
    pub fn start(&mut self, user: u32, txn: u64, class: u16, now: SimTime) {
        let micros = now.as_micros();
        assert!(
            micros <= MAX_PACKED_MICROS,
            "transaction start {micros}µs overflows the packed user table"
        );
        self.txn[user as usize] = txn;
        self.started_class[user as usize] = micros << CLASS_BITS | u64::from(class);
        self.retries[user as usize] = 0;
    }

    /// Counts one connection refusal against `user`'s current transaction.
    pub fn bump_retries(&mut self, user: u32) {
        self.retries[user as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_idle() {
        let t = UserTable::new(3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        for u in 0..3 {
            assert_eq!(t.txn(u), 0);
            assert_eq!(t.class(u), NO_CLASS);
            assert_eq!(t.started(u), SimTime::ZERO);
            assert_eq!(t.retries(u), 0);
        }
    }

    #[test]
    fn packing_round_trips_extremes() {
        let mut t = UserTable::new(2);
        t.start(
            0,
            u64::MAX,
            NO_CLASS - 1,
            SimTime::from_micros(MAX_PACKED_MICROS),
        );
        t.start(1, 7, 0, SimTime::from_micros(1));
        t.bump_retries(1);
        t.bump_retries(1);
        assert_eq!(t.txn(0), u64::MAX);
        assert_eq!(t.class(0), NO_CLASS - 1);
        assert_eq!(t.started(0), SimTime::from_micros(MAX_PACKED_MICROS));
        assert_eq!(t.retries(0), 0);
        assert_eq!(t.class(1), 0);
        assert_eq!(t.started(1), SimTime::from_micros(1));
        assert_eq!(t.retries(1), 2);
    }

    #[test]
    fn start_resets_retries() {
        let mut t = UserTable::new(1);
        t.start(0, 1, 2, SimTime::from_micros(10));
        t.bump_retries(0);
        assert_eq!(t.retries(0), 1);
        t.start(0, 2, 3, SimTime::from_micros(20));
        assert_eq!(t.retries(0), 0);
        assert_eq!(t.txn(0), 2);
    }

    #[test]
    #[should_panic(expected = "overflows the packed user table")]
    fn unpackable_start_time_panics() {
        let mut t = UserTable::new(1);
        t.start(0, 1, 0, SimTime::from_micros(MAX_PACKED_MICROS + 1));
    }
}
