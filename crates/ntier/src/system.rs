//! The n-tier system simulator: a single [`Actor`] holding every server,
//! client, and transient-event model.
//!
//! Mechanics reproduced from the paper's testbed:
//!
//! * Multi-core **processor-sharing** servers with finite worker-thread
//!   pools; a thread is held for the whole visit, including while blocked on
//!   synchronous downstream calls — the push-back path that propagates
//!   transient congestion upstream.
//! * **Admission**: the web tier has a finite listen backlog; when threads
//!   and backlog are full, the connection is refused and the client
//!   retransmits after 3 s (footnote 1 of the paper — the source of the >3 s
//!   hump in the bi-modal response-time distribution of Fig 2c).
//! * **JVM GC** freezes (app tier) and the **SpeedStep governor** (db tier)
//!   from [`crate::gc`] / [`crate::dvfs`].
//! * A **passive tap** records every interaction message with microsecond
//!   timestamps into a [`TraceLog`]; requests are stamped on arrival at the
//!   destination, responses on departure from the source, so span residence
//!   equals true server residence.

use std::collections::VecDeque;

use fgbd_des::{Actor, Dice, JobId, PsIntegrator, Scheduler, SimDuration, SimTime, Simulation};
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, StreamSink, TraceLog, TxnId,
};

use crate::arena::Slab;
use crate::class::RequestClass;
use crate::config::SystemConfig;
use crate::dvfs::{DvfsState, PStateSample};
use crate::gc::{GcEvent, GcState};
use crate::result::{CpuSample, RunResult, ServerInfo, TxnSample};
use crate::users::{UserTable, NO_CLASS};

/// Who is waiting for a visit's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parent {
    /// An emulated user (the visit is a transaction root).
    User(u32),
    /// A visit on an upstream server, blocked on this call.
    Visit {
        /// Upstream server index.
        server: usize,
        /// Upstream visit id.
        visit: u64,
    },
}

/// The payload of a request message in flight.
#[derive(Debug, Clone, Copy)]
pub struct NewRequest {
    txn: u64,
    class: u16,
    parent: Parent,
    conn: u32,
}

/// One step of a visit's lifecycle at a server.
#[derive(Debug, Clone, Copy)]
enum Segment {
    /// CPU work, in megacycles.
    Cpu(f64),
    /// Non-CPU wait (I/O, row fetch): the thread is held but no core is
    /// used.
    Wait(SimDuration),
    /// A synchronous call to the next tier.
    Call,
}

/// Segment capacity held inline in a [`SegVec`]. The longest plan is an app
/// visit with `q` calls interleaved with `q + 1` CPU slices (`2q + 1`
/// segments); the paper's RUBBoS mix tops out at `q = 8` and calibration
/// keeps `q` near that, so 24 covers every realistic plan with headroom.
const SEGS_INLINE: usize = 24;

/// Inline small-vector of [`Segment`]s: visit plans live inside the `Visit`
/// struct up to [`SEGS_INLINE`] entries and only spill to the heap for
/// pathological configurations, so building a plan per request allocates
/// nothing at steady state.
///
/// Storage is packed rather than `[Segment; SEGS_INLINE]`: a segment's
/// payload is one `u64` word (`f64` megacycle bits for CPU, microseconds
/// for waits) plus a 2-bit kind code, so the inline plan is 200 bytes
/// instead of 384. `Visit` values move by value through the slab on every
/// arrival and completion, which makes plan size directly proportional to
/// hot-loop memory traffic. The packing is exact — `f64::to_bits` /
/// `from_bits` round-trips — so demands are bit-identical to the unpacked
/// representation.
#[derive(Debug)]
struct SegVec {
    len: u32,
    /// 2-bit kind code per inline segment (0 = Call, 1 = Cpu, 2 = Wait).
    kinds: u64,
    /// Payload word per inline segment; meaning depends on the kind code.
    vals: [u64; SEGS_INLINE],
    spill: Vec<Segment>,
}

const _: () = assert!(2 * SEGS_INLINE <= 64, "kind codes must fit one word");

impl SegVec {
    fn new() -> SegVec {
        SegVec {
            len: 0,
            kinds: 0,
            vals: [0; SEGS_INLINE],
            spill: Vec::new(),
        }
    }

    fn push(&mut self, seg: Segment) {
        let i = self.len as usize;
        if i < SEGS_INLINE {
            let (code, val) = match seg {
                Segment::Call => (0u64, 0),
                Segment::Cpu(mc) => (1, mc.to_bits()),
                Segment::Wait(d) => (2, d.as_micros()),
            };
            self.kinds |= code << (2 * i);
            self.vals[i] = val;
        } else {
            self.spill.push(seg);
        }
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn get(&self, i: usize) -> Segment {
        assert!(i < self.len(), "segment index {i} out of bounds");
        if i < SEGS_INLINE {
            match (self.kinds >> (2 * i)) & 0b11 {
                0 => Segment::Call,
                1 => Segment::Cpu(f64::from_bits(self.vals[i])),
                2 => Segment::Wait(SimDuration::from_micros(self.vals[i])),
                code => unreachable!("unknown segment code {code}"),
            }
        } else {
            self.spill[i - SEGS_INLINE]
        }
    }

    #[cfg(test)]
    fn iter(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

#[derive(Debug)]
struct Visit {
    txn: u64,
    class: u16,
    parent: Parent,
    conn: u32,
    segs: SegVec,
    seg: usize,
}

/// Tier roles used to pick demands from a [`RequestClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Web,
    App,
    Middleware,
    Db,
}

fn role_of(tier: usize, tiers: usize) -> Role {
    if tier + 1 == tiers {
        Role::Db
    } else if tier == 0 {
        Role::Web
    } else if tier == 1 {
        Role::App
    } else {
        Role::Middleware
    }
}

#[derive(Debug, Default)]
struct ConnPool {
    base: u32,
    free: Vec<u32>,
    next: u32,
}

impl ConnPool {
    fn alloc(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let c = self.base + self.next;
            self.next += 1;
            c
        })
    }

    fn release(&mut self, conn: u32) {
        debug_assert!(conn >= self.base && conn < self.base + self.next);
        self.free.push(conn);
    }
}

struct Server {
    name: String,
    tier: usize,
    node: NodeId,
    cores: u32,
    base_mhz: f64,
    monitor_overhead: f64,
    max_threads: usize,
    backlog: usize,
    ps: PsIntegrator,
    threads_busy: usize,
    pending: VecDeque<u64>,
    visits: Slab<Visit>,
    cpu_gen: u64,
    /// Absolute due time of the armed `CpuDone` event, if one is live.
    cpu_evt: SimTime,
    /// FIFO ticket of the armed `CpuDone` event, re-stamped on every reuse
    /// so same-microsecond ordering matches an always-reschedule run.
    cpu_seq: u64,
    /// `true` while a `CpuDone` carrying the current `cpu_gen` sits in the
    /// event queue — the completion token that lets `reschedule_cpu` skip
    /// the bump-and-reschedule when the predicted time is unchanged.
    cpu_sched_live: bool,
    /// `CpuDone` events that still went stale (the predicted completion
    /// time moved, invalidating the armed event). Flushed to
    /// `des.cpu_done_stale`.
    cpu_stale: u64,
    /// Reschedules avoided because the armed `CpuDone` was already due at
    /// the recomputed time. Flushed to `des.cpu_done_reuse`.
    cpu_reuse: u64,
    gc: Option<GcState>,
    gc_stw_end: SimTime,
    /// Completed GC CPU burn, core-seconds.
    gc_busy_full: f64,
    /// In-progress GC phase: (start, cpu fraction).
    gc_active: Option<(SimTime, f64)>,
    dvfs: Option<DvfsState>,
    rr: usize,
    rx_bytes: u64,
    tx_bytes: u64,
    completed: u64,
    dice: Dice,
}

impl Server {
    fn effective_mhz(&self) -> f64 {
        let clock = self.dvfs.as_ref().map_or(self.base_mhz, DvfsState::mhz);
        let gc_tax = match (&self.gc, self.gc_active) {
            (Some(gc), Some((_, frac))) if frac < 1.0 => gc.config.concurrent_tax,
            _ => 0.0,
        };
        // A sampling daemon steals a fixed fraction of one core.
        let monitor_tax = self.monitor_overhead / f64::from(self.cores);
        clock * (1.0 - gc_tax) * (1.0 - monitor_tax)
    }

    /// Cumulative busy core-seconds (request progress + GC burn) as of
    /// `now`.
    fn busy_core_seconds(&mut self, now: SimTime) -> f64 {
        let mut busy = self.ps.busy_core_seconds(now) + self.gc_busy_full;
        if let Some((start, frac)) = self.gc_active {
            busy += f64::from(self.cores) * frac * now.saturating_since(start).as_secs_f64();
        }
        busy
    }

    fn has_thread_capacity(&self) -> bool {
        self.threads_busy < self.max_threads
    }
}

/// Events of the n-tier system.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Kick-off: schedules initial thinks, governor ticks and samplers.
    Boot,
    /// A user's think timer expired (subject to burst thinning).
    Think(u32),
    /// A refused connection's retransmission timer expired.
    Retry(u32),
    /// A request message reached a server.
    Arrive {
        /// Destination server index.
        server: usize,
        /// Message payload.
        req: NewRequest,
    },
    /// A response message reached the upstream visit waiting on it.
    RespArrive {
        /// Upstream server index.
        server: usize,
        /// Upstream visit id.
        visit: u64,
        /// Connection-pool index of the link the call used.
        link: u32,
        /// Connection to return to that pool.
        conn: u32,
    },
    /// A response reached the client.
    ClientResp(u32),
    /// Processor-sharing completion check (stale unless `gen` matches).
    CpuDone {
        /// Server index.
        server: usize,
        /// Generation stamp.
        gen: u64,
    },
    /// A non-CPU wait segment finished.
    WaitDone {
        /// Server index.
        server: usize,
        /// Visit id.
        visit: u64,
    },
    /// End of a stop-the-world GC pause.
    GcPauseEnd(usize),
    /// End of a concurrent GC background cycle.
    GcCycleEnd(usize),
    /// DVFS governor control-period tick.
    GovTick(usize),
    /// CPU-busy sampler tick.
    CpuSample,
    /// Burst-modulator state flip.
    BurstToggle,
}

/// The complete simulated system.
pub struct NTierSystem {
    cfg: SystemConfig,
    servers: Vec<Server>,
    tiers: Vec<Vec<usize>>,
    users: UserTable,
    conn_pools: Vec<ConnPool>,
    /// Dense `src * n_servers + dst → conn-pool index` lookup (`LINK_NONE`
    /// for non-adjacent pairs). Server counts are single digits, so the
    /// flat table is tiny and the hot-path lookup is one multiply-add.
    links: Vec<u32>,
    burst_factor: f64,
    next_txn: u64,
    log: TraceLog,
    /// When set, capture records stream through this sink instead of
    /// accumulating in `log` (see [`NTierSystem::run_with_tap`]); the
    /// returned [`RunResult::log`] then stays empty.
    tap: Option<StreamSink>,
    /// Like `tap`, but an arbitrary callback (see
    /// [`NTierSystem::run_with_record_tap`]) — the hook the chunked capture
    /// writer uses to spill records to disk without materializing a log.
    record_tap: Option<Box<dyn FnMut(MsgRecord) + Send>>,
    txns: Vec<TxnSample>,
    gc_events: Vec<GcEvent>,
    pstate_log: Vec<PStateSample>,
    cpu_busy: Vec<Vec<CpuSample>>,
    retransmissions: u64,
    workload_dice: Dice,
    burst_dice: Dice,
    class_weights: Vec<f64>,
    /// Reusable completion-batch buffer for the `CpuDone` handler, so the
    /// steady-state event loop never allocates per event.
    cpu_done: Vec<JobId>,
}

const CLIENT_NODE: NodeId = NodeId(0);
const POOL_CONN_BASE: u32 = 1 << 20;
/// `links` entry for a (src, dst) pair with no connection pool.
const LINK_NONE: u32 = u32::MAX;

/// The node table a run with this configuration will record: the client
/// farm at node 0 followed by every server in topology order. Exposed so
/// streaming capture writers — which must emit the node table before the
/// first record arrives — can build it without constructing the system.
pub fn node_metas(cfg: &SystemConfig) -> Vec<NodeMeta> {
    let mut nodes = vec![NodeMeta {
        id: CLIENT_NODE,
        name: "clients".to_string(),
        kind: NodeKind::Client,
        tier: None,
    }];
    for spec in cfg.topology.iter().flatten() {
        nodes.push(NodeMeta {
            id: NodeId(nodes.len() as u16),
            name: spec.name.clone(),
            kind: NodeKind::Server,
            tier: Some(spec.tier as u8),
        });
    }
    nodes
}

impl NTierSystem {
    /// Builds the system from a validated configuration.
    pub fn new(cfg: SystemConfig) -> NTierSystem {
        cfg.validate();
        let mut root = Dice::seed(cfg.seed);
        let workload_dice = root.fork(1);
        let burst_dice = root.fork(2);

        let n_classes = cfg.mix.classes().len();
        let mut servers = Vec::new();
        let mut tiers = Vec::new();
        let nodes = node_metas(&cfg);
        for tier_specs in &cfg.topology {
            let mut tier_idx = Vec::new();
            for spec in tier_specs {
                let idx = servers.len();
                let node = NodeId((idx + 1) as u16);
                debug_assert_eq!(nodes[idx + 1].id, node);
                servers.push(Server {
                    name: spec.name.clone(),
                    tier: spec.tier,
                    node,
                    cores: spec.cores,
                    base_mhz: spec.base_mhz,
                    monitor_overhead: spec.monitor_overhead,
                    max_threads: spec.max_threads,
                    backlog: spec.backlog,
                    // One PS lane per request class: same-class demands are
                    // near-deterministic, so class lanes maximize the
                    // monotone-append hit rate (see `fgbd_des::ps`).
                    ps: PsIntegrator::with_lanes(
                        spec.dvfs.map_or(spec.base_mhz, |d| {
                            crate::dvfs::XEON_PSTATES[d.start_index].mhz
                        }) * (1.0 - spec.monitor_overhead / f64::from(spec.cores)),
                        spec.cores,
                        n_classes,
                    ),
                    threads_busy: 0,
                    pending: VecDeque::with_capacity(spec.backlog + 1),
                    // Live visits are bounded by in-service threads plus the
                    // accept queue; pre-sizing to that bound means the slab
                    // never grows mid-run.
                    visits: Slab::with_capacity(spec.max_threads + spec.backlog + 1),
                    cpu_gen: 0,
                    cpu_evt: SimTime::ZERO,
                    cpu_seq: 0,
                    cpu_sched_live: false,
                    cpu_stale: 0,
                    cpu_reuse: 0,
                    gc: spec.gc.map(GcState::new),
                    gc_stw_end: SimTime::ZERO,
                    gc_busy_full: 0.0,
                    gc_active: None,
                    dvfs: spec.dvfs.map(DvfsState::new),
                    rr: 0,
                    rx_bytes: 0,
                    tx_bytes: 0,
                    completed: 0,
                    dice: root.fork(100 + idx as u64),
                });
                tier_idx.push(idx);
            }
            tiers.push(tier_idx);
        }

        // Connection pools for every directed (server, next-tier server)
        // pair.
        let mut conn_pools = Vec::new();
        let mut links = vec![LINK_NONE; servers.len() * servers.len()];
        for t in 0..tiers.len().saturating_sub(1) {
            for &s in &tiers[t] {
                for &d in &tiers[t + 1] {
                    let li = conn_pools.len();
                    links[s * servers.len() + d] = li as u32;
                    conn_pools.push(ConnPool {
                        base: POOL_CONN_BASE * (li as u32 + 1),
                        free: Vec::with_capacity(16),
                        next: 0,
                    });
                }
            }
        }

        let class_weights = cfg.mix.weights();
        let n_servers = servers.len();
        NTierSystem {
            servers,
            tiers,
            users: UserTable::new(cfg.users as usize),
            conn_pools,
            links,
            burst_factor: 1.0,
            next_txn: 0,
            log: TraceLog::new(nodes),
            tap: None,
            record_tap: None,
            txns: Vec::new(),
            gc_events: Vec::new(),
            pstate_log: Vec::new(),
            cpu_busy: vec![Vec::new(); n_servers],
            retransmissions: 0,
            workload_dice,
            burst_dice,
            class_weights,
            cpu_done: Vec::new(),
            cfg,
        }
    }

    /// Runs the configured scenario to completion and returns its outputs.
    pub fn run(cfg: SystemConfig) -> RunResult {
        let horizon = SimTime::ZERO + cfg.warmup + cfg.duration;
        let mut sim = Simulation::new(NTierSystem::new(cfg));
        sim.prime(SimTime::ZERO, Ev::Boot);
        sim.run_until(horizon);
        sim.into_actor().into_result(horizon)
    }

    /// Like [`NTierSystem::run`], but capture records are streamed through
    /// `sink` as they happen instead of being materialized in
    /// [`RunResult::log`] (which comes back empty). The sink is dropped —
    /// ending the stream — before this returns, so the caller can join
    /// the consuming `fgbd_trace::SpanStream` immediately afterwards.
    pub fn run_with_tap(cfg: SystemConfig, sink: StreamSink) -> RunResult {
        let horizon = SimTime::ZERO + cfg.warmup + cfg.duration;
        let mut system = NTierSystem::new(cfg);
        system.tap = Some(sink);
        let mut sim = Simulation::new(system);
        sim.prime(SimTime::ZERO, Ev::Boot);
        sim.run_until(horizon);
        sim.into_actor().into_result(horizon)
    }

    /// Like [`NTierSystem::run`], but every capture record is handed to
    /// `tap` instead of being materialized in [`RunResult::log`] (which
    /// comes back empty). Unlike [`NTierSystem::run_with_tap`] the callback
    /// runs inline on the simulation thread — it is the hook for writers
    /// that must observe records in strict capture order with no channel in
    /// between, e.g. the chunked capture writer spilling a million-user run
    /// to disk in flat memory.
    pub fn run_with_record_tap(
        cfg: SystemConfig,
        tap: impl FnMut(MsgRecord) + Send + 'static,
    ) -> RunResult {
        let horizon = SimTime::ZERO + cfg.warmup + cfg.duration;
        let mut system = NTierSystem::new(cfg);
        system.record_tap = Some(Box::new(tap));
        let mut sim = Simulation::new(system);
        sim.prime(SimTime::ZERO, Ev::Boot);
        sim.run_until(horizon);
        sim.into_actor().into_result(horizon)
    }

    /// Finalizes the run outputs.
    pub fn into_result(mut self, horizon: SimTime) -> RunResult {
        // End the record stream first: the tap's drop flushes its last
        // partial chunk and closes the channel.
        self.tap = None;
        self.record_tap = None;
        // Completion-token accounting, accumulated in plain per-server
        // fields (the event loop is too hot for per-op atomics) and flushed
        // here. Retained: zero avoided churn would itself be a finding.
        // Guarded like every retained flush — with the kill switch off even
        // registration must not leave a trace in snapshot deltas.
        if fgbd_obsv::enabled() {
            let stale: u64 = self.servers.iter().map(|s| s.cpu_stale).sum();
            let reuse: u64 = self.servers.iter().map(|s| s.cpu_reuse).sum();
            fgbd_obsv::metrics::counter_retained("des.cpu_done_stale").add(stale);
            fgbd_obsv::metrics::counter_retained("des.cpu_done_reuse").add(reuse);
        }
        RunResult {
            servers: self
                .servers
                .iter()
                .map(|s| ServerInfo {
                    name: s.name.clone(),
                    tier: s.tier,
                    node: s.node,
                    cores: s.cores,
                    max_threads: s.max_threads,
                })
                .collect(),
            log: self.log,
            txns: self.txns,
            gc_events: self.gc_events,
            pstate_log: self.pstate_log,
            cpu_busy: self.cpu_busy,
            net_bytes: self
                .servers
                .iter()
                .map(|s| (s.rx_bytes, s.tx_bytes))
                .collect(),
            completed_visits: self.servers.iter().map(|s| s.completed).collect(),
            retransmissions: self.retransmissions,
            warmup_end: SimTime::ZERO + self.cfg.warmup,
            horizon,
        }
    }

    fn think_delay(&mut self) -> SimDuration {
        let mean = self.cfg.think_time.as_secs_f64();
        let env = if self.cfg.burst.enabled {
            mean / self.cfg.burst.factor_max
        } else {
            mean
        };
        SimDuration::from_secs_f64(self.workload_dice.exp(env))
    }

    fn sample_class(&mut self, user: u32) -> u16 {
        // Sticky sessions: repeating the previous class with probability p
        // (and redrawing from the mix otherwise) keeps the stationary class
        // distribution identical to the mix weights.
        let p = self.cfg.session_stickiness;
        if p > 0.0 && self.workload_dice.chance(p) {
            let prev = self.users.class(user);
            // NO_CLASS marks a user with no previous interaction.
            if prev != NO_CLASS && self.class_weights[usize::from(prev)] > 0.0 {
                return prev;
            }
        }
        self.workload_dice.weighted(&self.class_weights) as u16
    }

    fn sample_segments(&mut self, now: SimTime, server: usize, class_id: u16) -> SegVec {
        let tiers = self.tiers.len();
        let tier = self.servers[server].tier;
        // Service-time drift (paper §III-B): demands grow linearly with
        // simulated time, e.g. from shifting data selectivity.
        let drift = 1.0 + self.cfg.demand_drift_per_hour * (now.as_secs_f64() / 3_600.0);
        let class: &RequestClass = self.cfg.mix.class(class_id);
        let (web_mc, app_mc, mw_mc, db_mc, queries, db_wait_s, cv) = (
            class.web_demand_mc,
            class.app_demand_mc,
            class.mw_demand_mc,
            class.db_demand_mc,
            class.queries,
            class.db_wait_s,
            class.demand_cv,
        );
        let dice = &mut self.servers[server].dice;
        let mut sample = |mean: f64| dice.lognormal_mean_cv((mean * drift).max(1e-6), cv);
        let mut segs = SegVec::new();
        match role_of(tier, tiers) {
            Role::Web => {
                let d = sample(web_mc);
                segs.push(Segment::Cpu(d / 2.0));
                segs.push(Segment::Call);
                segs.push(Segment::Cpu(d / 2.0));
            }
            Role::App => {
                let d = sample(app_mc);
                let q = queries;
                if q == 0 {
                    segs.push(Segment::Cpu(d));
                } else {
                    let slice = d / f64::from(q + 1);
                    segs.push(Segment::Cpu(slice));
                    for _ in 0..q {
                        segs.push(Segment::Call);
                        segs.push(Segment::Cpu(slice));
                    }
                }
            }
            Role::Middleware => {
                let d = sample(mw_mc);
                segs.push(Segment::Cpu(d / 2.0));
                segs.push(Segment::Call);
                segs.push(Segment::Cpu(d / 2.0));
            }
            Role::Db => {
                let d = sample(db_mc);
                let wait = if db_wait_s > 0.0 {
                    SimDuration::from_secs_f64(sample(db_wait_s))
                } else {
                    SimDuration::ZERO
                };
                if wait.is_zero() {
                    segs.push(Segment::Cpu(d));
                } else {
                    segs.push(Segment::Cpu(d / 2.0));
                    segs.push(Segment::Wait(wait));
                    segs.push(Segment::Cpu(d / 2.0));
                }
            }
        }
        segs
    }

    fn parent_node(&self, parent: Parent) -> NodeId {
        match parent {
            Parent::User(_) => CLIENT_NODE,
            Parent::Visit { server, .. } => self.servers[server].node,
        }
    }

    fn request_bytes(&self, dst_tier: usize) -> u32 {
        let s = &self.cfg.sizes;
        match role_of(dst_tier, self.tiers.len()) {
            Role::Web => s.web_req,
            Role::App => s.app_req,
            Role::Middleware => s.mw_req,
            Role::Db => s.db_req,
        }
    }

    fn response_bytes(&self, src_tier: usize) -> u32 {
        let s = &self.cfg.sizes;
        match role_of(src_tier, self.tiers.len()) {
            Role::Web => s.web_resp,
            Role::App => s.app_resp,
            Role::Middleware => s.mw_resp,
            Role::Db => s.db_resp,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_msg(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        kind: MsgKind,
        conn: u32,
        class: u16,
        bytes: u32,
        txn: u64,
    ) {
        // Server nodes are numbered 1..=n in server-index order (see
        // `node_metas`), so node→server is arithmetic, not a map lookup.
        if let Some(s) = self.server_of(src) {
            self.servers[s].tx_bytes += u64::from(bytes);
        }
        if let Some(d) = self.server_of(dst) {
            self.servers[d].rx_bytes += u64::from(bytes);
        }
        if self.cfg.capture {
            let rec = MsgRecord {
                at,
                src,
                dst,
                kind,
                conn: ConnId(conn),
                class: ClassId(class),
                bytes,
                truth: Some(TxnId(txn)),
            };
            match (&mut self.tap, &mut self.record_tap) {
                (Some(tap), _) => tap.push(rec),
                (None, Some(f)) => f(rec),
                (None, None) => self.log.push(rec),
            }
        }
    }

    /// The server index behind a node id, if any. Server nodes are
    /// `1..=n` in index order; node 0 is the client farm.
    #[inline]
    fn server_of(&self, node: NodeId) -> Option<usize> {
        let i = usize::from(node.0);
        (1..=self.servers.len()).contains(&i).then(|| i - 1)
    }

    /// Connection-pool index of the `src → dst` link.
    ///
    /// # Panics
    ///
    /// Panics if the servers are not in adjacent tiers.
    #[inline]
    fn link(&self, src: usize, dst: usize) -> usize {
        let li = self.links[src * self.servers.len() + dst];
        assert_ne!(li, LINK_NONE, "no link {src} -> {dst}");
        li as usize
    }

    /// (Re)schedules the server's next CPU-completion event.
    ///
    /// Called after every PS mutation. The naive version bumps `cpu_gen`
    /// and schedules a fresh `CpuDone` each time, orphaning the previous
    /// one as a timing-wheel tombstone — and most mutations (a visit
    /// arriving behind the current leader, a response passing through)
    /// don't change *when* the next completion happens, only who's behind
    /// it. The completion token (`cpu_evt`/`cpu_sched_live`) remembers the
    /// armed event's due time; if the freshly predicted time matches, the
    /// armed event is still right — no new entry, no tombstone.
    ///
    /// Reuse is not allowed to perturb ordering: the naive reschedule gives
    /// the replacement event a *fresh* FIFO ticket, so against other events
    /// at the same microsecond it sorts by its latest reschedule, not its
    /// first. Keeping the armed event's original ticket would flip those
    /// ties (observed as byte divergence at WL 8,000, where same-µs
    /// collisions are routine). So reuse re-stamps the armed event with the
    /// ticket a cancel-and-reschedule would have drawn — bit-identical
    /// delivery order, still no wheel churn.
    fn reschedule_cpu(&mut self, now: SimTime, server: usize, sched: &mut Scheduler<Ev>) {
        let s = &mut self.servers[server];
        match s.ps.next_completion(now) {
            Some(t) => {
                if s.cpu_sched_live && s.cpu_evt == t {
                    if let Some(fresh) = sched.restamp(t, s.cpu_seq) {
                        s.cpu_seq = fresh;
                        s.cpu_reuse += 1;
                        return;
                    }
                    // Not in the wheel (overflow-range due time): fall
                    // through to a real reschedule.
                }
                if s.cpu_sched_live {
                    s.cpu_stale += 1;
                }
                s.cpu_gen += 1;
                s.cpu_evt = t;
                s.cpu_sched_live = true;
                s.cpu_seq = sched.at(
                    t,
                    Ev::CpuDone {
                        server,
                        gen: s.cpu_gen,
                    },
                );
            }
            None => {
                // Nothing to complete (empty or frozen): invalidate any
                // pending event so it pops dead.
                if s.cpu_sched_live {
                    s.cpu_stale += 1;
                    s.cpu_gen += 1;
                    s.cpu_sched_live = false;
                }
            }
        }
    }

    /// Enters the current segment of a visit (CPU, wait, or downstream
    /// call).
    fn enter_segment(
        &mut self,
        now: SimTime,
        server: usize,
        visit: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let (seg, txn, class) = {
            let v = self.servers[server]
                .visits
                .get(visit)
                .expect("enter on unknown visit");
            (v.segs.get(v.seg), v.txn, v.class)
        };
        match seg {
            Segment::Cpu(mc) => {
                self.servers[server]
                    .ps
                    .insert_lane(now, JobId(visit), mc, usize::from(class));
            }
            Segment::Wait(d) => {
                sched.after(d, Ev::WaitDone { server, visit });
            }
            Segment::Call => {
                let tier = self.servers[server].tier;
                let next_tier = &self.tiers[tier + 1];
                let target = next_tier[self.servers[server].rr % next_tier.len()];
                self.servers[server].rr += 1;
                let li = self.link(server, target);
                let conn = self.conn_pools[li].alloc();
                let req = NewRequest {
                    txn,
                    class,
                    parent: Parent::Visit { server, visit },
                    conn,
                };
                sched.after(
                    self.cfg.net_latency,
                    Ev::Arrive {
                        server: target,
                        req,
                    },
                );
            }
        }
    }

    /// Moves a visit past its just-finished segment.
    fn advance_visit(
        &mut self,
        now: SimTime,
        server: usize,
        visit: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let more = {
            let v = self.servers[server]
                .visits
                .get_mut(visit)
                .expect("advance on unknown visit");
            v.seg += 1;
            v.seg < v.segs.len()
        };
        if more {
            self.enter_segment(now, server, visit, sched);
        } else {
            self.complete_visit(now, server, visit, sched);
        }
    }

    fn complete_visit(
        &mut self,
        now: SimTime,
        server: usize,
        visit: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let v = self.servers[server]
            .visits
            .remove(visit)
            .expect("complete on unknown visit");
        self.servers[server].threads_busy -= 1;
        self.servers[server].completed += 1;
        let src = self.servers[server].node;
        let dst = self.parent_node(v.parent);
        let bytes = self.response_bytes(self.servers[server].tier);
        self.record_msg(
            now,
            src,
            dst,
            MsgKind::Response,
            v.conn,
            v.class,
            bytes,
            v.txn,
        );
        match v.parent {
            Parent::User(u) => {
                sched.after(self.cfg.net_latency, Ev::ClientResp(u));
            }
            Parent::Visit {
                server: ps,
                visit: pv,
            } => {
                let li = self.link(ps, server);
                sched.after(
                    self.cfg.net_latency,
                    Ev::RespArrive {
                        server: ps,
                        visit: pv,
                        link: li as u32,
                        conn: v.conn,
                    },
                );
            }
        }
        // Admit from the accept queue.
        while self.servers[server].has_thread_capacity() {
            let Some(next) = self.servers[server].pending.pop_front() else {
                break;
            };
            self.servers[server].threads_busy += 1;
            self.enter_segment(now, server, next, sched);
        }
    }

    /// Handles a request message reaching `server`; returns `false` if the
    /// connection was refused (web-tier admission control).
    fn arrive(&mut self, now: SimTime, server: usize, req: NewRequest, sched: &mut Scheduler<Ev>) {
        let is_root = matches!(req.parent, Parent::User(_));
        {
            let s = &self.servers[server];
            if is_root && !s.has_thread_capacity() && s.pending.len() >= s.backlog {
                // SYN refused: no request message is established; the client
                // retransmits after the TCP timeout.
                let Parent::User(u) = req.parent else {
                    unreachable!()
                };
                self.retransmissions += 1;
                self.users.bump_retries(u);
                sched.after(self.cfg.retrans_timeout, Ev::Retry(u));
                return;
            }
        }
        let src = self.parent_node(req.parent);
        let dst = self.servers[server].node;
        let bytes = self.request_bytes(self.servers[server].tier);
        self.record_msg(
            now,
            src,
            dst,
            MsgKind::Request,
            req.conn,
            req.class,
            bytes,
            req.txn,
        );

        let segs = self.sample_segments(now, server, req.class);
        let visit = self.servers[server].visits.insert(Visit {
            txn: req.txn,
            class: req.class,
            parent: req.parent,
            conn: req.conn,
            segs,
            seg: 0,
        });

        // JVM allocation; may trigger a collection.
        let triggered = self.servers[server]
            .gc
            .as_mut()
            .is_some_and(GcState::allocate);
        if triggered {
            let s = &mut self.servers[server];
            let live = s.threads_busy + s.pending.len();
            let pause =
                s.gc.as_mut()
                    .expect("gc vanished")
                    .begin(now, live, &mut s.dice);
            s.ps.set_frozen(now, true);
            s.gc_active = Some((now, 1.0));
            sched.after(pause, Ev::GcPauseEnd(server));
        }

        if self.servers[server].has_thread_capacity() {
            self.servers[server].threads_busy += 1;
            self.enter_segment(now, server, visit, sched);
        } else {
            self.servers[server].pending.push_back(visit);
        }
    }

    fn start_transaction(&mut self, now: SimTime, user: u32, sched: &mut Scheduler<Ev>) {
        let txn = self.next_txn;
        self.next_txn += 1;
        let class = self.sample_class(user);
        self.users.start(user, txn, class, now);
        self.send_to_web(user, sched);
    }

    fn send_to_web(&mut self, user: u32, sched: &mut Scheduler<Ev>) {
        let txn = self.users.txn(user);
        let web_tier = &self.tiers[0];
        let target = web_tier[(txn as usize) % web_tier.len()];
        let req = NewRequest {
            txn,
            class: self.users.class(user),
            parent: Parent::User(user),
            conn: user,
        };
        sched.after(
            self.cfg.net_latency,
            Ev::Arrive {
                server: target,
                req,
            },
        );
    }

    fn apply_speed(&mut self, now: SimTime, server: usize) {
        let mhz = self.servers[server].effective_mhz();
        self.servers[server].ps.set_speed(now, mhz);
    }
}

impl Actor for NTierSystem {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Boot => {
                for u in 0..self.cfg.users {
                    let d = self.think_delay();
                    sched.after(d, Ev::Think(u));
                }
                for s in 0..self.servers.len() {
                    if let Some(d) = &self.servers[s].dvfs {
                        sched.after(d.config.control_period, Ev::GovTick(s));
                    }
                }
                sched.after(self.cfg.cpu_sample_period, Ev::CpuSample);
                if self.cfg.burst.enabled {
                    let d = self.burst_dice.exp_duration(self.cfg.burst.mean_normal);
                    sched.after(d, Ev::BurstToggle);
                }
            }
            Ev::Think(u) => {
                // Lewis thinning: the timer runs at the burst-envelope rate;
                // accept with probability factor/now-envelope.
                if self.cfg.burst.enabled {
                    let accept = self.burst_factor / self.cfg.burst.factor_max;
                    if !self.workload_dice.chance(accept.min(1.0)) {
                        let d = self.think_delay();
                        sched.after(d, Ev::Think(u));
                        return;
                    }
                }
                self.start_transaction(now, u, sched);
            }
            Ev::Retry(u) => {
                self.send_to_web(u, sched);
            }
            Ev::Arrive { server, req } => {
                self.arrive(now, server, req, sched);
                self.reschedule_cpu(now, server, sched);
            }
            Ev::RespArrive {
                server,
                visit,
                link,
                conn,
            } => {
                debug_assert!(matches!(
                    self.servers[server]
                        .visits
                        .get(visit)
                        .map(|v| v.segs.get(v.seg)),
                    Some(Segment::Call)
                ));
                self.conn_pools[link as usize].release(conn);
                self.advance_visit(now, server, visit, sched);
                self.reschedule_cpu(now, server, sched);
            }
            Ev::ClientResp(u) => {
                self.txns.push(TxnSample {
                    user: u,
                    class: self.users.class(u),
                    started: self.users.started(u),
                    finished: now,
                    retries: self.users.retries(u),
                });
                let d = self.think_delay();
                sched.after(d, Ev::Think(u));
            }
            Ev::CpuDone { server, gen } => {
                if gen != self.servers[server].cpu_gen {
                    return;
                }
                // This event was the pending completion token; it has fired.
                self.servers[server].cpu_sched_live = false;
                // Drain into the reusable batch buffer (taken out of `self`
                // so `advance_visit` can borrow the system mutably).
                let mut done = std::mem::take(&mut self.cpu_done);
                self.servers[server].ps.pop_due_into(now, &mut done);
                for &JobId(visit) in &done {
                    self.advance_visit(now, server, visit, sched);
                }
                self.cpu_done = done;
                self.reschedule_cpu(now, server, sched);
            }
            Ev::WaitDone { server, visit } => {
                self.advance_visit(now, server, visit, sched);
                self.reschedule_cpu(now, server, sched);
            }
            Ev::GcPauseEnd(server) => {
                let (start, collected) = {
                    let s = &mut self.servers[server];
                    let gc = s.gc.as_mut().expect("GC pause end without GC");
                    let start = gc.started;
                    let collected = gc.collecting_mb;
                    s.gc_busy_full +=
                        f64::from(s.cores) * now.saturating_since(start).as_secs_f64();
                    s.gc_stw_end = now;
                    (start, collected)
                };
                let cycle = self.servers[server]
                    .gc
                    .as_mut()
                    .expect("gc vanished")
                    .end_pause();
                self.servers[server].ps.set_frozen(now, false);
                match cycle {
                    None => {
                        self.servers[server].gc_active = None;
                        self.gc_events.push(GcEvent {
                            server,
                            start,
                            stw_end: now,
                            end: now,
                            collected_mb: collected,
                        });
                    }
                    Some(d) => {
                        let tax = self.servers[server]
                            .gc
                            .as_ref()
                            .expect("gc vanished")
                            .config
                            .concurrent_tax;
                        self.servers[server].gc_active = Some((now, tax));
                        sched.after(d, Ev::GcCycleEnd(server));
                    }
                }
                self.apply_speed(now, server);
                self.reschedule_cpu(now, server, sched);
            }
            Ev::GcCycleEnd(server) => {
                let (start, stw_end, collected) = {
                    let s = &mut self.servers[server];
                    let gc = s.gc.as_mut().expect("GC cycle end without GC");
                    let (cycle_start, frac) = s.gc_active.expect("cycle not active");
                    s.gc_busy_full +=
                        f64::from(s.cores) * frac * now.saturating_since(cycle_start).as_secs_f64();
                    s.gc_active = None;
                    let out = (gc.started, s.gc_stw_end, gc.collecting_mb);
                    gc.end_cycle();
                    out
                };
                self.gc_events.push(GcEvent {
                    server,
                    start,
                    stw_end,
                    end: now,
                    collected_mb: collected,
                });
                self.apply_speed(now, server);
                self.reschedule_cpu(now, server, sched);
            }
            Ev::GovTick(server) => {
                // Fixed-cost ledger: governor ticks fire per pod whether or
                // not any request is in flight (control-loop physics — they
                // cannot be strided without changing the DVFS model).
                fgbd_obsv::counter!("shard.fixed_cost_events", 1);
                let busy = self.servers[server].busy_core_seconds(now);
                let cores = self.servers[server].cores;
                let Some(dvfs) = &mut self.servers[server].dvfs else {
                    return;
                };
                let period = dvfs.config.control_period;
                let before = dvfs.index;
                let (idx, util) = dvfs.tick(now, busy, cores);
                self.pstate_log.push(PStateSample {
                    server,
                    at: now,
                    util,
                    pstate: idx,
                    mhz: crate::dvfs::XEON_PSTATES[idx].mhz,
                });
                sched.after(period, Ev::GovTick(server));
                if idx != before {
                    self.apply_speed(now, server);
                    self.reschedule_cpu(now, server, sched);
                }
            }
            Ev::CpuSample => {
                // Fixed-cost ledger: sampler walks fire regardless of load.
                // Sharded runs stride this schedule (see `crate::shard`) so
                // the fleet-wide count stays flat in the pod count.
                fgbd_obsv::counter!("shard.fixed_cost_events", 1);
                for s in 0..self.servers.len() {
                    let busy = self.servers[s].busy_core_seconds(now);
                    self.cpu_busy[s].push(CpuSample {
                        at: now,
                        busy_core_seconds: busy,
                    });
                }
                sched.after(self.cfg.cpu_sample_period, Ev::CpuSample);
            }
            Ev::BurstToggle => {
                // Fixed-cost ledger: the burst modulator is workload
                // physics and flips per pod, like GovTick.
                fgbd_obsv::counter!("shard.fixed_cost_events", 1);
                if self.burst_factor == 1.0 {
                    self.burst_factor = self.burst_dice.bounded_pareto(
                        self.cfg.burst.factor_alpha,
                        self.cfg.burst.factor_min,
                        self.cfg.burst.factor_max,
                    );
                    let d = self.burst_dice.exp_duration(self.cfg.burst.mean_burst);
                    sched.after(d, Ev::BurstToggle);
                } else {
                    self.burst_factor = 1.0;
                    let d = self.burst_dice.exp_duration(self.cfg.burst.mean_normal);
                    sched.after(d, Ev::BurstToggle);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Jdk;

    #[test]
    fn conn_pool_reuses_released_ids() {
        let mut pool = ConnPool {
            base: 1 << 20,
            free: Vec::new(),
            next: 0,
        };
        let a = pool.alloc();
        let b = pool.alloc();
        assert_eq!(a, 1 << 20);
        assert_eq!(b, (1 << 20) + 1);
        pool.release(a);
        assert_eq!(pool.alloc(), a, "released ids are reused");
        assert_eq!(pool.alloc(), (1 << 20) + 2);
    }

    #[test]
    fn tier_roles_for_three_and_four_tier_stacks() {
        // 4-tier: web / app / middleware / db.
        assert_eq!(role_of(0, 4), Role::Web);
        assert_eq!(role_of(1, 4), Role::App);
        assert_eq!(role_of(2, 4), Role::Middleware);
        assert_eq!(role_of(3, 4), Role::Db);
        // 3-tier: the middleware role disappears.
        assert_eq!(role_of(0, 3), Role::Web);
        assert_eq!(role_of(1, 3), Role::App);
        assert_eq!(role_of(2, 3), Role::Db);
        // Degenerate single tier is a leaf.
        assert_eq!(role_of(0, 1), Role::Db);
    }

    #[test]
    fn visit_plans_match_tier_roles() {
        let cfg = SystemConfig::paper_1l2s1l2s(10, Jdk::Jdk16, false, 1);
        let mut sys = NTierSystem::new(cfg);
        // Web (server 0): pre-CPU, one call, post-CPU.
        let web = sys.sample_segments(SimTime::ZERO, 0, 0);
        assert_eq!(web.len(), 3);
        assert!(matches!(web.get(0), Segment::Cpu(_)));
        assert!(matches!(web.get(1), Segment::Call));
        // App (server 1): q calls interleaved with q+1 CPU slices — and the
        // whole plan fits the SegVec inline capacity (no heap spill).
        let q = sys.cfg.mix.class(0).queries as usize;
        let app = sys.sample_segments(SimTime::ZERO, 1, 0);
        assert_eq!(app.len(), 2 * q + 1);
        assert_eq!(app.iter().filter(|s| matches!(s, Segment::Call)).count(), q);
        assert!(app.len() <= SEGS_INLINE && app.spill.is_empty());
        // Db (server 4): CPU around a non-CPU wait, no calls.
        let db = sys.sample_segments(SimTime::ZERO, 4, 0);
        assert!(db.iter().all(|s| !matches!(s, Segment::Call)));
        assert!(db.iter().any(|s| matches!(s, Segment::Wait(_))));
    }

    #[test]
    fn segvec_spills_past_inline_capacity() {
        let mut v = SegVec::new();
        for i in 0..(SEGS_INLINE + 5) {
            v.push(Segment::Cpu(i as f64));
        }
        assert_eq!(v.len(), SEGS_INLINE + 5);
        for i in 0..v.len() {
            assert!(matches!(v.get(i), Segment::Cpu(d) if d == i as f64));
        }
        assert_eq!(v.spill.len(), 5);
    }

    #[test]
    fn monitor_overhead_slows_the_clock() {
        let cfg =
            SystemConfig::paper_1l2s1l2s(10, Jdk::Jdk16, false, 1).with_monitoring_overhead(0.12);
        let sys = NTierSystem::new(cfg);
        // Apache: 2 cores at 2261 MHz, 12% of one core stolen -> 6% slower.
        let apache = &sys.servers[0];
        assert!((apache.effective_mhz() - 2261.0 * 0.94).abs() < 1e-9);
        // Tomcat: 1 core -> full 12% tax.
        let tomcat = &sys.servers[1];
        assert!((tomcat.effective_mhz() - 2261.0 * 0.88).abs() < 1e-9);
    }

    #[test]
    fn burst_factor_toggles_between_one_and_sampled() {
        let cfg = SystemConfig::paper_1l2s1l2s(10, Jdk::Jdk16, false, 1);
        let lo = cfg.burst.factor_min;
        let hi = cfg.burst.factor_max;
        let mut sim = Simulation::new(NTierSystem::new(cfg));
        sim.prime(SimTime::ZERO, Ev::Boot);
        sim.run_until(SimTime::from_secs(30));
        // After 30 s the modulator has flipped several times; whatever state
        // it is in, the factor is either 1.0 or inside the Pareto support.
        let f = sim.actor().burst_factor;
        assert!(f == 1.0 || (lo..=hi).contains(&f), "factor {f}");
    }
}
