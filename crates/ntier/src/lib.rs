#![warn(missing_docs)]

//! # fgbd-ntier — the n-tier application simulator
//!
//! The testbed substitute for the `fgbd` reproduction of *"Detecting
//! Transient Bottlenecks in n-Tier Applications through Fine-Grained
//! Analysis"* (ICDCS 2013). The paper ran RUBBoS on a physical/virtualized
//! 4-tier deployment (Apache → Tomcat×2 → C-JDBC → MySQL×2); this crate
//! simulates the same system from first principles:
//!
//! * [`class`] — the 24-interaction RUBBoS-like workload mix (browse-only
//!   and read/write), calibrated to the paper's measured utilizations.
//! * [`config`] — topology and scenario knobs (Tomcat JDK, MySQL SpeedStep).
//! * [`gc`] — the JVM garbage-collection model (serial stop-the-world vs
//!   concurrent), the paper's software-layer transient-event source.
//! * [`dvfs`] — the Intel SpeedStep P-state governor (Table II clocks), the
//!   architecture-layer transient-event source.
//! * [`system`] — the discrete-event simulator itself: processor-sharing
//!   multi-core servers, finite thread pools, blocking synchronous calls,
//!   listen-backlog admission with 3 s TCP retransmission, closed-loop
//!   clients with bursty think-rate modulation, and a passive network tap
//!   that records every interaction message into a
//!   [`fgbd_trace::TraceLog`].
//! * [`result`] — everything a run produces.
//!
//! # Examples
//!
//! Run a small scenario and inspect its capture:
//!
//! ```
//! use fgbd_des::SimDuration;
//! use fgbd_ntier::config::{Jdk, SystemConfig};
//! use fgbd_ntier::system::NTierSystem;
//!
//! let mut cfg = SystemConfig::paper_1l2s1l2s(50, Jdk::Jdk16, false, 42);
//! cfg.warmup = SimDuration::from_secs(1);
//! cfg.duration = SimDuration::from_secs(4);
//! let result = NTierSystem::run(cfg);
//! assert!(result.throughput() > 0.0);
//! assert!(!result.log.records.is_empty());
//! ```

pub mod arena;
pub mod class;
pub mod config;
pub mod dvfs;
pub mod gc;
pub mod result;
pub mod shard;
pub mod system;
pub mod users;

pub use class::{MixTargets, RequestClass, WorkloadMix};
pub use config::{BurstConfig, Jdk, MsgSizes, ServerSpec, SystemConfig, BASE_MHZ};
pub use dvfs::{DvfsConfig, DvfsState, PState, PStateSample, XEON_PSTATES};
pub use gc::{Collector, GcConfig, GcEvent};
pub use result::{CpuSample, RunResult, ServerInfo, TxnSample};
pub use shard::{run_sharded, ShardPlan};
pub use system::{node_metas, Ev, NTierSystem, Parent};
pub use users::UserTable;
