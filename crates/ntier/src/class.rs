//! Request classes and the RUBBoS-like workload mix.
//!
//! RUBBoS (the paper's benchmark, a Slashdot-style bulletin board) has 24
//! interaction types; the paper uses the *browse-only* mix. Each interaction
//! class differs in CPU demand per tier and in how many database round trips
//! it issues — exactly the mix-class heterogeneity that motivates the
//! paper's throughput normalization (§III-B).
//!
//! Demands are expressed in **megacycles** (MC): CPU work at a reference
//! clock, so a 2,261 MHz core retires 2,261 MC/s. The mix is *calibrated* so
//! its weighted means hit targets chosen to reproduce the paper's measured
//! operating point (Table I: Apache 34.6%, Tomcat 79.9%, C-JDBC 26.7%,
//! MySQL 78.1% CPU at workload 8,000).

use serde::{Deserialize, Serialize};

/// One interaction class of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestClass {
    /// Interaction name (RUBBoS nomenclature).
    pub name: String,
    /// Relative frequency in the active mix (zero = not used by this mix).
    pub weight: f64,
    /// Mean CPU demand at the web tier, megacycles.
    pub web_demand_mc: f64,
    /// Mean CPU demand at the application tier, megacycles.
    pub app_demand_mc: f64,
    /// Mean CPU demand at the clustering middleware per query, megacycles.
    pub mw_demand_mc: f64,
    /// Mean CPU demand at the database per query, megacycles.
    pub db_demand_mc: f64,
    /// Number of database round trips per interaction.
    pub queries: u32,
    /// Mean non-CPU wait (I/O, row fetch) per query at the database, seconds.
    pub db_wait_s: f64,
    /// Coefficient of variation of sampled demands (log-normal).
    pub demand_cv: f64,
}

/// A calibrated set of request classes with an active mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    classes: Vec<RequestClass>,
}

/// Calibration targets for the weighted means of a mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixTargets {
    /// Weighted mean web-tier demand, MC.
    pub web_mc: f64,
    /// Weighted mean app-tier demand, MC.
    pub app_mc: f64,
    /// Weighted mean middleware demand per query, MC.
    pub mw_mc: f64,
    /// Weighted mean database demand per query, MC.
    pub db_mc: f64,
    /// Weighted mean queries per interaction.
    pub queries: f64,
    /// Weighted mean database wait per query, seconds.
    pub db_wait_s: f64,
}

impl MixTargets {
    /// The calibration used throughout the reproduction. At the reference
    /// clock of 2,261 MHz (Xeon P0 state) this yields, for the paper's
    /// 1L/2S/1L/2S topology:
    ///
    /// * Apache capacity ≈ 3,280 pages/s (2 cores / 1.379 MC)
    /// * Tomcat tier capacity ≈ 1,483 pages/s (2×1 core / 3.05 MC) — the
    ///   system-level bottleneck, saturating near workload 11,000 (Fig 2a)
    /// * C-JDBC capacity ≈ 21,280 queries/s
    /// * MySQL capacity ≈ 7,132 queries/s per node at P0, ≈ 5,035 at P5 and
    ///   ≈ 3,776 at P8 — near the paper's Fig 12 plateau levels of ~7,000 /
    ///   ~5,000 / ~3,700 req/s. At workload 8,000 the P8 state carries
    ///   ≈78% utilization (Table I) and survives all but the larger bursts;
    ///   by workload 10,000 its margin is gone, so bursts congest MySQL
    ///   deeply at P8 and the recovering queue drains visibly at the faster
    ///   clocks (§IV-C).
    pub fn paper_calibration() -> MixTargets {
        MixTargets {
            web_mc: 1.379,
            app_mc: 3.05,
            mw_mc: 0.2125,
            db_mc: 0.317,
            queries: 5.0,
            db_wait_s: 0.0013,
        }
    }
}

/// The 24 RUBBoS interactions: (name, browse-only weight, web/app/mw/db
/// demand shape multipliers, queries, db-wait multiplier).
///
/// Browse-only interactions carry positive weights; read/write-only
/// interactions carry zero weight in the browse mix but remain available via
/// [`WorkloadMix::read_write`].
#[allow(clippy::type_complexity)]
const RUBBOS_SHAPES: [(&str, f64, f64, [f64; 4], u32, f64); 24] = [
    // name, browse_w, rw_extra_w, [web, app, mw, db] shape, queries, wait
    ("StoriesOfTheDay", 20.0, 0.0, [1.0, 1.2, 1.0, 1.4], 3, 1.2),
    ("ViewStory", 16.0, 0.0, [1.0, 1.1, 1.0, 0.9], 6, 1.0),
    ("ViewComment", 12.0, 0.0, [0.8, 1.3, 1.0, 1.1], 7, 1.0),
    ("BrowseCategories", 8.0, 0.0, [0.9, 0.6, 1.0, 0.7], 2, 0.8),
    (
        "BrowseStoriesByCategory",
        10.0,
        0.0,
        [1.0, 0.9, 1.0, 1.2],
        5,
        1.1,
    ),
    ("OlderStories", 7.0, 0.0, [1.0, 0.8, 1.0, 1.3], 4, 1.2),
    ("SearchInStories", 6.0, 0.0, [1.1, 1.5, 1.0, 2.2], 5, 1.5),
    ("SearchInComments", 4.0, 0.0, [1.1, 1.6, 1.0, 2.5], 5, 1.6),
    ("SearchInUsers", 2.0, 0.0, [1.0, 0.7, 1.0, 1.1], 3, 0.9),
    ("ViewUserInfo", 5.0, 0.0, [0.9, 0.7, 1.0, 0.8], 4, 0.9),
    ("Home", 9.0, 0.0, [1.2, 0.9, 1.0, 0.8], 4, 0.9),
    ("MonthToDate", 1.0, 0.0, [1.0, 1.4, 1.0, 1.9], 8, 1.3),
    // Read/write-mix-only interactions (weight 0 in browse-only).
    ("SubmitStoryForm", 0.0, 2.0, [0.8, 0.4, 1.0, 0.0], 0, 0.0),
    ("SubmitStory", 0.0, 3.0, [1.0, 1.3, 1.0, 1.5], 5, 1.4),
    ("SubmitCommentForm", 0.0, 2.0, [0.8, 0.5, 1.0, 0.6], 2, 0.8),
    ("SubmitComment", 0.0, 4.0, [1.0, 1.2, 1.0, 1.4], 4, 1.3),
    ("ModerateStoryForm", 0.0, 1.0, [0.8, 0.5, 1.0, 0.7], 2, 0.8),
    ("ModerateStory", 0.0, 1.5, [1.0, 1.0, 1.0, 1.2], 3, 1.1),
    ("ReviewStories", 0.0, 2.0, [1.0, 1.1, 1.0, 1.3], 5, 1.1),
    ("AcceptStory", 0.0, 1.0, [1.0, 1.0, 1.0, 1.4], 4, 1.2),
    ("RejectStory", 0.0, 1.0, [0.9, 0.9, 1.0, 1.0], 3, 1.0),
    ("RegisterForm", 0.0, 0.5, [0.7, 0.3, 1.0, 0.0], 0, 0.0),
    ("Register", 0.0, 1.0, [0.9, 0.8, 1.0, 1.0], 3, 1.0),
    ("Author", 0.0, 1.5, [0.9, 0.8, 1.0, 0.9], 4, 1.0),
];

impl WorkloadMix {
    /// The browse-only RUBBoS mix used by all the paper's experiments,
    /// calibrated to `targets`.
    pub fn browse_only(targets: MixTargets) -> WorkloadMix {
        Self::build(targets, false)
    }

    /// The read/write RUBBoS mix (available as an extension; the paper uses
    /// browse-only).
    pub fn read_write(targets: MixTargets) -> WorkloadMix {
        Self::build(targets, true)
    }

    fn build(targets: MixTargets, read_write: bool) -> WorkloadMix {
        let mut classes: Vec<RequestClass> = RUBBOS_SHAPES
            .iter()
            .map(|&(name, bw, rw, [web, app, mw, db], queries, wait)| {
                let weight = if read_write { bw + rw } else { bw };
                RequestClass {
                    name: name.to_string(),
                    weight,
                    web_demand_mc: web,
                    app_demand_mc: app,
                    mw_demand_mc: mw,
                    db_demand_mc: db,
                    queries,
                    db_wait_s: wait,
                    demand_cv: 0.25,
                }
            })
            .collect();
        calibrate(&mut classes, targets);
        WorkloadMix { classes }
    }

    /// A single-class mix — handy for tests and the Fig 6/7 didactic
    /// harnesses.
    pub fn single(class: RequestClass) -> WorkloadMix {
        let mut class = class;
        class.weight = 1.0;
        WorkloadMix {
            classes: vec![class],
        }
    }

    /// A mix from explicit classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or all weights are zero.
    pub fn from_classes(classes: Vec<RequestClass>) -> WorkloadMix {
        assert!(!classes.is_empty(), "mix must have at least one class");
        assert!(
            classes.iter().any(|c| c.weight > 0.0),
            "mix must have positive total weight"
        );
        WorkloadMix { classes }
    }

    /// All classes (including zero-weight ones).
    pub fn classes(&self) -> &[RequestClass] {
        &self.classes
    }

    /// The class with index `id`.
    pub fn class(&self, id: u16) -> &RequestClass {
        &self.classes[id as usize]
    }

    /// Mix weights, aligned with [`WorkloadMix::classes`].
    pub fn weights(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.weight).collect()
    }

    /// Weighted mean of an arbitrary per-class quantity.
    pub fn weighted_mean(&self, f: impl Fn(&RequestClass) -> f64) -> f64 {
        let wsum: f64 = self.classes.iter().map(|c| c.weight).sum();
        self.classes.iter().map(|c| c.weight * f(c)).sum::<f64>() / wsum
    }
}

/// Scales demand columns so the weighted means of active classes hit
/// `targets` exactly.
fn calibrate(classes: &mut [RequestClass], targets: MixTargets) {
    let wsum: f64 = classes.iter().map(|c| c.weight).sum();
    assert!(wsum > 0.0, "mix must have positive total weight");
    fn mean_of(classes: &[RequestClass], wsum: f64, f: impl Fn(&RequestClass) -> f64) -> f64 {
        classes.iter().map(|c| c.weight * f(c)).sum::<f64>() / wsum
    }
    let mean = |cs: &[RequestClass], f: &dyn Fn(&RequestClass) -> f64| mean_of(cs, wsum, f);
    // Queries must stay integral: scale toward the target and round, then
    // compute per-query means over the rounded counts.
    let q_mean = mean(classes, &|c| f64::from(c.queries));
    if q_mean > 0.0 {
        let q_scale = targets.queries / q_mean;
        for c in classes.iter_mut() {
            if c.queries > 0 {
                c.queries = ((f64::from(c.queries) * q_scale).round() as u32).max(1);
            }
        }
    }
    let scale_to = |current: f64, target: f64| if current > 0.0 { target / current } else { 0.0 };
    let s_web = scale_to(mean(classes, &|c| c.web_demand_mc), targets.web_mc);
    let s_app = scale_to(mean(classes, &|c| c.app_demand_mc), targets.app_mc);
    // Per-query quantities are weighted by query count so tier-level totals
    // calibrate correctly.
    let q_mean = mean(classes, &|c| f64::from(c.queries));
    let s_mw = scale_to(
        mean(classes, &|c| c.mw_demand_mc * f64::from(c.queries)) / q_mean,
        targets.mw_mc,
    );
    let s_db = scale_to(
        mean(classes, &|c| c.db_demand_mc * f64::from(c.queries)) / q_mean,
        targets.db_mc,
    );
    let s_wait = scale_to(
        mean(classes, &|c| c.db_wait_s * f64::from(c.queries)) / q_mean,
        targets.db_wait_s,
    );
    for c in classes.iter_mut() {
        c.web_demand_mc *= s_web;
        c.app_demand_mc *= s_app;
        c.mw_demand_mc *= s_mw;
        c.db_demand_mc *= s_db;
        c.db_wait_s *= s_wait;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browse_mix_hits_calibration_targets() {
        let t = MixTargets::paper_calibration();
        let mix = WorkloadMix::browse_only(t);
        assert_eq!(mix.classes().len(), 24);
        let web = mix.weighted_mean(|c| c.web_demand_mc);
        let app = mix.weighted_mean(|c| c.app_demand_mc);
        let q = mix.weighted_mean(|c| f64::from(c.queries));
        let db = mix.weighted_mean(|c| c.db_demand_mc * f64::from(c.queries)) / q;
        assert!((web - t.web_mc).abs() < 1e-9, "web {web}");
        assert!((app - t.app_mc).abs() < 1e-9, "app {app}");
        // Queries round to integers; allow a small calibration error.
        assert!((q - t.queries).abs() < 0.6, "queries {q}");
        assert!((db - t.db_mc).abs() < 1e-9, "db {db}");
    }

    #[test]
    fn browse_mix_uses_only_browse_interactions() {
        let mix = WorkloadMix::browse_only(MixTargets::paper_calibration());
        for c in mix.classes() {
            if c.weight > 0.0 {
                assert!(
                    !c.name.starts_with("Submit")
                        && !c.name.starts_with("Moderate")
                        && !c.name.starts_with("Register"),
                    "write interaction {} active in browse mix",
                    c.name
                );
            }
        }
        // But the rw mix activates them.
        let rw = WorkloadMix::read_write(MixTargets::paper_calibration());
        assert!(rw
            .classes()
            .iter()
            .any(|c| c.name == "SubmitComment" && c.weight > 0.0));
    }

    #[test]
    fn class_heterogeneity_survives_calibration() {
        let mix = WorkloadMix::browse_only(MixTargets::paper_calibration());
        let active: Vec<_> = mix.classes().iter().filter(|c| c.weight > 0.0).collect();
        let max_app = active.iter().map(|c| c.app_demand_mc).fold(0.0, f64::max);
        let min_app = active
            .iter()
            .map(|c| c.app_demand_mc)
            .fold(f64::INFINITY, f64::min);
        // The mix-class spread that motivates normalization: >2x range.
        assert!(max_app / min_app > 2.0, "spread {}", max_app / min_app);
        let qs: Vec<u32> = active.iter().map(|c| c.queries).collect();
        assert!(qs.iter().max() != qs.iter().min(), "query counts all equal");
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let mut a = RequestClass {
            name: "a".into(),
            weight: 3.0,
            web_demand_mc: 1.0,
            app_demand_mc: 10.0,
            mw_demand_mc: 1.0,
            db_demand_mc: 1.0,
            queries: 1,
            db_wait_s: 0.0,
            demand_cv: 0.0,
        };
        let mut b = a.clone();
        b.name = "b".into();
        b.weight = 1.0;
        b.app_demand_mc = 2.0;
        a.weight = 3.0;
        let mix = WorkloadMix::from_classes(vec![a, b]);
        let m = mix.weighted_mean(|c| c.app_demand_mc);
        assert!((m - 8.0).abs() < 1e-12);
    }

    #[test]
    fn single_mix_has_weight_one() {
        let c = RequestClass {
            name: "only".into(),
            weight: 0.0,
            web_demand_mc: 1.0,
            app_demand_mc: 1.0,
            mw_demand_mc: 1.0,
            db_demand_mc: 1.0,
            queries: 2,
            db_wait_s: 0.001,
            demand_cv: 0.1,
        };
        let mix = WorkloadMix::single(c);
        assert_eq!(mix.classes().len(), 1);
        assert_eq!(mix.class(0).weight, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        WorkloadMix::from_classes(vec![]);
    }
}
