//! Population-sharded parallel execution: the closed-loop user population
//! is split across K independent *pods*, each a complete replica of the
//! n-tier topology simulated on its own timing wheel with its own RNG
//! substream, and the pod outputs are merged deterministically.
//!
//! # Semantics
//!
//! A K-pod run models a scaled-out fleet: K replicas of the topology,
//! each serving `users / K` of the population. It is **not** a bitwise
//! re-execution of the one-pod system — splitting the population changes
//! the contention physics (K pods of N/K users queue independently) — so
//! the shard count is a *model parameter*, like the user count. What the
//! implementation guarantees, and what the tests pin down, is:
//!
//! * **Per-K determinism** — for a fixed shard count, the merged output
//!   is byte-identical across runs, worker-thread counts, and scheduling
//!   interleavings. Worker count is purely a performance knob.
//! * **K = 1 equivalence** — a single-pod sharded run reproduces the
//!   sequential simulator's output byte-for-byte: same events, same
//!   trajectory, and the shard-0 merge tags are all zero bits.
//! * **Substream isolation** — pod seeds come from
//!   [`Dice::stream_seed`], a pure function of `(master seed, pod
//!   index)`: changing K never perturbs another pod's stream or the
//!   sequential stream.
//!
//! # Mechanics
//!
//! Pods ride the conservative lockstep driver
//! ([`fgbd_des::run_lockstep`]): each synchronization window runs every
//! pod to the window's end on a worker pool, then a barrier exchanges
//! cross-pod messages. Population pods share nothing, so every barrier
//! flush is empty — accounted as null messages (`des.null_messages`),
//! with the barriers themselves visible as `des.sync_barriers`. The
//! window width is the mean think time: the natural lookahead bound for
//! this model (a completed user re-arrives no sooner than its think
//! delay on average; for shared-nothing pods any window is causally
//! safe, this one just bounds barrier frequency).
//!
//! Captures are merged by [`fgbd_trace::merge_shard_logs`] (timestamp
//! order, shard-tagged connection and truth ids); scalar outputs are
//! summed, samples k-way merged by `(time, pod)`.
//!
//! # Fixed cost per pod
//!
//! Some events fire on a timer whether or not any request is in flight;
//! naively replicating them K× makes idle fleets cost K× the events. The
//! simulator tracks them under the `shard.fixed_cost_events` counter and
//! [`run_sharded`] strides the one that is pure monitoring: every pod's
//! CPU-busy sampler runs at `K × cpu_sample_period`, so the fleet-wide
//! sampler budget equals a single pod's. The other periodic events are
//! model physics and stay per pod: `GovTick` is each replica's DVFS
//! control loop, `BurstToggle` is each pod's workload modulator, and GC
//! has no periodic walker at all (collections are allocation-driven).

use fgbd_des::parallel::{Envelope, LockstepConfig, NoMsg, ShardActor};
use fgbd_des::{run_lockstep, Dice, SimDuration, SimTime, Simulation};
use fgbd_trace::merge::{merge_shard_logs, MAX_SIM_SHARDS};

use crate::config::SystemConfig;
use crate::result::RunResult;
use crate::system::{Ev, NTierSystem};

impl ShardActor for NTierSystem {
    type Msg = NoMsg;

    fn drain_outbox(&mut self, _out: &mut Vec<Envelope<NoMsg>>) {
        // Population pods are shared-nothing: nothing ever crosses.
    }

    fn accept(&mut self, _from: usize, msg: NoMsg) -> Ev {
        match msg {}
    }
}

/// How a sharded run is laid out: the logical pod count (affects the
/// model) and the physical worker count (affects wall time only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of population pods; clamped to `1..=`[`MAX_SIM_SHARDS`].
    pub shards: usize,
    /// Number of worker threads; clamped to `1..=shards` at run time.
    pub workers: usize,
}

impl ShardPlan {
    /// A plan with `shards` pods and one worker per pod (capped by the
    /// host's parallelism at run time only through `workers`).
    pub fn new(shards: usize) -> ShardPlan {
        ShardPlan {
            shards,
            workers: shards,
        }
    }

    /// The plan selected by the environment, or `None` when sharding is
    /// off (the default):
    ///
    /// * `FGBD_SIM_SHARDS` — pod count; unset, `0` or `1` selects the
    ///   sequential simulator (the exact unsharded code path).
    ///   Clamped to [`MAX_SIM_SHARDS`].
    /// * `FGBD_SIM_WORKERS` — worker threads; defaults to the host's
    ///   available parallelism. Output-invariant.
    pub fn from_env() -> Option<ShardPlan> {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        let shards = parse("FGBD_SIM_SHARDS")?;
        if shards <= 1 {
            return None;
        }
        let workers = parse("FGBD_SIM_WORKERS")
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Some(ShardPlan {
            shards: shards.min(MAX_SIM_SHARDS),
            workers: workers.max(1),
        })
    }
}

/// Splits `users` across `shards` pods, earlier pods taking the
/// remainder: the sizes differ by at most one and sum to `users`.
pub fn split_users(users: u32, shards: usize) -> Vec<u32> {
    let k = shards as u32;
    (0..k)
        .map(|i| users / k + u32::from(i < users % k))
        .collect()
}

/// Runs `cfg` as a fleet of `plan.shards` population pods and merges the
/// outputs; see the module docs for the exact semantics. A one-pod plan
/// reproduces [`NTierSystem::run`] byte-for-byte.
///
/// # Panics
///
/// Panics if `plan.shards` is zero or exceeds [`MAX_SIM_SHARDS`].
pub fn run_sharded(cfg: SystemConfig, plan: &ShardPlan) -> RunResult {
    assert!(
        (1..=MAX_SIM_SHARDS).contains(&plan.shards),
        "shard count must be in 1..={MAX_SIM_SHARDS}"
    );
    // Never split below one user per pod.
    let shards = plan.shards.min(cfg.users.max(1) as usize);
    let horizon = SimTime::ZERO + cfg.warmup + cfg.duration;
    let shares = split_users(cfg.users, shards);

    let mut pods: Vec<Simulation<NTierSystem>> = shares
        .iter()
        .enumerate()
        .map(|(pod, &share)| {
            let mut pod_cfg = cfg.clone();
            pod_cfg.users = share;
            // Stride the fleet's fixed-cost samplers: K pods each sampling
            // CPU busy at K× the configured period spend one pod's worth of
            // sampler events in total, instead of K×. The schedule stays
            // identical across pods (merge_results averages aligned
            // samples) and K = 1 is untouched. Cumulative busy counters
            // lose no information at a coarser cadence; only plot
            // resolution changes. GovTick and BurstToggle stay per pod —
            // they are model physics, not monitoring (and GC has no
            // periodic walker at all: collections are allocation-driven).
            pod_cfg.cpu_sample_period = cfg.cpu_sample_period * shards as u64;
            // A one-pod fleet IS the sequential system: it replays the
            // root stream byte-for-byte. Real fleets put each pod on its
            // own substream; none of those ever equals the root stream,
            // so no shard count perturbs the sequential trajectory.
            pod_cfg.seed = if shards == 1 {
                cfg.seed
            } else {
                Dice::stream_seed(cfg.seed, pod as u64)
            };
            let mut sim = Simulation::new(NTierSystem::new(pod_cfg));
            sim.prime(SimTime::ZERO, Ev::Boot);
            sim
        })
        .collect();

    let window = if cfg.think_time > SimDuration::ZERO {
        cfg.think_time
    } else {
        SimDuration::from_secs(1)
    };
    run_lockstep(
        &mut pods,
        horizon,
        &LockstepConfig {
            window,
            workers: plan.workers,
        },
    );

    let results: Vec<RunResult> = pods
        .into_iter()
        .map(|pod| pod.into_actor().into_result(horizon))
        .collect();
    merge_results(results, &shares)
}

/// Concatenates per-pod sample vectors into one deterministic order:
/// stable sort by the key, so equal keys keep (pod, within-pod) order.
fn kmerge<T, K: Ord, F: Fn(&T) -> K>(pods: Vec<Vec<T>>, key: F) -> Vec<T> {
    let mut all: Vec<T> = pods.into_iter().flatten().collect();
    all.sort_by_key(|t| key(t));
    all
}

/// Folds per-pod results into one fleet-level [`RunResult`].
fn merge_results(mut results: Vec<RunResult>, shares: &[u32]) -> RunResult {
    let first = results.first().expect("at least one pod");
    let servers = first.servers.clone();
    let warmup_end = first.warmup_end;
    let horizon = first.horizon;
    let n_servers = servers.len();

    // Global user ids: pod p's user u becomes base(p) + u.
    let mut user_base = vec![0u32; shares.len()];
    for p in 1..shares.len() {
        user_base[p] = user_base[p - 1] + shares[p - 1];
    }
    for (pod, res) in results.iter_mut().enumerate() {
        for txn in &mut res.txns {
            txn.user += user_base[pod];
        }
    }

    // CPU samples are cumulative busy core-seconds on an identical
    // deterministic sampling schedule in every pod, so averaging aligned
    // samples keeps `mean_cpu_util` = the mean utilization across the
    // fleet's replicas of each logical server.
    let mut cpu_busy = Vec::with_capacity(n_servers);
    for s in 0..n_servers {
        let len = results
            .iter()
            .map(|r| r.cpu_busy[s].len())
            .max()
            .unwrap_or(0);
        let mut merged = Vec::with_capacity(len);
        for i in 0..len {
            let mut at = None;
            let mut sum = 0.0;
            let mut n = 0u32;
            for r in &results {
                if let Some(sample) = r.cpu_busy[s].get(i) {
                    assert!(
                        *at.get_or_insert(sample.at) == sample.at,
                        "pods must share one CPU sampling schedule"
                    );
                    sum += sample.busy_core_seconds;
                    n += 1;
                }
            }
            merged.push(crate::result::CpuSample {
                at: at.expect("non-empty sample column"),
                busy_core_seconds: sum / f64::from(n),
            });
        }
        cpu_busy.push(merged);
    }

    let mut net_bytes = vec![(0u64, 0u64); n_servers];
    let mut completed_visits = vec![0u64; n_servers];
    let mut retransmissions = 0u64;
    for r in &results {
        for (acc, &(rx, tx)) in net_bytes.iter_mut().zip(&r.net_bytes) {
            acc.0 += rx;
            acc.1 += tx;
        }
        for (acc, &v) in completed_visits.iter_mut().zip(&r.completed_visits) {
            *acc += v;
        }
        retransmissions += r.retransmissions;
    }

    let mut logs = Vec::with_capacity(results.len());
    let mut txns = Vec::with_capacity(results.len());
    let mut gc_events = Vec::with_capacity(results.len());
    let mut pstate_log = Vec::with_capacity(results.len());
    for r in results {
        logs.push(r.log);
        txns.push(r.txns);
        gc_events.push(r.gc_events);
        pstate_log.push(r.pstate_log);
    }

    RunResult {
        servers,
        log: merge_shard_logs(logs),
        txns: kmerge(txns, |t| (t.finished, t.user)),
        gc_events: kmerge(gc_events, |g| (g.start, g.server, g.end)),
        pstate_log: kmerge(pstate_log, |p| (p.at, p.server, p.pstate)),
        cpu_busy,
        net_bytes,
        completed_visits,
        retransmissions,
        warmup_end,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_users_is_exact_and_balanced() {
        assert_eq!(split_users(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_users(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(split_users(3, 8), vec![1, 1, 1, 0, 0, 0, 0, 0]);
        for (users, k) in [(100u32, 7usize), (1, 1), (9, 2)] {
            let shares = split_users(users, k);
            assert_eq!(shares.iter().sum::<u32>(), users);
            assert_eq!(shares.len(), k);
        }
    }

    #[test]
    fn plan_from_env_requires_two_or_more_shards() {
        // Serialized against other env-reading tests by running in one
        // test body.
        let saved: Vec<(&str, Option<String>)> = ["FGBD_SIM_SHARDS", "FGBD_SIM_WORKERS"]
            .into_iter()
            .map(|k| (k, std::env::var(k).ok()))
            .collect();

        std::env::remove_var("FGBD_SIM_SHARDS");
        assert_eq!(ShardPlan::from_env(), None);
        for off in ["0", "1"] {
            std::env::set_var("FGBD_SIM_SHARDS", off);
            assert_eq!(ShardPlan::from_env(), None, "shards={off} must be off");
        }
        std::env::set_var("FGBD_SIM_SHARDS", "4");
        std::env::set_var("FGBD_SIM_WORKERS", "2");
        let plan = ShardPlan::from_env().expect("sharding on");
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.workers, 2);
        // Oversized shard counts clamp to the id-namespace limit.
        std::env::set_var("FGBD_SIM_SHARDS", "99");
        assert_eq!(ShardPlan::from_env().unwrap().shards, MAX_SIM_SHARDS);

        for (k, v) in saved {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }
}
