//! System configuration: topology, VM sizing, workload, and scenario knobs.
//!
//! The paper's experiments all use the 1L/2S/1L/2S topology of Fig 1(c):
//! one "L" Apache, two "S" Tomcats, one "L" C-JDBC, two "S" MySQLs, each VM
//! pinned to dedicated cores ("L" = 2 cores, "S" = 1 core here). The two
//! case-study knobs are the Tomcat JDK version (GC model) and whether MySQL
//! has SpeedStep enabled (DVFS model).

use fgbd_des::SimDuration;
use serde::{Deserialize, Serialize};

use crate::class::{MixTargets, WorkloadMix};
use crate::dvfs::DvfsConfig;
use crate::gc::GcConfig;

/// Reference CPU clock (Xeon P0 state), MHz.
pub const BASE_MHZ: f64 = 2261.0;

/// One component server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Display name, e.g. `"tomcat-1"`.
    pub name: String,
    /// Tier index: 0 = web, 1 = app, 2 = middleware, 3 = db.
    pub tier: usize,
    /// Pinned CPU cores.
    pub cores: u32,
    /// Base clock, MHz (modulated by DVFS if configured).
    pub base_mhz: f64,
    /// Worker-thread limit; requests beyond it wait in the accept queue.
    pub max_threads: usize,
    /// Accept-queue (listen backlog) capacity. When threads and backlog are
    /// both full, a new connection is refused and the client retries after
    /// the TCP retransmission timeout (web tier; paper §II footnote 1).
    pub backlog: usize,
    /// JVM GC model, if this server runs a JVM.
    pub gc: Option<GcConfig>,
    /// SpeedStep governor, if enabled on this server.
    pub dvfs: Option<DvfsConfig>,
    /// CPU permanently consumed by an on-host monitoring daemon, as a
    /// fraction of one core (the paper's §I overhead: ~6% at 100 ms
    /// sampling, 12% at 20 ms). Zero for passive network tracing.
    pub monitor_overhead: f64,
}

/// Tomcat JDK choice (paper §IV-A/B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Jdk {
    /// JDK 1.5: serial stop-the-world collector.
    Jdk15,
    /// JDK 1.6: concurrent collector.
    Jdk16,
}

/// Client burstiness modulator (Mi et al.-style bursty workloads, which the
/// paper names as the trigger that transient events amplify).
///
/// A global two-state process modulates the instantaneous "think-completion"
/// rate of every user: normal (factor 1) and burst (factor sampled per
/// episode from a bounded Pareto). Implemented by Lewis thinning, so in the
/// normal state think times are exactly exponential with the configured
/// mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Whether the modulator runs at all.
    pub enabled: bool,
    /// Mean dwell time in the normal state.
    pub mean_normal: SimDuration,
    /// Mean dwell time in a burst episode.
    pub mean_burst: SimDuration,
    /// Bounded-Pareto tail index for the episode intensity factor.
    pub factor_alpha: f64,
    /// Minimum episode factor.
    pub factor_min: f64,
    /// Maximum episode factor (also the thinning envelope).
    pub factor_max: f64,
}

impl BurstConfig {
    /// The modulation used in all experiments: episodes every ~2.5 s
    /// lasting ~650 ms with intensity 1.15-2.6x (heavy-tailed) — long and
    /// deep enough for bursts to outrun the DVFS governor's one-rung-per-
    /// period climb and to pile onto GC pauses.
    pub fn paper_default() -> BurstConfig {
        BurstConfig {
            enabled: true,
            mean_normal: SimDuration::from_millis(2_500),
            mean_burst: SimDuration::from_millis(650),
            factor_alpha: 2.2,
            factor_min: 1.15,
            factor_max: 2.6,
        }
    }

    /// No burstiness (pure exponential think times).
    pub fn disabled() -> BurstConfig {
        BurstConfig {
            enabled: false,
            ..BurstConfig::paper_default()
        }
    }
}

/// Payload sizes in bytes, per directed message type; drive the
/// network-utilization columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgSizes {
    /// client → web request.
    pub web_req: u32,
    /// web → client response (full page).
    pub web_resp: u32,
    /// web → app request.
    pub app_req: u32,
    /// app → web response (page body).
    pub app_resp: u32,
    /// app → middleware query.
    pub mw_req: u32,
    /// middleware → app result.
    pub mw_resp: u32,
    /// middleware → db query.
    pub db_req: u32,
    /// db → middleware result.
    pub db_resp: u32,
}

impl MsgSizes {
    /// Sizes calibrated to Table I's network columns at workload 8,000.
    pub fn paper_default() -> MsgSizes {
        MsgSizes {
            web_req: 2_500,
            web_resp: 21_000,
            app_req: 3_300,
            app_resp: 9_500,
            mw_req: 500,
            mw_resp: 800,
            db_req: 450,
            db_resp: 700,
        }
    }
}

/// Complete configuration of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Servers per tier, outermost (web) first. Every tier must be
    /// non-empty.
    pub topology: Vec<Vec<ServerSpec>>,
    /// Request-class mix.
    pub mix: WorkloadMix,
    /// Number of concurrent emulated users ("WL" in the paper).
    pub users: u32,
    /// Mean think time between a user's transactions.
    pub think_time: SimDuration,
    /// One-way network latency per hop.
    pub net_latency: SimDuration,
    /// TCP retransmission timeout for refused connections.
    pub retrans_timeout: SimDuration,
    /// Warm-up excluded from analysis (records are still captured).
    pub warmup: SimDuration,
    /// Measured duration after warm-up.
    pub duration: SimDuration,
    /// Master RNG seed.
    pub seed: u64,
    /// Client burstiness modulation.
    pub burst: BurstConfig,
    /// Message payload sizes.
    pub sizes: MsgSizes,
    /// Period of the built-in CPU-busy sampler feeding `fgbd-metrics`.
    pub cpu_sample_period: SimDuration,
    /// Linear drift of every class's service demand over the run: a value
    /// of 0.5 means demands grow 50% per simulated hour (the paper's
    /// "service time of each class of requests may drift over time (e.g.,
    /// due to changes in the data selectivity)", §III-B). Zero by default.
    pub demand_drift_per_hour: f64,
    /// Session stickiness: probability that a user's next interaction
    /// repeats their previous class instead of a fresh draw from the mix
    /// (RUBBoS users follow page-to-page transitions). Because the
    /// alternative draw is the stationary mix itself, any value in `[0, 1)`
    /// leaves the aggregate class distribution unchanged — it only adds
    /// per-user temporal correlation. Zero (independent draws) by default.
    pub session_stickiness: f64,
    /// Capture interaction messages (disable to save memory in pure
    /// capacity benchmarks).
    pub capture: bool,
}

impl SystemConfig {
    /// The paper's 1L/2S/1L/2S deployment with the standard calibration.
    ///
    /// * `users` — the workload (number of emulated clients).
    /// * `jdk` — Tomcat collector ([`Jdk::Jdk15`] reproduces §IV-A's
    ///   transient bottlenecks; [`Jdk::Jdk16`] is the §IV-B fix).
    /// * `speedstep` — MySQL DVFS ([`true`] reproduces §IV-C;
    ///   [`false`] is the §IV-D fix).
    pub fn paper_1l2s1l2s(users: u32, jdk: Jdk, speedstep: bool, seed: u64) -> SystemConfig {
        let gc = match jdk {
            Jdk::Jdk15 => GcConfig::jdk15_serial(),
            Jdk::Jdk16 => GcConfig::jdk16_concurrent(),
        };
        let dvfs = speedstep.then(DvfsConfig::dell_bios);
        let server =
            |name: &str, tier: usize, cores: u32, threads: usize, backlog: usize| ServerSpec {
                name: name.to_string(),
                tier,
                cores,
                base_mhz: BASE_MHZ,
                max_threads: threads,
                backlog,
                gc: None,
                dvfs: None,
                monitor_overhead: 0.0,
            };
        let topology = vec![
            // Web tier: 1 "L" Apache. The admission point: finite backlog.
            vec![server("apache", 0, 2, 300, 120)],
            // App tier: 2 "S" Tomcats with the selected JVM.
            vec![
                ServerSpec {
                    gc: Some(gc),
                    ..server("tomcat-1", 1, 1, 200, 4096)
                },
                ServerSpec {
                    gc: Some(gc),
                    ..server("tomcat-2", 1, 1, 200, 4096)
                },
            ],
            // Middleware tier: 1 "L" C-JDBC.
            vec![server("cjdbc", 2, 2, 400, 4096)],
            // DB tier: 2 "S" MySQLs with optional SpeedStep.
            vec![
                ServerSpec {
                    dvfs,
                    ..server("mysql-1", 3, 1, 250, 4096)
                },
                ServerSpec {
                    dvfs,
                    ..server("mysql-2", 3, 1, 250, 4096)
                },
            ],
        ];
        SystemConfig {
            topology,
            mix: WorkloadMix::browse_only(MixTargets::paper_calibration()),
            users,
            think_time: SimDuration::from_millis(7_500),
            net_latency: SimDuration::from_micros(100),
            retrans_timeout: SimDuration::from_secs(3),
            warmup: SimDuration::from_secs(30),
            duration: SimDuration::from_secs(180),
            seed,
            burst: BurstConfig::paper_default(),
            sizes: MsgSizes::paper_default(),
            cpu_sample_period: SimDuration::from_millis(50),
            demand_drift_per_hour: 0.0,
            session_stickiness: 0.0,
            capture: true,
        }
    }

    /// The paper topology with `n` Tomcats instead of two — the paper's
    /// §IV-B alternative fix ("simply scaling-out/up the Tomcat tier since
    /// low utilization of Tomcat can reduce the negative impact of JVM
    /// GC").
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn paper_scaled_tomcats(
        users: u32,
        jdk: Jdk,
        speedstep: bool,
        seed: u64,
        n: usize,
    ) -> SystemConfig {
        assert!(n > 0, "need at least one tomcat");
        let mut cfg = SystemConfig::paper_1l2s1l2s(users, jdk, speedstep, seed);
        let template = cfg.topology[1][0].clone();
        cfg.topology[1] = (0..n)
            .map(|i| ServerSpec {
                name: format!("tomcat-{}", i + 1),
                ..template.clone()
            })
            .collect();
        cfg
    }

    /// A classic three-tier deployment (web → app×2 → db×2, no clustering
    /// middleware): the RUBBoS alternative configuration mentioned in
    /// §II-A. The app tier calls the database directly.
    pub fn paper_3tier(users: u32, jdk: Jdk, speedstep: bool, seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper_1l2s1l2s(users, jdk, speedstep, seed);
        // Remove the middleware tier and renumber the db tier.
        cfg.topology.remove(2);
        for s in &mut cfg.topology[2] {
            s.tier = 2;
        }
        cfg
    }

    /// Attaches an on-host sampling monitor consuming `overhead_frac` of
    /// one core to every server (the §I overhead experiment); passive
    /// tracing corresponds to leaving this at zero.
    ///
    /// # Panics
    ///
    /// Panics if `overhead_frac` is not in `[0, 1)`.
    pub fn with_monitoring_overhead(mut self, overhead_frac: f64) -> SystemConfig {
        assert!(
            (0.0..1.0).contains(&overhead_frac),
            "overhead must be a fraction of one core"
        );
        for tier in &mut self.topology {
            for s in tier {
                s.monitor_overhead = overhead_frac;
            }
        }
        self
    }

    /// Total number of servers across tiers.
    pub fn server_count(&self) -> usize {
        self.topology.iter().map(Vec::len).sum()
    }

    /// Checks structural invariants; called by the simulator constructor.
    ///
    /// # Panics
    ///
    /// Panics on an empty topology, an empty tier, zero users, or a
    /// zero-length run.
    pub fn validate(&self) {
        assert!(!self.topology.is_empty(), "topology must have tiers");
        for (i, tier) in self.topology.iter().enumerate() {
            assert!(!tier.is_empty(), "tier {i} has no servers");
            for s in tier {
                assert_eq!(s.tier, i, "server {} has wrong tier index", s.name);
                assert!(s.cores > 0 && s.max_threads > 0, "server {} sizing", s.name);
            }
        }
        assert!(self.users > 0, "need at least one user");
        assert!(!self.duration.is_zero(), "duration must be positive");
        assert!(
            (0.0..1.0).contains(&self.session_stickiness),
            "stickiness must be in [0, 1)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_is_1l2s1l2s() {
        let cfg = SystemConfig::paper_1l2s1l2s(8_000, Jdk::Jdk16, true, 1);
        cfg.validate();
        let sizes: Vec<usize> = cfg.topology.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![1, 2, 1, 2]);
        assert_eq!(cfg.server_count(), 6);
        // L = 2 cores, S = 1 core.
        assert_eq!(cfg.topology[0][0].cores, 2);
        assert_eq!(cfg.topology[1][0].cores, 1);
        assert_eq!(cfg.topology[2][0].cores, 2);
        assert_eq!(cfg.topology[3][1].cores, 1);
    }

    #[test]
    fn jdk_knob_selects_collector() {
        use crate::gc::Collector;
        let a = SystemConfig::paper_1l2s1l2s(1_000, Jdk::Jdk15, false, 1);
        let b = SystemConfig::paper_1l2s1l2s(1_000, Jdk::Jdk16, false, 1);
        assert_eq!(
            a.topology[1][0].gc.unwrap().collector,
            Collector::SerialStopTheWorld
        );
        assert_eq!(
            b.topology[1][0].gc.unwrap().collector,
            Collector::ConcurrentMarkSweep
        );
        // GC only on the app tier.
        assert!(a.topology[0][0].gc.is_none());
        assert!(a.topology[3][0].gc.is_none());
    }

    #[test]
    fn speedstep_knob_selects_dvfs() {
        let on = SystemConfig::paper_1l2s1l2s(1_000, Jdk::Jdk16, true, 1);
        let off = SystemConfig::paper_1l2s1l2s(1_000, Jdk::Jdk16, false, 1);
        assert!(on.topology[3][0].dvfs.is_some());
        assert!(on.topology[3][1].dvfs.is_some());
        assert!(off.topology[3][0].dvfs.is_none());
        // DVFS only on the db tier.
        assert!(on.topology[1][0].dvfs.is_none());
    }

    #[test]
    fn scaled_tomcats_builder() {
        let cfg = SystemConfig::paper_scaled_tomcats(1_000, Jdk::Jdk15, false, 1, 4);
        cfg.validate();
        assert_eq!(cfg.topology[1].len(), 4);
        assert_eq!(cfg.topology[1][3].name, "tomcat-4");
        // All tomcats keep the JVM model.
        assert!(cfg.topology[1].iter().all(|s| s.gc.is_some()));
    }

    #[test]
    fn three_tier_builder_drops_middleware() {
        let cfg = SystemConfig::paper_3tier(1_000, Jdk::Jdk16, false, 1);
        cfg.validate();
        assert_eq!(cfg.topology.len(), 3);
        assert_eq!(cfg.topology[2][0].name, "mysql-1");
        assert_eq!(cfg.topology[2][0].tier, 2);
    }

    #[test]
    fn monitoring_overhead_builder_applies_everywhere() {
        let cfg = SystemConfig::paper_1l2s1l2s(1_000, Jdk::Jdk16, false, 1)
            .with_monitoring_overhead(0.06);
        for tier in &cfg.topology {
            for s in tier {
                assert_eq!(s.monitor_overhead, 0.06);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fraction of one core")]
    fn monitoring_overhead_rejects_full_core() {
        let _ =
            SystemConfig::paper_1l2s1l2s(1_000, Jdk::Jdk16, false, 1).with_monitoring_overhead(1.0);
    }

    #[test]
    #[should_panic(expected = "wrong tier index")]
    fn validate_catches_tier_mismatch() {
        let mut cfg = SystemConfig::paper_1l2s1l2s(100, Jdk::Jdk16, false, 1);
        cfg.topology[2][0].tier = 9;
        cfg.validate();
    }
}
