//! JVM garbage-collection model (paper §IV-A).
//!
//! The paper's first case study: Tomcat on **JDK 1.5** uses a serial,
//! stop-the-world collector; under high request rates it freezes the server
//! for long enough (tens to hundreds of milliseconds) to create transient
//! bottlenecks — intervals with high load and *zero* throughput, the "POIs"
//! of Fig 9(b). Upgrading to **JDK 1.6** (parallel/concurrent collectors)
//! removes the long freezes (Fig 11).
//!
//! The model is allocation-driven: every admitted request allocates a fixed
//! amount of young-generation heap; when the young generation fills, a
//! collection starts:
//!
//! * [`Collector::SerialStopTheWorld`] — the whole server freezes for a
//!   pause whose length grows with the heap collected (log-normal noise).
//! * [`Collector::ConcurrentMarkSweep`] — a short stop-the-world pause, then
//!   a concurrent cycle that steals a fraction of CPU capacity.

use fgbd_des::{Dice, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which collector the server's JVM uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Collector {
    /// JDK 1.5 default: serial, stop-the-world.
    SerialStopTheWorld,
    /// JDK 1.6: mostly-concurrent collection with short pauses.
    ConcurrentMarkSweep,
}

/// GC model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Collector kind.
    pub collector: Collector,
    /// Young-generation size that triggers a collection, in MB.
    pub young_gen_mb: f64,
    /// Heap allocated per admitted request, in MB.
    pub alloc_per_request_mb: f64,
    /// Stop-the-world pause: base component, seconds.
    pub pause_base_s: f64,
    /// Stop-the-world pause: per live (in-flight) request, seconds — GC
    /// cost scales with the live object graph, so pauses lengthen exactly
    /// when the server is busiest.
    pub pause_per_live_s: f64,
    /// Upper bound on the mean stop-the-world pause (the live set cannot
    /// exceed the heap), seconds.
    pub pause_max_s: f64,
    /// Log-normal coefficient of variation of pause lengths.
    pub pause_cv: f64,
    /// Concurrent collector: stop-the-world pause length, seconds.
    pub concurrent_pause_s: f64,
    /// Concurrent collector: fraction of CPU consumed by the background
    /// cycle.
    pub concurrent_tax: f64,
    /// Concurrent collector: background cycle length, seconds.
    pub concurrent_cycle_s: f64,
}

impl GcConfig {
    /// JDK 1.5 model calibrated for the paper's Tomcat: at ~700 pages/s per
    /// node a collection fires roughly every 1.1 s and freezes the JVM for
    /// ~150 ms on average — several consecutive zero-throughput 50 ms
    /// intervals, the POI signature of Fig 9(b).
    pub fn jdk15_serial() -> GcConfig {
        GcConfig {
            collector: Collector::SerialStopTheWorld,
            young_gen_mb: 620.0,
            alloc_per_request_mb: 0.5,
            pause_base_s: 0.020,
            pause_per_live_s: 0.003,
            pause_max_s: 0.250,
            pause_cv: 0.35,
            concurrent_pause_s: 0.0,
            concurrent_tax: 0.0,
            concurrent_cycle_s: 0.0,
        }
    }

    /// JDK 1.6 model: same allocation behaviour, but collections cost a
    /// ~4 ms pause plus a 200 ms background cycle at 10% CPU — too short and
    /// too shallow to register as 50 ms-scale bottlenecks (Fig 11a).
    pub fn jdk16_concurrent() -> GcConfig {
        GcConfig {
            collector: Collector::ConcurrentMarkSweep,
            young_gen_mb: 620.0,
            alloc_per_request_mb: 0.5,
            pause_base_s: 0.0,
            pause_per_live_s: 0.0,
            pause_max_s: 0.220,
            pause_cv: 0.25,
            concurrent_pause_s: 0.004,
            concurrent_tax: 0.10,
            concurrent_cycle_s: 0.200,
        }
    }
}

/// Phase of an in-progress collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPhase {
    /// No collection in progress.
    Idle,
    /// Stop-the-world: all request progress frozen.
    StopTheWorld,
    /// Concurrent background cycle: progress continues at reduced speed.
    ConcurrentCycle,
}

/// One completed collection, for the GC log the paper correlates with load
/// in Fig 10(a). ("JVM provides a logging function which records the
/// starting and ending timestamp of every GC activity.")
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcEvent {
    /// Index of the server that collected.
    pub server: usize,
    /// When the collection began.
    pub start: SimTime,
    /// When the stop-the-world portion ended.
    pub stw_end: SimTime,
    /// When the collection fully ended (== `stw_end` for serial).
    pub end: SimTime,
    /// Heap MB collected.
    pub collected_mb: f64,
}

impl GcEvent {
    /// Seconds of stop-the-world overlap with the window `[from, to)` —
    /// the "GC running ratio" numerator of Fig 10(a).
    pub fn stw_overlap(&self, from: SimTime, to: SimTime) -> f64 {
        let s = self.start.max(from);
        let e = self.stw_end.min(to);
        if e > s {
            (e - s).as_secs_f64()
        } else {
            0.0
        }
    }
}

/// Live GC state for one server.
#[derive(Debug, Clone)]
pub struct GcState {
    /// Model parameters.
    pub config: GcConfig,
    /// Current young-generation occupancy, MB.
    pub heap_mb: f64,
    /// Current phase.
    pub phase: GcPhase,
    /// Start time of the current collection (valid unless idle).
    pub started: SimTime,
    /// Heap being collected by the in-progress collection.
    pub collecting_mb: f64,
}

impl GcState {
    /// Fresh state with an empty young generation.
    pub fn new(config: GcConfig) -> GcState {
        GcState {
            config,
            heap_mb: 0.0,
            phase: GcPhase::Idle,
            started: SimTime::ZERO,
            collecting_mb: 0.0,
        }
    }

    /// Records one admitted request's allocation; returns `true` if this
    /// allocation filled the young generation and a collection must start.
    pub fn allocate(&mut self) -> bool {
        self.heap_mb += self.config.alloc_per_request_mb;
        self.phase == GcPhase::Idle && self.heap_mb >= self.config.young_gen_mb
    }

    /// Begins a collection at `now`; `live_requests` is the number of
    /// in-flight requests (the live-set proxy). Returns the stop-the-world
    /// pause duration.
    ///
    /// # Panics
    ///
    /// Panics if a collection is already in progress.
    pub fn begin(&mut self, now: SimTime, live_requests: usize, dice: &mut Dice) -> SimDuration {
        assert!(self.phase == GcPhase::Idle, "collection already running");
        self.started = now;
        self.collecting_mb = self.heap_mb;
        self.heap_mb = 0.0;
        self.phase = GcPhase::StopTheWorld;
        let mean = match self.config.collector {
            Collector::SerialStopTheWorld => (self.config.pause_base_s
                + self.config.pause_per_live_s * live_requests as f64)
                .min(self.config.pause_max_s),
            Collector::ConcurrentMarkSweep => self.config.concurrent_pause_s,
        };
        let secs = if mean > 0.0 {
            dice.lognormal_mean_cv(mean, self.config.pause_cv)
        } else {
            0.0
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Ends the stop-the-world pause. For the concurrent collector, returns
    /// the background-cycle duration still to run; for serial, returns
    /// `None` (collection complete).
    ///
    /// # Panics
    ///
    /// Panics unless a stop-the-world pause is in progress.
    pub fn end_pause(&mut self) -> Option<SimDuration> {
        assert!(self.phase == GcPhase::StopTheWorld, "no pause in progress");
        match self.config.collector {
            Collector::SerialStopTheWorld => {
                self.phase = GcPhase::Idle;
                None
            }
            Collector::ConcurrentMarkSweep => {
                self.phase = GcPhase::ConcurrentCycle;
                Some(SimDuration::from_secs_f64(self.config.concurrent_cycle_s))
            }
        }
    }

    /// Ends the concurrent background cycle.
    ///
    /// # Panics
    ///
    /// Panics unless a concurrent cycle is in progress.
    pub fn end_cycle(&mut self) {
        assert!(
            self.phase == GcPhase::ConcurrentCycle,
            "no concurrent cycle in progress"
        );
        self.phase = GcPhase::Idle;
    }
}

/// Computes the per-interval stop-the-world GC running ratio for a server —
/// the y-axis of Fig 10(a).
///
/// Returns one ratio in `[0,1]` per interval of length `interval` covering
/// `[from, to)`.
pub fn gc_running_ratio(
    events: &[GcEvent],
    server: usize,
    from: SimTime,
    to: SimTime,
    interval: SimDuration,
) -> Vec<f64> {
    assert!(!interval.is_zero(), "interval must be positive");
    let n = ((to - from).as_micros()).div_ceil(interval.as_micros()) as usize;
    let mut out = vec![0.0; n];
    let ilen = interval.as_secs_f64();
    for ev in events.iter().filter(|e| e.server == server) {
        if ev.stw_end <= from || ev.start >= to {
            continue;
        }
        let first = (ev.start.max(from) - from).as_micros() / interval.as_micros();
        let last =
            ((ev.stw_end.min(to) - from).as_micros().saturating_sub(1)) / interval.as_micros();
        for (i, slot) in out
            .iter_mut()
            .enumerate()
            .take((last as usize + 1).min(n))
            .skip(first as usize)
        {
            let w_from = from + interval * i as u64;
            let w_to = w_from + interval;
            *slot += ev.stw_overlap(w_from, w_to) / ilen;
        }
    }
    for r in &mut out {
        *r = r.min(1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_triggers_at_young_gen_size() {
        let mut st = GcState::new(GcConfig {
            young_gen_mb: 1.0,
            alloc_per_request_mb: 0.4,
            ..GcConfig::jdk15_serial()
        });
        assert!(!st.allocate()); // 0.4
        assert!(!st.allocate()); // 0.8
        assert!(st.allocate()); // 1.2 -> trigger
    }

    #[test]
    fn pause_scales_with_live_set() {
        let mut dice = Dice::seed(9);
        let mut short = 0.0;
        let mut long = 0.0;
        for _ in 0..50 {
            let mut a = GcState::new(GcConfig::jdk15_serial());
            a.heap_mb = 620.0;
            short += a.begin(SimTime::ZERO, 8, &mut dice).as_secs_f64();
            let mut b = GcState::new(GcConfig::jdk15_serial());
            b.heap_mb = 620.0;
            long += b.begin(SimTime::ZERO, 80, &mut dice).as_secs_f64();
        }
        // 30+20 ms vs 30+200 ms on average.
        assert!(long > short * 2.5, "short {short} long {long}");
    }

    #[test]
    fn serial_collection_freezes_then_idles() {
        let mut st = GcState::new(GcConfig::jdk15_serial());
        st.heap_mb = 620.0;
        let mut dice = Dice::seed(1);
        let pause = st.begin(SimTime::ZERO, 40, &mut dice);
        assert!(st.phase == GcPhase::StopTheWorld);
        // ~30ms base + 100ms live component, lognormal noise.
        assert!(pause >= SimDuration::from_millis(40), "pause {pause}");
        assert!(pause <= SimDuration::from_millis(600), "pause {pause}");
        assert_eq!(st.end_pause(), None);
        assert!(st.phase == GcPhase::Idle);
        assert_eq!(st.heap_mb, 0.0);
    }

    #[test]
    fn concurrent_collection_has_short_pause_and_cycle() {
        let mut st = GcState::new(GcConfig::jdk16_concurrent());
        st.heap_mb = 620.0;
        let mut dice = Dice::seed(2);
        let pause = st.begin(SimTime::ZERO, 200, &mut dice);
        assert!(pause <= SimDuration::from_millis(15), "pause {pause}");
        let cycle = st.end_pause().expect("concurrent cycle expected");
        assert_eq!(cycle, SimDuration::from_millis(200));
        assert!(st.phase == GcPhase::ConcurrentCycle);
        st.end_cycle();
        assert!(st.phase == GcPhase::Idle);
    }

    #[test]
    fn allocation_does_not_retrigger_during_collection() {
        let mut st = GcState::new(GcConfig {
            young_gen_mb: 0.5,
            ..GcConfig::jdk15_serial()
        });
        st.heap_mb = 0.6;
        let mut dice = Dice::seed(3);
        st.begin(SimTime::ZERO, 10, &mut dice);
        assert!(!st.allocate(), "must not trigger while collecting");
    }

    #[test]
    fn stw_overlap_clips_to_window() {
        let ev = GcEvent {
            server: 0,
            start: SimTime::from_millis(100),
            stw_end: SimTime::from_millis(250),
            end: SimTime::from_millis(250),
            collected_mb: 10.0,
        };
        let o = ev.stw_overlap(SimTime::from_millis(200), SimTime::from_millis(300));
        assert!((o - 0.050).abs() < 1e-12);
        assert_eq!(
            ev.stw_overlap(SimTime::from_millis(300), SimTime::from_millis(400)),
            0.0
        );
    }

    #[test]
    fn running_ratio_covers_intervals() {
        let events = vec![GcEvent {
            server: 1,
            start: SimTime::from_millis(75),
            stw_end: SimTime::from_millis(175),
            end: SimTime::from_millis(175),
            collected_mb: 5.0,
        }];
        let r = gc_running_ratio(
            &events,
            1,
            SimTime::ZERO,
            SimTime::from_millis(200),
            SimDuration::from_millis(50),
        );
        assert_eq!(r.len(), 4);
        assert!((r[0] - 0.0).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12); // 75..100 of 50..100
        assert!((r[2] - 1.0).abs() < 1e-12); // fully covered
        assert!((r[3] - 0.5).abs() < 1e-12); // 150..175
                                             // Other servers see nothing.
        let r0 = gc_running_ratio(
            &events,
            0,
            SimTime::ZERO,
            SimTime::from_millis(200),
            SimDuration::from_millis(50),
        );
        assert!(r0.iter().all(|&x| x == 0.0));
    }
}
