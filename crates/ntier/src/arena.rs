//! Dense generational slab — the PR 2 dense-index trick applied to the
//! simulator's own per-server visit table.
//!
//! The DES hot path touches a server's live-visit state on every CPU
//! completion, downstream response, and wait expiry. A `HashMap<u64, Visit>`
//! makes each of those a hash + probe; this slab makes them an index deref:
//! a visit's token *is* its slot index (low 32 bits) plus the slot's
//! generation (high 32 bits), so lookup is a bounds check and a generation
//! compare. Vacant slots form an **intrusive free list** — the next-free
//! link lives inside the vacated slot itself, so the allocator needs no
//! side stack and insert/remove never allocate once the slab has reached
//! its steady-state high-water mark (pre-size with
//! [`Slab::with_capacity`] from the config's thread + backlog bound and it
//! never allocates at all).
//!
//! Generations make stale tokens detectable: removing a slot bumps its
//! generation, so a token retained across a remove/reuse cycle misses on
//! the generation compare instead of silently aliasing the new occupant.
//! Tokens are only meaningful within the slab that issued them, which is
//! exactly the simulator's use: every event that carries a visit token
//! carries the owning server index next to it.

/// Sentinel terminating the intrusive free list.
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot<T> {
    /// Bumped on every remove; a token is live iff its generation matches.
    gen: u32,
    /// Intrusive free-list link, meaningful only while vacant.
    next_free: u32,
    val: Option<T>,
}

/// A dense generational slab issuing `u64` tokens.
///
/// # Examples
///
/// ```
/// let mut slab = fgbd_ntier::arena::Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), Some("alpha"));
/// assert_eq!(slab.get(a), None, "stale token misses");
/// let c = slab.insert("gamma"); // reuses slot a under a new generation
/// assert_ne!(a, c);
/// assert_eq!(slab.get(b), Some(&"beta"));
/// assert_eq!(slab.get(c), Some(&"gamma"));
/// ```
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    live: u32,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }

    /// An empty slab with room for `cap` values before any reallocation.
    pub fn with_capacity(cap: usize) -> Slab<T> {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            live: 0,
        }
    }

    fn token(gen: u32, idx: u32) -> u64 {
        (u64::from(gen) << 32) | u64::from(idx)
    }

    fn split(token: u64) -> (u32, u32) {
        ((token >> 32) as u32, token as u32)
    }

    /// Stores `val`, returning its token. Reuses the most recently vacated
    /// slot if any (LIFO keeps the working set dense), else grows.
    pub fn insert(&mut self, val: T) -> u64 {
        self.live += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next_free;
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            Slab::<T>::token(slot.gen, idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            assert_ne!(idx, NIL, "slab exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                next_free: NIL,
                val: Some(val),
            });
            Slab::<T>::token(0, idx)
        }
    }

    /// The value for `token`, or `None` if the token is stale or foreign.
    #[inline]
    pub fn get(&self, token: u64) -> Option<&T> {
        let (gen, idx) = Slab::<T>::split(token);
        match self.slots.get(idx as usize) {
            Some(slot) if slot.gen == gen => slot.val.as_ref(),
            _ => None,
        }
    }

    /// Mutable access to the value for `token`.
    #[inline]
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let (gen, idx) = Slab::<T>::split(token);
        match self.slots.get_mut(idx as usize) {
            Some(slot) if slot.gen == gen => slot.val.as_mut(),
            _ => None,
        }
    }

    /// Removes and returns the value for `token`, pushing its slot onto the
    /// free list under a new generation. Stale tokens return `None`.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let (gen, idx) = Slab::<T>::split(token);
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.gen != gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = idx;
        self.live -= 1;
        Some(val)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// `true` if no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots ever occupied — the steady-state memory high-water mark.
    pub fn high_water(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get_mut(b).map(|v| std::mem::replace(v, 21)), Some(20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(a), None, "double remove misses");
        assert_eq!(slab.get(b), Some(&21));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_reused_lifo_with_fresh_generations() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        slab.remove(b);
        // LIFO: b's slot comes back first.
        let c = slab.insert(3);
        let d = slab.insert(4);
        assert_eq!(slab.high_water(), 2, "no growth on reuse");
        assert_eq!(c & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
        assert_eq!(d & 0xFFFF_FFFF, a & 0xFFFF_FFFF);
        assert_ne!(c, b, "reused slot has a new generation");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), None);
        assert_eq!(slab.get(c), Some(&3));
        assert_eq!(slab.get(d), Some(&4));
    }

    #[test]
    fn stale_token_never_aliases_new_occupant() {
        let mut slab = Slab::new();
        let a = slab.insert("old");
        slab.remove(a);
        let _b = slab.insert("new");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
    }

    #[test]
    fn with_capacity_does_not_grow_within_bound() {
        let mut slab = Slab::with_capacity(8);
        let cap = slab.slots.capacity();
        let tokens: Vec<u64> = (0..8).map(|i| slab.insert(i)).collect();
        for t in tokens {
            slab.remove(t);
        }
        for i in 0..8 {
            slab.insert(i);
        }
        assert_eq!(slab.slots.capacity(), cap);
        assert_eq!(slab.high_water(), 8);
    }

    #[test]
    fn churn_keeps_len_consistent() {
        let mut slab = Slab::with_capacity(4);
        let mut live = Vec::new();
        for round in 0..100u64 {
            live.push(slab.insert(round));
            if round % 3 == 0 {
                let t = live.remove((round as usize * 7) % live.len());
                assert!(slab.remove(t).is_some());
            }
            assert_eq!(slab.len(), live.len());
        }
        for t in live {
            assert!(slab.remove(t).is_some());
        }
        assert!(slab.is_empty());
    }
}
