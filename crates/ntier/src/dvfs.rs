//! DVFS / Intel SpeedStep model (paper §IV-C, Table II).
//!
//! The paper's second case study: the Dell BIOS-level SpeedStep ("demand
//! based switching") governor adjusts the CPU P-state from coarse-grained
//! utilization observations. It is too slow for bursty workloads: by the
//! time it scales up, a queue has already formed — a transient bottleneck.
//! With SpeedStep enabled, MySQL's congested intervals show one throughput
//! plateau per P-state visited (Fig 12); disabling SpeedStep pins P0 and
//! leaves a single plateau (Fig 13).
//!
//! The governor here is a hysteresis ladder, the shape of BIOS-level
//! "demand based switching": every control period it measures utilization;
//! at or above `up_threshold` it climbs **one P-state**, below
//! `down_threshold` it descends one, and in between it holds. Scaling from
//! P8 to P0 through a congestion episode therefore takes several control
//! periods — the sluggishness the paper blames — and the power-greedy
//! descent drops the clock on every quiet window, re-creating the mismatch
//! as soon as the next burst arrives.

use fgbd_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One ACPI P-state: a named clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// ACPI name, e.g. `"P0"`.
    pub name: &'static str,
    /// Core clock in MHz (= megacycles per second).
    pub mhz: f64,
}

/// The P-states of the paper's Xeon CPUs (Table II), fastest first.
pub const XEON_PSTATES: [PState; 5] = [
    PState {
        name: "P0",
        mhz: 2261.0,
    },
    PState {
        name: "P1",
        mhz: 2128.0,
    },
    PState {
        name: "P4",
        mhz: 1729.0,
    },
    PState {
        name: "P5",
        mhz: 1596.0,
    },
    PState {
        name: "P8",
        mhz: 1197.0,
    },
];

/// Governor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsConfig {
    /// How often the BIOS algorithm re-evaluates (its sluggishness).
    pub control_period: SimDuration,
    /// Utilization at or above this climbs one P-state.
    pub up_threshold: f64,
    /// Utilization below this descends one P-state; between the two
    /// thresholds the governor holds.
    pub down_threshold: f64,
    /// P-state index at boot (into [`XEON_PSTATES`]), typically the slowest.
    pub start_index: usize,
}

impl DvfsConfig {
    /// The Dell BIOS demand-based-switching model used in the experiments:
    /// a 200 ms control period — slow against the 50 ms bursts it must
    /// follow — and one rung per period on the way up, so scaling P8 -> P0
    /// through a congestion episode takes ~0.8 s.
    pub fn dell_bios() -> DvfsConfig {
        DvfsConfig {
            control_period: SimDuration::from_millis(200),
            up_threshold: 0.97,
            down_threshold: 0.90,
            start_index: XEON_PSTATES.len() - 1,
        }
    }
}

/// One governor decision, logged for Fig 12's plateau attribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PStateSample {
    /// Index of the server whose governor decided.
    pub server: usize,
    /// Decision time (end of the control window).
    pub at: SimTime,
    /// Utilization observed over the window just ended.
    pub util: f64,
    /// P-state index selected for the next window.
    pub pstate: usize,
    /// Clock of the selected P-state, MHz.
    pub mhz: f64,
}

/// Live governor state for one server.
#[derive(Debug, Clone)]
pub struct DvfsState {
    /// Parameters.
    pub config: DvfsConfig,
    /// Current P-state index into [`XEON_PSTATES`].
    pub index: usize,
    /// `busy_core_seconds` reading at the start of the current window.
    pub window_busy_start: f64,
    /// Time the current window started.
    pub window_start: SimTime,
}

impl DvfsState {
    /// Fresh governor state.
    ///
    /// # Panics
    ///
    /// Panics if `config.start_index` is out of range.
    pub fn new(config: DvfsConfig) -> DvfsState {
        assert!(config.start_index < XEON_PSTATES.len(), "bad start index");
        DvfsState {
            config,
            index: config.start_index,
            window_busy_start: 0.0,
            window_start: SimTime::ZERO,
        }
    }

    /// Current clock in MHz.
    pub fn mhz(&self) -> f64 {
        XEON_PSTATES[self.index].mhz
    }

    /// Runs one governor decision at `now`. `busy_core_seconds` is the
    /// server's cumulative busy integral; `cores` its core count. Returns
    /// the new P-state index (which may equal the old one) and the window
    /// utilization it was based on.
    pub fn tick(&mut self, now: SimTime, busy_core_seconds: f64, cores: u32) -> (usize, f64) {
        let dt = now.saturating_since(self.window_start).as_secs_f64();
        let util = if dt > 0.0 {
            ((busy_core_seconds - self.window_busy_start) / (f64::from(cores) * dt)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.window_busy_start = busy_core_seconds;
        self.window_start = now;
        self.index = self.decide(util);
        (self.index, util)
    }

    /// The decision rule, separated for direct testing: one rung up on
    /// saturation, one rung down on a quiet window, hold in the hysteresis
    /// band.
    pub fn decide(&self, util: f64) -> usize {
        if util >= self.config.up_threshold {
            self.index.saturating_sub(1)
        } else if util < self.config.down_threshold {
            (self.index + 1).min(XEON_PSTATES.len() - 1)
        } else {
            self.index
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_clocks() {
        assert_eq!(XEON_PSTATES[0].mhz, 2261.0);
        assert_eq!(XEON_PSTATES[4].mhz, 1197.0);
        assert_eq!(XEON_PSTATES[4].name, "P8");
        // Fastest first, strictly decreasing.
        for w in XEON_PSTATES.windows(2) {
            assert!(w[0].mhz > w[1].mhz);
        }
    }

    #[test]
    fn high_util_climbs_one_state_per_tick() {
        let mut st = DvfsState::new(DvfsConfig::dell_bios());
        assert_eq!(st.index, 4); // boots at P8
        let (idx, util) = st.tick(SimTime::from_millis(200), 0.198, 1);
        assert!((util - 0.99).abs() < 1e-12);
        assert_eq!(idx, 3); // one rung up the ladder: P8 -> P5
        assert_eq!(st.mhz(), 1596.0);
        // Sustained saturation reaches P0 only after several periods.
        for step in [2usize, 1, 0, 0] {
            let busy = st.window_busy_start + 0.2;
            let (idx, _) = st.tick(st.window_start + SimDuration::from_millis(200), busy, 1);
            assert_eq!(idx, step);
        }
        assert_eq!(st.mhz(), 2261.0);
        // And quiet windows walk it back down one rung at a time.
        for step in [1usize, 2, 3, 4, 4] {
            let busy = st.window_busy_start + 0.05; // util 0.25
            let (idx, _) = st.tick(st.window_start + SimDuration::from_millis(200), busy, 1);
            assert_eq!(idx, step);
        }
    }

    #[test]
    fn low_util_descends_one_rung() {
        let cfg = DvfsConfig::dell_bios();
        let mut st = DvfsState::new(cfg);
        st.index = 0; // at P0
        assert_eq!(st.decide(0.40), 1); // one rung toward power saving
        st.index = 1;
        assert_eq!(st.decide(0.40), 2);
        st.index = 4; // already slowest
        assert_eq!(st.decide(0.10), 4);
    }

    #[test]
    fn hysteresis_band_holds_current_state() {
        let cfg = DvfsConfig::dell_bios();
        let mut st = DvfsState::new(cfg);
        st.index = 3; // P5
        assert_eq!(st.decide(0.91), 3);
        assert_eq!(st.decide(0.95), 3);
        assert_eq!(st.decide(0.89), 4); // just under the band: descend
        assert_eq!(st.decide(0.97), 2); // at the top: climb
    }

    #[test]
    fn tick_computes_window_utilization() {
        let mut st = DvfsState::new(DvfsConfig::dell_bios());
        st.window_busy_start = 1.0;
        st.window_start = SimTime::from_secs(1);
        // 0.1 busy core-seconds over 0.2 s on 1 core = util 0.5.
        let (idx, util) = st.tick(SimTime::from_millis(1200), 1.1, 1);
        assert!((util - 0.5).abs() < 1e-9);
        // Quiet window at P8: already the slowest state, stays.
        assert_eq!(idx, 4);
        assert_eq!(st.window_busy_start, 1.1);
        assert_eq!(st.window_start, SimTime::from_millis(1200));
    }

    #[test]
    fn util_is_clamped() {
        let mut st = DvfsState::new(DvfsConfig::dell_bios());
        // Pathological busy > wall time must not panic or overshoot.
        let (idx, util) = st.tick(SimTime::from_millis(200), 99.0, 1);
        assert_eq!(util, 1.0);
        assert_eq!(idx, 3); // one rung up from P8
    }
}
