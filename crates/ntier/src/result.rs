//! Run outputs: everything the analysis and experiment harness consume.

use fgbd_des::{SimDuration, SimTime};
use fgbd_trace::{NodeId, TraceLog};
use serde::{Deserialize, Serialize};

use crate::dvfs::PStateSample;
use crate::gc::GcEvent;

/// One completed client transaction, as the workload generator saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSample {
    /// Emulated user index.
    pub user: u32,
    /// Request class.
    pub class: u16,
    /// When the user first attempted the request (including refused
    /// connection attempts).
    pub started: SimTime,
    /// When the response reached the user.
    pub finished: SimTime,
    /// TCP connection attempts that were refused and retransmitted.
    pub retries: u32,
}

impl TxnSample {
    /// End-to-end response time.
    pub fn response_time(&self) -> SimDuration {
        self.finished - self.started
    }
}

/// Static description of one simulated server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// Display name.
    pub name: String,
    /// Tier index.
    pub tier: usize,
    /// Trace node id.
    pub node: NodeId,
    /// Pinned cores.
    pub cores: u32,
    /// Worker-thread limit.
    pub max_threads: usize,
}

/// Cumulative CPU-busy reading for one server at one sample instant —
/// the raw material for both the coarse "sysstat" view (Fig 3, Table I) and
/// the governor's utilization windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSample {
    /// Sample time.
    pub at: SimTime,
    /// Cumulative busy core-seconds (monotone non-decreasing).
    pub busy_core_seconds: f64,
}

/// Everything produced by one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Per-server static info, in node order.
    pub servers: Vec<ServerInfo>,
    /// The passive network capture.
    pub log: TraceLog,
    /// Client-side transaction samples.
    pub txns: Vec<TxnSample>,
    /// JVM GC log across servers.
    pub gc_events: Vec<GcEvent>,
    /// DVFS governor decisions across servers.
    pub pstate_log: Vec<PStateSample>,
    /// Cumulative CPU-busy samples per server (aligned with `servers`).
    pub cpu_busy: Vec<Vec<CpuSample>>,
    /// (received, sent) payload bytes per server.
    pub net_bytes: Vec<(u64, u64)>,
    /// Completed request visits per server.
    pub completed_visits: Vec<u64>,
    /// Total refused-connection retransmissions.
    pub retransmissions: u64,
    /// End of the warm-up period.
    pub warmup_end: SimTime,
    /// End of the measured period (the run horizon).
    pub horizon: SimTime,
}

impl RunResult {
    /// The index (into [`RunResult::servers`]) of the server named `name`.
    pub fn server_index(&self, name: &str) -> Option<usize> {
        self.servers.iter().position(|s| s.name == name)
    }

    /// The trace node id of the server named `name`.
    pub fn node_of(&self, name: &str) -> Option<NodeId> {
        self.server_index(name).map(|i| self.servers[i].node)
    }

    /// Transactions that finished inside the measured window.
    pub fn measured_txns(&self) -> impl Iterator<Item = &TxnSample> {
        self.txns
            .iter()
            .filter(|t| t.finished >= self.warmup_end && t.finished < self.horizon)
    }

    /// Overall measured throughput in transactions per second.
    pub fn throughput(&self) -> f64 {
        let secs = (self.horizon - self.warmup_end).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.measured_txns().count() as f64 / secs
    }

    /// Mean end-to-end response time over the measured window, seconds.
    pub fn mean_response_time(&self) -> f64 {
        let mut n = 0u64;
        let mut sum = 0.0;
        for t in self.measured_txns() {
            n += 1;
            sum += t.response_time().as_secs_f64();
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Fraction of measured transactions with response time above
    /// `threshold` (Fig 2b uses 2 s).
    pub fn frac_slower_than(&self, threshold: SimDuration) -> f64 {
        let mut n = 0u64;
        let mut slow = 0u64;
        for t in self.measured_txns() {
            n += 1;
            if t.response_time() > threshold {
                slow += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            slow as f64 / n as f64
        }
    }

    /// Mean CPU utilization of server `idx` over the measured window, in
    /// `[0, 1]`, derived from the cumulative busy samples.
    pub fn mean_cpu_util(&self, idx: usize) -> f64 {
        let samples = &self.cpu_busy[idx];
        let cores = f64::from(self.servers[idx].cores);
        let in_window: Vec<&CpuSample> = samples
            .iter()
            .filter(|s| s.at >= self.warmup_end && s.at <= self.horizon)
            .collect();
        let (Some(first), Some(last)) = (in_window.first(), in_window.last()) else {
            return 0.0;
        };
        let dt = (last.at - first.at).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        ((last.busy_core_seconds - first.busy_core_seconds) / (cores * dt)).clamp(0.0, 1.0)
    }
}
