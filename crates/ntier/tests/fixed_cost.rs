//! Fleet fixed-cost accounting: periodic events that fire regardless of
//! load are tracked under `shard.fixed_cost_events`, and the sharded
//! runner strides the CPU-busy sampler so the fleet-wide sampler budget
//! does not grow with the pod count.
//!
//! Lives in its own integration-test binary: the counter registry is
//! process-global and these assertions need exclusive deltas.

use fgbd_ntier::config::{BurstConfig, Jdk, SystemConfig};
use fgbd_ntier::shard::{run_sharded, ShardPlan};

fn quiet_cfg(seed: u64) -> SystemConfig {
    // No DVFS (speedstep off) and no burst modulator: the only periodic
    // fixed-cost event left is the CPU-busy sampler, which is exactly the
    // one run_sharded strides.
    let mut cfg = SystemConfig::paper_1l2s1l2s(40, Jdk::Jdk16, false, seed);
    cfg.burst = BurstConfig::disabled();
    cfg.warmup = fgbd_des::SimDuration::from_secs(1);
    cfg.duration = fgbd_des::SimDuration::from_secs(9);
    cfg.capture = false;
    cfg
}

fn fixed_cost_of(shards: usize) -> u64 {
    let before = fgbd_obsv::metrics::snapshot();
    run_sharded(quiet_cfg(7), &ShardPlan::new(shards));
    let delta = fgbd_obsv::metrics::snapshot().delta(&before);
    delta
        .counters
        .get("shard.fixed_cost_events")
        .copied()
        .unwrap_or(0)
}

#[test]
fn strided_sampling_keeps_fleet_fixed_cost_flat() {
    // Run sequentially within one test: the counter registry is shared.
    let one_pod = fixed_cost_of(1);
    let four_pods = fixed_cost_of(4);
    assert!(one_pod > 0, "the sampler must tick at least once");
    // Without striding a 4-pod fleet fires ~4× the sampler events; with
    // it, each pod samples at 4× the period, so the fleet total matches a
    // single pod's (±1 per pod for horizon-edge ticks).
    assert!(
        four_pods <= one_pod + 4,
        "fleet fixed cost grew with the pod count: 1 pod = {one_pod}, 4 pods = {four_pods}"
    );
    assert!(
        four_pods >= one_pod / 2,
        "striding overshot: 1 pod = {one_pod}, 4 pods = {four_pods}"
    );
}
