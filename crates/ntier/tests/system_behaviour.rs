//! End-to-end behavioural tests of the n-tier simulator: calibration,
//! conservation, determinism, and the two transient-event models.

use fgbd_des::SimDuration;
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::system::NTierSystem;
use fgbd_trace::reconstruct::{Accuracy, Heuristic, Reconstruction};
use fgbd_trace::{MsgKind, SpanSet};

fn quick_cfg(users: u32, jdk: Jdk, speedstep: bool, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_1l2s1l2s(users, jdk, speedstep, seed);
    cfg.warmup = SimDuration::from_secs(5);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

#[test]
fn low_load_throughput_matches_closed_loop_law() {
    // 600 users, ~7.5 s think, negligible response time: X ~ N / Z.
    let res = NTierSystem::run(quick_cfg(600, Jdk::Jdk16, false, 7));
    let x = res.throughput();
    let expected = 600.0 / 7.5;
    assert!(
        (x - expected).abs() / expected < 0.15,
        "throughput {x} vs expected {expected}"
    );
    // Response times at low load are a few ms to tens of ms.
    let rt = res.mean_response_time();
    assert!(rt > 0.003 && rt < 0.2, "mean rt {rt}");
    assert_eq!(res.retransmissions, 0, "no refused connections at low load");
}

#[test]
fn span_extraction_matches_completed_visits() {
    let res = NTierSystem::run(quick_cfg(300, Jdk::Jdk16, false, 11));
    let spans = SpanSet::extract(&res.log);
    for (i, info) in res.servers.iter().enumerate() {
        let n_spans = spans.server(info.node).len() as u64;
        let completed = res.completed_visits[i];
        assert_eq!(
            n_spans, completed,
            "{}: spans {} vs completed {}",
            info.name, n_spans, completed
        );
        // In-flight requests at the horizon are the only unmatched ones.
        let unmatched = spans.unmatched.get(&info.node).copied().unwrap_or(0);
        assert!(unmatched < 600, "{}: unmatched {}", info.name, unmatched);
    }
}

#[test]
fn request_response_counts_are_conserved() {
    let res = NTierSystem::run(quick_cfg(300, Jdk::Jdk16, false, 13));
    let mut req = 0u64;
    let mut resp = 0u64;
    for r in &res.log.records {
        match r.kind {
            MsgKind::Request => req += 1,
            MsgKind::Response => resp += 1,
        }
    }
    assert!(req >= resp, "responses cannot outnumber requests");
    assert!(
        req - resp < 2_000,
        "too many in-flight at horizon: {}",
        req - resp
    );
    // Every transaction involves >= 4 request messages (one per tier).
    assert!(req as usize >= 4 * res.txns.len());
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = NTierSystem::run(quick_cfg(200, Jdk::Jdk15, true, 99));
    let b = NTierSystem::run(quick_cfg(200, Jdk::Jdk15, true, 99));
    assert_eq!(a.log.records.len(), b.log.records.len());
    assert_eq!(a.txns.len(), b.txns.len());
    assert_eq!(a.completed_visits, b.completed_visits);
    assert_eq!(a.gc_events.len(), b.gc_events.len());
    assert_eq!(a.pstate_log.len(), b.pstate_log.len());
    for (x, y) in a.log.records.iter().zip(&b.log.records) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_differ() {
    let a = NTierSystem::run(quick_cfg(200, Jdk::Jdk16, false, 1));
    let b = NTierSystem::run(quick_cfg(200, Jdk::Jdk16, false, 2));
    assert_ne!(a.txns.len(), 0);
    assert!(
        a.log.records.len() != b.log.records.len()
            || a.txns.iter().zip(&b.txns).any(|(x, y)| x != y),
        "different seeds produced identical runs"
    );
}

#[test]
fn jdk15_freezes_are_long_jdk16_short() {
    // High enough load that the serial collector's live-set-scaled pauses
    // reach the paper's tens-of-milliseconds regime.
    let old = NTierSystem::run(quick_cfg(6_000, Jdk::Jdk15, false, 21));
    let new = NTierSystem::run(quick_cfg(6_000, Jdk::Jdk16, false, 21));
    assert!(!old.gc_events.is_empty(), "JDK 1.5 run had no collections");
    assert!(!new.gc_events.is_empty(), "JDK 1.6 run had no collections");
    let mean_stw = |events: &[fgbd_ntier::GcEvent]| {
        events
            .iter()
            .map(|e| (e.stw_end - e.start).as_secs_f64())
            .sum::<f64>()
            / events.len() as f64
    };
    let stw_old = mean_stw(&old.gc_events);
    let stw_new = mean_stw(&new.gc_events);
    assert!(stw_old > 0.03, "serial pauses too short: {stw_old}");
    assert!(stw_new < 0.02, "concurrent pauses too long: {stw_new}");
    assert!(stw_old > 5.0 * stw_new, "old {stw_old} vs new {stw_new}");
}

#[test]
fn speedstep_governor_reacts_to_load() {
    // Enough load that MySQL cannot stay in P8 the whole run.
    let mut cfg = quick_cfg(9_000, Jdk::Jdk16, true, 31);
    cfg.duration = SimDuration::from_secs(30);
    let res = NTierSystem::run(cfg);
    assert!(!res.pstate_log.is_empty(), "governor never ticked");
    let states: std::collections::HashSet<usize> =
        res.pstate_log.iter().map(|p| p.pstate).collect();
    assert!(
        states.len() >= 2,
        "governor never changed P-state: {states:?}"
    );
    // Disabled SpeedStep never logs.
    let off = NTierSystem::run(quick_cfg(1_000, Jdk::Jdk16, false, 31));
    assert!(off.pstate_log.is_empty());
}

#[test]
fn utilization_scales_with_workload() {
    let lo = NTierSystem::run(quick_cfg(1_000, Jdk::Jdk16, false, 41));
    let hi = NTierSystem::run(quick_cfg(4_000, Jdk::Jdk16, false, 41));
    let tomcat_lo = lo.mean_cpu_util(lo.server_index("tomcat-1").unwrap());
    let tomcat_hi = hi.mean_cpu_util(hi.server_index("tomcat-1").unwrap());
    assert!(tomcat_hi > tomcat_lo * 2.0, "lo {tomcat_lo} hi {tomcat_hi}");
    // Tomcat is the hottest tier.
    let apache_hi = hi.mean_cpu_util(hi.server_index("apache").unwrap());
    assert!(
        tomcat_hi > apache_hi,
        "tomcat {tomcat_hi} apache {apache_hi}"
    );
}

#[test]
fn reconstruction_accuracy_is_high_on_real_traffic() {
    let res = NTierSystem::run(quick_cfg(2_000, Jdk::Jdk16, false, 51));
    let rec = Reconstruction::run(&res.log, Heuristic::LongestQuiescent);
    let acc = Accuracy::evaluate(&rec);
    assert!(acc.edges > 10_000, "too few edges scored: {}", acc.edges);
    assert!(
        acc.edge_accuracy > 0.97,
        "edge accuracy {} too low (paper reports >99%)",
        acc.edge_accuracy
    );
}

#[test]
fn saturation_limits_throughput() {
    // Far beyond the ~1,418 pages/s Tomcat capacity: throughput must cap.
    let res = NTierSystem::run(quick_cfg(14_000, Jdk::Jdk16, false, 61));
    let x = res.throughput();
    assert!(x > 900.0, "saturated throughput collapsed: {x}");
    assert!(x < 1_600.0, "throughput above capacity: {x}");
    // And response times are far above the low-load regime.
    assert!(
        res.mean_response_time() > 0.5,
        "rt {}",
        res.mean_response_time()
    );
    assert!(res.retransmissions > 0, "no admission pushback at WL 14000");
}

#[test]
fn sticky_sessions_preserve_the_mix_but_add_correlation() {
    let run_with = |stickiness: f64| {
        let mut cfg = SystemConfig::paper_1l2s1l2s(400, Jdk::Jdk16, false, 71);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.duration = SimDuration::from_secs(40);
        cfg.session_stickiness = stickiness;
        cfg.capture = false;
        NTierSystem::run(cfg)
    };
    let iid = run_with(0.0);
    let sticky = run_with(0.7);

    // The aggregate class distribution is (statistically) unchanged.
    let hist = |res: &fgbd_ntier::RunResult| {
        let mut h = vec![0usize; 24];
        for t in &res.txns {
            h[usize::from(t.class)] += 1;
        }
        let total: usize = h.iter().sum();
        h.into_iter()
            .map(|c| c as f64 / total as f64)
            .collect::<Vec<f64>>()
    };
    let hi = hist(&iid);
    let hs = hist(&sticky);
    let max_diff = hi
        .iter()
        .zip(&hs)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max_diff < 0.03, "mix shifted by {max_diff}");

    // But per-user repeats are far more common when sticky.
    let repeat_rate = |res: &fgbd_ntier::RunResult| {
        let mut by_user: std::collections::HashMap<u32, Vec<(fgbd_des::SimTime, u16)>> =
            std::collections::HashMap::new();
        for t in &res.txns {
            by_user
                .entry(t.user)
                .or_default()
                .push((t.started, t.class));
        }
        let mut repeats = 0usize;
        let mut pairs = 0usize;
        for seq in by_user.values_mut() {
            seq.sort();
            for w in seq.windows(2) {
                pairs += 1;
                if w[0].1 == w[1].1 {
                    repeats += 1;
                }
            }
        }
        repeats as f64 / pairs.max(1) as f64
    };
    let r_iid = repeat_rate(&iid);
    let r_sticky = repeat_rate(&sticky);
    assert!(
        r_sticky > r_iid + 0.4,
        "stickiness had no effect: {r_iid} vs {r_sticky}"
    );
}
