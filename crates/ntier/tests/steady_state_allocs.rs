//! Verifies the zero-allocation ingestion fast path on the simulator side:
//! once the default scenario reaches steady state (queue capacities grown,
//! connection pools warmed, PS heaps at working size), the event loop
//! performs essentially no heap allocation per event. The only residual
//! allocations are the amortized doublings of the result-recording vectors
//! (transaction samples, GC events, CPU samples), which is why the bound is
//! a small fraction of the event count rather than exactly zero.
//!
//! The counting allocator is `fgbd_obsv::alloc::AllocGauge` — the same
//! opt-in gauge the observability crate offers every binary. This test
//! lives in its own integration-test binary because a `#[global_allocator]`
//! counts for the whole process.
//!
//! Telemetry stays at its default (enabled) here, so the bound also proves
//! the instrumented event loop stays allocation-free at steady state: the
//! one-time counter/histogram registrations land in the warmup window.

use fgbd_des::{EventQueue, JobId, PsIntegrator, SimDuration, SimTime, Simulation};
use fgbd_ntier::arena::Slab;
use fgbd_ntier::{Ev, Jdk, NTierSystem, SystemConfig};
use fgbd_obsv::alloc::AllocGauge;

#[global_allocator]
static GLOBAL: AllocGauge = AllocGauge::new();

#[test]
fn warmed_event_queue_holds_without_allocating() {
    // The timing wheel keeps drained bucket capacity (and `with_capacity`
    // pre-sizes the level-0 buckets), so a warmed queue runs the hold cycle
    // — pop the earliest, schedule a successor — without touching the
    // allocator, including across cascades and idle re-anchoring.
    let mut q = EventQueue::with_capacity(4_096);
    let mut now = SimTime::ZERO;
    let step = |i: u64| SimDuration::from_micros(1 + (i * 7_919) % 50_000);
    for i in 0..4_096u64 {
        q.schedule(now + step(i), i);
    }
    // Warm up: one full generation of pops lets every bucket the pattern
    // touches reach its working size.
    for i in 0..100_000u64 {
        let (t, e) = q.pop().unwrap();
        now = t;
        q.schedule(now + step(i.wrapping_mul(31) + e), e);
    }
    let allocs_before = GLOBAL.allocs();
    for i in 0..100_000u64 {
        let (t, e) = q.pop().unwrap();
        now = t;
        q.schedule(now + step(i.wrapping_mul(17) + e), e);
    }
    let allocs = GLOBAL.allocs() - allocs_before;
    assert!(
        allocs < 100,
        "steady-state queue hold allocated {allocs} times over 100k ops"
    );
}

#[test]
fn warmed_visit_slab_reuses_slots_without_allocating() {
    // The visit arena hands back freed slots LIFO, so a churn pattern whose
    // live population never exceeds the high-water mark runs entirely on
    // recycled slots — zero allocator traffic after warmup, generation
    // bumps and all.
    let mut slab: Slab<[u64; 6]> = Slab::with_capacity(64);
    let mut live = Vec::with_capacity(512);
    for i in 0..512u64 {
        live.push(slab.insert([i; 6]));
    }
    // Warm up: drive the population up and down once so the free list and
    // token vec reach working size.
    for i in 0..10_000u64 {
        let victim = live.swap_remove((i.wrapping_mul(2_654_435_761) as usize) % live.len());
        slab.remove(victim).unwrap();
        live.push(slab.insert([i; 6]));
    }
    let allocs_before = GLOBAL.allocs();
    for i in 0..100_000u64 {
        let victim = live.swap_remove((i.wrapping_mul(2_654_435_761) as usize) % live.len());
        slab.remove(victim).unwrap();
        live.push(slab.insert([i; 6]));
    }
    let allocs = GLOBAL.allocs() - allocs_before;
    assert_eq!(
        allocs, 0,
        "steady-state slab churn allocated {allocs} times over 100k remove+insert pairs"
    );
}

#[test]
fn warmed_ps_lanes_hold_without_allocating() {
    // The lane-based PS integrator appends to per-class `VecDeque` lanes
    // and drains completions through a caller-owned buffer; once lanes and
    // the spill heap reach working size, an insert/complete hold cycle is
    // allocation-free.
    let mut ps = PsIntegrator::with_lanes(1_000.0, 2, 4);
    let mut now = SimTime::ZERO;
    let mut done = Vec::with_capacity(64);
    let mut next_id = 0u64;
    let mut hold = |ps: &mut PsIntegrator, now: &mut SimTime, done: &mut Vec<JobId>, n: u64| {
        for i in 0..n {
            let demand = 1.0 + (i % 13) as f64;
            ps.insert_lane(*now, JobId(next_id), demand, (i % 4) as usize);
            next_id += 1;
            if let Some(due) = ps.next_completion(*now) {
                if i % 3 != 0 {
                    *now = due;
                    ps.pop_due_into(*now, done);
                }
            }
        }
        while let Some(due) = ps.next_completion(*now) {
            *now = due;
            ps.pop_due_into(*now, done);
        }
    };
    hold(&mut ps, &mut now, &mut done, 10_000);
    let allocs_before = GLOBAL.allocs();
    hold(&mut ps, &mut now, &mut done, 100_000);
    let allocs = GLOBAL.allocs() - allocs_before;
    assert!(
        allocs < 100,
        "steady-state PS hold allocated {allocs} times over 100k jobs"
    );
}

#[test]
fn steady_state_event_loop_is_allocation_free() {
    let mut cfg = SystemConfig::paper_1l2s1l2s(100, Jdk::Jdk16, false, 7);
    // Capture mode intentionally appends one record per message; the
    // allocation-free claim is about the event loop itself.
    cfg.capture = false;

    let mut sim = Simulation::new(NTierSystem::new(cfg));
    sim.prime(SimTime::ZERO, Ev::Boot);
    // Warm up: grow event-queue/PS-heap capacities, connection pools, visit
    // tables, the first result-vector doublings, and the one-time telemetry
    // registry entries.
    sim.run_until(SimTime::from_secs(20));

    let events_before = sim.events_processed();
    let allocs_before = GLOBAL.allocs();
    sim.run_until(SimTime::from_secs(60));
    let events = sim.events_processed() - events_before;
    let allocs = GLOBAL.allocs() - allocs_before;

    assert!(
        events > 20_000,
        "window too small to judge: {events} events"
    );
    assert!(
        (allocs as f64) < (events as f64) * 0.01,
        "steady-state loop allocated too often: {allocs} allocations over {events} events"
    );
}

#[test]
fn steady_state_loop_stays_allocation_free_under_dvfs_and_gc_churn() {
    // SpeedStep transitions and stop-the-world collections are exactly the
    // schedules that exercise the completion-token reuse/stale paths and
    // the PS spill heap (freezes break lane monotonicity), so the <1%
    // allocs/event bound must hold under them too — reuse checks, token
    // bumps, and spills are all field writes, never allocations.
    let mut cfg = SystemConfig::paper_1l2s1l2s(100, Jdk::Jdk16, true, 11);
    cfg.capture = false;

    let mut sim = Simulation::new(NTierSystem::new(cfg));
    sim.prime(SimTime::ZERO, Ev::Boot);
    sim.run_until(SimTime::from_secs(20));

    let events_before = sim.events_processed();
    let allocs_before = GLOBAL.allocs();
    sim.run_until(SimTime::from_secs(60));
    let events = sim.events_processed() - events_before;
    let allocs = GLOBAL.allocs() - allocs_before;

    assert!(
        events > 20_000,
        "window too small to judge: {events} events"
    );
    assert!(
        (allocs as f64) < (events as f64) * 0.01,
        "DVFS/GC steady state allocated too often: {allocs} allocations over {events} events"
    );
}
