//! Verifies the zero-allocation ingestion fast path on the simulator side:
//! once the default scenario reaches steady state (queue capacities grown,
//! connection pools warmed, PS heaps at working size), the event loop
//! performs essentially no heap allocation per event. The only residual
//! allocations are the amortized doublings of the result-recording vectors
//! (transaction samples, GC events, CPU samples), which is why the bound is
//! a small fraction of the event count rather than exactly zero.
//!
//! This test lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]` for the whole process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fgbd_des::{SimTime, Simulation};
use fgbd_ntier::{Ev, Jdk, NTierSystem, SystemConfig};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to `System` for every operation; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_event_loop_is_allocation_free() {
    let mut cfg = SystemConfig::paper_1l2s1l2s(100, Jdk::Jdk16, false, 7);
    // Capture mode intentionally appends one record per message; the
    // allocation-free claim is about the event loop itself.
    cfg.capture = false;

    let mut sim = Simulation::new(NTierSystem::new(cfg));
    sim.prime(SimTime::ZERO, Ev::Boot);
    // Warm up: grow event-queue/PS-heap capacities, connection pools, visit
    // tables, and the first result-vector doublings.
    sim.run_until(SimTime::from_secs(20));

    let events_before = sim.events_processed();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    sim.run_until(SimTime::from_secs(60));
    let events = sim.events_processed() - events_before;
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;

    assert!(
        events > 20_000,
        "window too small to judge: {events} events"
    );
    assert!(
        (allocs as f64) < (events as f64) * 0.01,
        "steady-state loop allocated too often: {allocs} allocations over {events} events"
    );
}
