//! Verifies the zero-allocation ingestion fast path on the simulator side:
//! once the default scenario reaches steady state (queue capacities grown,
//! connection pools warmed, PS heaps at working size), the event loop
//! performs essentially no heap allocation per event. The only residual
//! allocations are the amortized doublings of the result-recording vectors
//! (transaction samples, GC events, CPU samples), which is why the bound is
//! a small fraction of the event count rather than exactly zero.
//!
//! The counting allocator is `fgbd_obsv::alloc::AllocGauge` — the same
//! opt-in gauge the observability crate offers every binary. This test
//! lives in its own integration-test binary because a `#[global_allocator]`
//! counts for the whole process.
//!
//! Telemetry stays at its default (enabled) here, so the bound also proves
//! the instrumented event loop stays allocation-free at steady state: the
//! one-time counter/histogram registrations land in the warmup window.

use fgbd_des::{EventQueue, SimDuration, SimTime, Simulation};
use fgbd_ntier::{Ev, Jdk, NTierSystem, SystemConfig};
use fgbd_obsv::alloc::AllocGauge;

#[global_allocator]
static GLOBAL: AllocGauge = AllocGauge::new();

#[test]
fn warmed_event_queue_holds_without_allocating() {
    // The timing wheel keeps drained bucket capacity (and `with_capacity`
    // pre-sizes the level-0 buckets), so a warmed queue runs the hold cycle
    // — pop the earliest, schedule a successor — without touching the
    // allocator, including across cascades and idle re-anchoring.
    let mut q = EventQueue::with_capacity(4_096);
    let mut now = SimTime::ZERO;
    let step = |i: u64| SimDuration::from_micros(1 + (i * 7_919) % 50_000);
    for i in 0..4_096u64 {
        q.schedule(now + step(i), i);
    }
    // Warm up: one full generation of pops lets every bucket the pattern
    // touches reach its working size.
    for i in 0..100_000u64 {
        let (t, e) = q.pop().unwrap();
        now = t;
        q.schedule(now + step(i.wrapping_mul(31) + e), e);
    }
    let allocs_before = GLOBAL.allocs();
    for i in 0..100_000u64 {
        let (t, e) = q.pop().unwrap();
        now = t;
        q.schedule(now + step(i.wrapping_mul(17) + e), e);
    }
    let allocs = GLOBAL.allocs() - allocs_before;
    assert!(
        allocs < 100,
        "steady-state queue hold allocated {allocs} times over 100k ops"
    );
}

#[test]
fn steady_state_event_loop_is_allocation_free() {
    let mut cfg = SystemConfig::paper_1l2s1l2s(100, Jdk::Jdk16, false, 7);
    // Capture mode intentionally appends one record per message; the
    // allocation-free claim is about the event loop itself.
    cfg.capture = false;

    let mut sim = Simulation::new(NTierSystem::new(cfg));
    sim.prime(SimTime::ZERO, Ev::Boot);
    // Warm up: grow event-queue/PS-heap capacities, connection pools, visit
    // tables, the first result-vector doublings, and the one-time telemetry
    // registry entries.
    sim.run_until(SimTime::from_secs(20));

    let events_before = sim.events_processed();
    let allocs_before = GLOBAL.allocs();
    sim.run_until(SimTime::from_secs(60));
    let events = sim.events_processed() - events_before;
    let allocs = GLOBAL.allocs() - allocs_before;

    assert!(
        events > 20_000,
        "window too small to judge: {events} events"
    );
    assert!(
        (allocs as f64) < (events as f64) * 0.01,
        "steady-state loop allocated too often: {allocs} allocations over {events} events"
    );
}
