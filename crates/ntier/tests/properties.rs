//! Property-based robustness tests of the whole simulator: arbitrary small
//! configurations must run to completion with conserved bookkeeping.

use fgbd_des::SimDuration;
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::system::NTierSystem;
use fgbd_trace::{MsgKind, SpanSet};
use proptest::prelude::*;

fn run_small(
    users: u32,
    jdk: Jdk,
    speedstep: bool,
    tomcats: usize,
    seed: u64,
) -> fgbd_ntier::RunResult {
    let mut cfg = SystemConfig::paper_scaled_tomcats(users, jdk, speedstep, seed, tomcats);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.duration = SimDuration::from_secs(4);
    NTierSystem::run(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any small configuration completes, and its capture is internally
    /// consistent: requests >= responses, spans causal, completions
    /// conserved across the tap and the servers' own counters.
    #[test]
    fn simulator_invariants_hold(
        users in 20u32..250,
        jdk_flag in prop::bool::ANY,
        speedstep in prop::bool::ANY,
        tomcats in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let jdk = if jdk_flag { Jdk::Jdk15 } else { Jdk::Jdk16 };
        let res = run_small(users, jdk, speedstep, tomcats, seed);
        prop_assert!(res.throughput() > 0.0, "no throughput at all");

        let mut req = 0u64;
        let mut resp = 0u64;
        let mut prev = fgbd_des::SimTime::ZERO;
        for r in &res.log.records {
            prop_assert!(r.at >= prev, "capture out of order");
            prev = r.at;
            match r.kind {
                MsgKind::Request => req += 1,
                MsgKind::Response => resp += 1,
            }
        }
        prop_assert!(req >= resp);

        let spans = SpanSet::extract(&res.log);
        for (i, info) in res.servers.iter().enumerate() {
            let n = spans.server(info.node).len() as u64;
            prop_assert_eq!(
                n,
                res.completed_visits[i],
                "span/visit mismatch at {}",
                &info.name
            );
            for s in spans.server(info.node) {
                prop_assert!(s.departure > s.arrival);
            }
        }

        // CPU busy integrals are monotone.
        for series in &res.cpu_busy {
            for w in series.windows(2) {
                prop_assert!(w[1].busy_core_seconds >= w[0].busy_core_seconds - 1e-9);
            }
        }

        // Client samples are causal and within the horizon.
        for t in &res.txns {
            prop_assert!(t.finished >= t.started);
            prop_assert!(t.finished <= res.horizon);
        }
    }

    /// Determinism across reruns for arbitrary configurations.
    #[test]
    fn arbitrary_configs_are_deterministic(
        users in 20u32..150,
        speedstep in prop::bool::ANY,
        seed in 0u64..500,
    ) {
        let a = run_small(users, Jdk::Jdk15, speedstep, 2, seed);
        let b = run_small(users, Jdk::Jdk15, speedstep, 2, seed);
        prop_assert_eq!(a.log.records.len(), b.log.records.len());
        prop_assert_eq!(a.txns, b.txns);
        prop_assert_eq!(a.completed_visits, b.completed_visits);
    }
}
