//! Integration tests for the population-sharded parallel simulator:
//! one-pod equivalence with the sequential reference, worker-count
//! invariance, and fleet-level conservation laws.

use fgbd_des::SimDuration;
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::result::RunResult;
use fgbd_ntier::shard::{run_sharded, split_users, ShardPlan};
use fgbd_ntier::system::NTierSystem;
use fgbd_trace::merge::SHARD_CONN_SHIFT;
use fgbd_trace::SpanSet;

fn quick_cfg(users: u32, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_1l2s1l2s(users, Jdk::Jdk16, false, seed);
    cfg.warmup = SimDuration::from_secs(4);
    cfg.duration = SimDuration::from_secs(12);
    cfg
}

/// Field-by-field byte equality of two run results (`RunResult` holds
/// floats, so it deliberately has no blanket `Eq`; the simulator is
/// deterministic, so exact comparison is the right bar here).
fn assert_same_result(a: &RunResult, b: &RunResult) {
    assert_eq!(a.servers, b.servers);
    assert_eq!(a.log.nodes, b.log.nodes);
    assert_eq!(a.log.records, b.log.records);
    assert_eq!(a.txns, b.txns);
    assert_eq!(a.gc_events, b.gc_events);
    assert_eq!(a.pstate_log, b.pstate_log);
    assert_eq!(a.cpu_busy, b.cpu_busy);
    assert_eq!(a.net_bytes, b.net_bytes);
    assert_eq!(a.completed_visits, b.completed_visits);
    assert_eq!(a.retransmissions, b.retransmissions);
    assert_eq!(a.warmup_end, b.warmup_end);
    assert_eq!(a.horizon, b.horizon);
}

#[test]
fn one_pod_run_equals_sequential_byte_for_byte() {
    let sequential = NTierSystem::run(quick_cfg(200, 31));
    let sharded = run_sharded(
        quick_cfg(200, 31),
        &ShardPlan {
            shards: 1,
            workers: 4,
        },
    );
    assert_same_result(&sequential, &sharded);
}

#[test]
fn worker_count_never_changes_the_output() {
    let runs: Vec<RunResult> = [1usize, 2, 4]
        .into_iter()
        .map(|workers| run_sharded(quick_cfg(240, 17), &ShardPlan { shards: 4, workers }))
        .collect();
    assert_same_result(&runs[0], &runs[1]);
    assert_same_result(&runs[0], &runs[2]);
}

#[test]
fn repeated_sharded_runs_are_deterministic() {
    let a = run_sharded(quick_cfg(150, 5), &ShardPlan::new(3));
    let b = run_sharded(quick_cfg(150, 5), &ShardPlan::new(3));
    assert_same_result(&a, &b);
}

#[test]
fn fleet_conserves_population_and_remaps_users() {
    let users = 230u32;
    let shards = 4usize;
    let res = run_sharded(quick_cfg(users, 23), &ShardPlan::new(shards));

    // Every transaction belongs to a global user id below the population,
    // and every pod's id range shows up.
    let shares = split_users(users, shards);
    assert!(res.txns.iter().all(|t| t.user < users));
    let mut base = 0u32;
    for &share in &shares {
        assert!(
            res.txns
                .iter()
                .any(|t| (base..base + share).contains(&t.user)),
            "no transactions from the pod starting at user {base}"
        );
        base += share;
    }

    // Transactions come out in completion order.
    assert!(res.txns.windows(2).all(|w| w[0].finished <= w[1].finished));

    // The merged capture is tap-ordered, every shard tag is in range, and
    // the merged log still pairs into spans (ids never alias).
    assert!(res.log.records.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(res
        .log
        .records
        .iter()
        .all(|r| (r.conn.0 >> SHARD_CONN_SHIFT) < shards as u32));
    let spans = SpanSet::extract(&res.log);
    for (i, info) in res.servers.iter().enumerate() {
        assert_eq!(
            spans.server(info.node).len() as u64,
            res.completed_visits[i],
            "{}: merged spans vs completed visits",
            info.name
        );
    }

    // Closed-loop sanity: a fleet of 4 quarter-populations still pushes
    // roughly N/Z through (pods are smaller, so waiting is no worse).
    let x = res.throughput();
    let expected = f64::from(users) / 7.5;
    assert!(
        (x - expected).abs() / expected < 0.2,
        "fleet throughput {x} vs {expected}"
    );
}

#[test]
fn changing_shard_count_keeps_pod_zero_stream() {
    // The K=2 run's pod 0 and the K=3 run's pod 0 simulate different
    // population shares, but their seeds agree (stream 0 of the master
    // seed) — pinned here via the pod-0 connection ids' low bits being
    // identical prefixes is too strong; instead check the documented
    // contract directly.
    use fgbd_des::Dice;
    let root = 20130708u64;
    let k2_pod0 = Dice::stream_seed(root, 0);
    let k3_pod0 = Dice::stream_seed(root, 0);
    assert_eq!(k2_pod0, k3_pod0);
    // And distinct pods never share a seed.
    let seeds: Vec<u64> = (0..15).map(|p| Dice::stream_seed(root, p)).collect();
    let mut dedup = seeds.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), seeds.len(), "pod seeds collide");
}
