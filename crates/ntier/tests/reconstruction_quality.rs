//! Reconstruction-heuristic comparison on realistic simulated traffic.
//!
//! The paper reports SysViz achieves >99% transaction-trace reconstruction
//! accuracy on a 4-tier application under high concurrent workload; our
//! profile-guided black-box reconstructor reaches the same regime, and the
//! simpler baselines rank as expected.

use fgbd_des::SimDuration;
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::system::NTierSystem;
use fgbd_trace::reconstruct::{Accuracy, Heuristic, Reconstruction};

#[test]
fn heuristic_accuracy_ranking_matches_design() {
    let mut cfg = SystemConfig::paper_1l2s1l2s(2_000, Jdk::Jdk16, false, 51);
    cfg.warmup = SimDuration::from_secs(5);
    cfg.duration = SimDuration::from_secs(20);
    let res = NTierSystem::run(cfg);

    let score = |h: Heuristic| {
        let rec = Reconstruction::run(&res.log, h);
        Accuracy::evaluate(&rec)
    };
    let guided = score(Heuristic::ProfileGuided);
    let quiescent = score(Heuristic::LongestQuiescent);
    let recent = score(Heuristic::MostRecent);
    let fifo = score(Heuristic::Fifo);

    // The paper's regime: >99% for the full reconstructor.
    assert!(
        guided.edge_accuracy > 0.98,
        "profile-guided edge accuracy {}",
        guided.edge_accuracy
    );
    assert!(
        guided.txn_accuracy > 0.90,
        "txn accuracy {}",
        guided.txn_accuracy
    );
    // Learned fan-out caps must not hurt the base heuristic.
    assert!(guided.edge_accuracy >= quiescent.edge_accuracy);
    // The processor-sharing-aware tiebreak beats both naive baselines.
    assert!(quiescent.edge_accuracy > recent.edge_accuracy + 0.02);
    assert!(quiescent.edge_accuracy > fifo.edge_accuracy + 0.02);
    // All heuristics see the same span population.
    assert_eq!(guided.edges, fifo.edges);
    assert!(guided.edges > 10_000);
}

/// Reconstruction accuracy degrades gracefully with concurrency: still in
/// the paper's >99% regime at moderate load and above 95% even near
/// saturation.
#[test]
fn accuracy_degrades_gracefully_with_concurrency() {
    let mut previous = 1.0f64;
    for users in [500u32, 2_000, 5_000] {
        let mut cfg = SystemConfig::paper_1l2s1l2s(users, Jdk::Jdk16, false, 77);
        cfg.warmup = SimDuration::from_secs(5);
        cfg.duration = SimDuration::from_secs(15);
        let res = NTierSystem::run(cfg);
        let rec = Reconstruction::run(&res.log, Heuristic::ProfileGuided);
        let acc = Accuracy::evaluate(&rec);
        assert!(
            acc.edge_accuracy > 0.95,
            "WL {users}: accuracy {} below floor",
            acc.edge_accuracy
        );
        // Monotone within a small tolerance (higher concurrency can only
        // add ambiguity).
        assert!(
            acc.edge_accuracy <= previous + 0.01,
            "WL {users}: accuracy {} rose implausibly from {previous}",
            acc.edge_accuracy
        );
        previous = acc.edge_accuracy;
    }
}
