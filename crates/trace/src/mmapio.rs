//! Zero-copy capture input: memory-mapped files behind a plain `&[u8]`.
//!
//! Every random-access capture reader in this crate ([`crate::capture2`])
//! already consumes a byte slice, so the only thing standing between a
//! multi-GB capture and flat-memory analysis is how those bytes get into
//! the address space. [`Mapping`] answers with `mmap(2)` on 64-bit Linux —
//! the file's pages are borrowed from the page cache instead of copied
//! onto the heap — and falls back to one `fs::read` everywhere else, so
//! callers never branch on platform: they open a path, get a `&[u8]`, and
//! hand it to the same slice-based readers either way.
//!
//! The module is dependency-free by design (this workspace vendors no
//! `libc`): the three syscalls used — `mmap`, `munmap`, `madvise` — are
//! declared directly against the platform C library that `std` already
//! links.
//!
//! Two operational details matter for the analysis pipeline:
//!
//! * **Lifetime.** A `Mapping` must outlive every slice borrowed from it;
//!   the borrow checker enforces this because access goes through
//!   `Deref<Target = [u8]>`. Truncating a mapped file under a live reader
//!   is undefined at the OS level (`SIGBUS` on touch) — captures are
//!   sealed (footer written) before they are mapped, and the `--follow`
//!   tail path never maps a still-growing file.
//! * **Residency.** Touched pages of a file-backed mapping count toward
//!   RSS until reclaimed, so a sequential scan of a huge capture would
//!   still show a file-sized `VmHWM`. [`Mapping::release_until`] gives
//!   pages back eagerly (`madvise(MADV_DONTNEED)` on the consumed prefix —
//!   safe for a private read-only file mapping: a re-touch simply
//!   re-faults from the page cache), which is what keeps the chunk
//!   cursor's peak memory independent of capture size.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `true` when `FGBD_CAPTURE_MMAP` is `1`/`true`/`on` — the opt-in gate
/// for the zero-copy analysis path (the heap-read batch path stays the
/// default and the byte-identity reference).
pub fn mmap_from_env() -> bool {
    matches!(
        std::env::var("FGBD_CAPTURE_MMAP").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    )
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_DONTNEED: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        pub fn sysconf(name: c_int) -> i64;
    }

    /// `_SC_PAGESIZE`.
    pub const SC_PAGESIZE: c_int = 30;

    pub fn page_size() -> usize {
        // SAFETY: sysconf(_SC_PAGESIZE) has no preconditions.
        let ps = unsafe { sysconf(SC_PAGESIZE) };
        if ps > 0 {
            ps as usize
        } else {
            4096
        }
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1 || p.is_null()
    }
}

enum MapInner {
    /// A live `mmap` region (base pointer is page-aligned, owned here).
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
    /// Heap fallback: empty files, non-Linux hosts, or a failed `mmap`.
    Heap(Vec<u8>),
}

// SAFETY: the mapped region is PROT_READ and never handed out mutably;
// sharing immutable views of it across threads is as safe as sharing a
// `&[u8]` (which the parallel chunk decoder already does).
unsafe impl Send for MapInner {}
unsafe impl Sync for MapInner {}

/// A read-only view of a capture file: memory-mapped where possible,
/// heap-read otherwise. Dereferences to `&[u8]`.
pub struct Mapping {
    inner: MapInner,
    /// Bytes already handed back to the OS (page-floored watermark for
    /// [`Mapping::release_until`]); atomic so release can run while the
    /// slice is borrowed elsewhere.
    released: AtomicUsize,
}

impl Mapping {
    /// Opens `path` for zero-copy reading. On 64-bit Linux this maps the
    /// file (`PROT_READ`, `MAP_PRIVATE`); elsewhere — and for empty files
    /// or on any `mmap` failure — it falls back to reading the file onto
    /// the heap, which is always correct, just not zero-copy.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (open/metadata/read).
    pub fn open(path: &Path) -> io::Result<Mapping> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Self::from_file(&file, len, path)
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    fn from_file(file: &File, len: u64, path: &Path) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        let Ok(len_usize) = usize::try_from(len) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "capture does not fit the address space",
            ));
        };
        if len_usize == 0 {
            return Ok(Mapping::heap(Vec::new()));
        }
        // SAFETY: fd is a valid open file, len is its current size, and
        // the resulting region is only ever read. A concurrent truncation
        // would SIGBUS — documented constraint: map sealed captures only.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len_usize,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) {
            // e.g. ENODEV on filesystems without mmap support — fall back.
            return Ok(Mapping::heap(std::fs::read(path)?));
        }
        Ok(Mapping {
            inner: MapInner::Mapped {
                ptr: ptr as *const u8,
                len: len_usize,
            },
            released: AtomicUsize::new(0),
        })
    }

    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    fn from_file(_file: &File, _len: u64, path: &Path) -> io::Result<Mapping> {
        Ok(Mapping::heap(std::fs::read(path)?))
    }

    /// Wraps already-materialized bytes (the portable fallback). Public so
    /// tests can exercise consumers with both backings.
    pub fn heap(bytes: Vec<u8>) -> Mapping {
        Mapping {
            inner: MapInner::Heap(bytes),
            released: AtomicUsize::new(0),
        }
    }

    /// `true` when the bytes are an actual `mmap` region (false on the
    /// heap fallback) — telemetry only, consumers behave identically.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            MapInner::Mapped { .. } => true,
            MapInner::Heap(_) => false,
        }
    }

    /// Hints the kernel that access will be a forward scan
    /// (`madvise(MADV_SEQUENTIAL)`: aggressive readahead, early reclaim).
    /// No-op on the heap fallback.
    pub fn advise_sequential(&self) {
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        if let MapInner::Mapped { ptr, len } = self.inner {
            // SAFETY: advising our own live mapping; madvise never
            // invalidates the region.
            unsafe { sys::madvise(ptr as *mut _, len, sys::MADV_SEQUENTIAL) };
        }
    }

    /// Returns the pages of `self[..offset]` to the OS
    /// (`madvise(MADV_DONTNEED)`, rounded down to a page boundary). Call
    /// as a sequential consumer advances so peak RSS tracks the *unread*
    /// working set instead of the whole file. Safe at any time: a later
    /// re-read of a released page re-faults from the page cache. No-op on
    /// the heap fallback (freeing heap prefixes is not possible).
    pub fn release_until(&self, offset: usize) {
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        if let MapInner::Mapped { ptr, len } = self.inner {
            let page = sys::page_size();
            let target = (offset.min(len) / page) * page;
            let from = self.released.load(Ordering::Relaxed);
            if target <= from {
                return;
            }
            self.released.store(target, Ordering::Relaxed);
            // SAFETY: [from, target) lies inside our live mapping and is
            // page-aligned; DONTNEED on a private read-only file mapping
            // drops clean pages without changing the region's validity.
            unsafe {
                sys::madvise(
                    (ptr as *mut u8).add(from) as *mut _,
                    target - from,
                    sys::MADV_DONTNEED,
                )
            };
        }
        #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
        {
            let _ = offset;
            let _ = &self.released;
        }
    }
}

impl Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            MapInner::Mapped { ptr, len } => {
                // SAFETY: ptr/len describe a live PROT_READ mapping owned
                // by `self`; the slice cannot outlive it.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            MapInner::Heap(v) => v,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        if let MapInner::Mapped { ptr, len } = self.inner {
            // SAFETY: unmapping exactly the region mmap returned.
            unsafe { sys::munmap(ptr as *mut _, len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("fgbd_mmapio_{}_{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn maps_and_reads_back_exactly() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let path = tmp("roundtrip", &data);
        let map = Mapping::open(&path).unwrap();
        assert_eq!(&*map, data.as_slice());
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        assert!(map.is_mapped());
        // Hints must not perturb the contents.
        map.advise_sequential();
        map.release_until(data.len());
        assert_eq!(&*map, data.as_slice());
        drop(map);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_takes_the_heap_path() {
        let path = tmp("empty", &[]);
        let map = Mapping::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn heap_backing_behaves_identically() {
        let map = Mapping::heap(vec![1, 2, 3]);
        assert_eq!(&*map, &[1, 2, 3]);
        map.advise_sequential();
        map.release_until(2);
        assert_eq!(&*map, &[1, 2, 3]);
    }

    #[test]
    fn env_gate_parses_the_usual_spellings() {
        // Env set/unset dance: serialize against any future env-touching
        // test in this crate.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (v, want) in [("1", true), ("on", true), ("true", true), ("0", false)] {
            std::env::set_var("FGBD_CAPTURE_MMAP", v);
            assert_eq!(mmap_from_env(), want, "value {v}");
        }
        std::env::remove_var("FGBD_CAPTURE_MMAP");
        assert!(!mmap_from_env());
    }
}
