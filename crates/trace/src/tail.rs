//! Tailing a capture file while it is still being written.
//!
//! [`TailReader`] wraps any [`Read`] (a plain file, a FIFO, a socket) and
//! converts *transient* end-of-file into polling: when the inner reader
//! reports EOF, it sleeps [`TailConfig::poll`] and retries, giving up —
//! and surfacing a real EOF — only after [`TailConfig::idle`] elapses with
//! no new bytes. Any byte that does arrive resets the idle budget.
//!
//! This is what lets the streaming decoders tail a growing capture: wrap
//! the file in a `TailReader` and hand it to
//! [`crate::capture::read_capture_tapped`] — each FGBDCAP2 chunk (or
//! FGBDCAP1 record) is decoded and tapped as soon as its bytes land, and
//! the decode loop terminates normally when the writer's footer appears.
//! For a FIFO or socket the kernel already blocks reads until data
//! arrives, so the poll path simply never triggers; the wrapper stays
//! correct either way.

use std::io::Read;
use std::path::Path;
use std::time::{Duration, Instant};

/// Polling parameters for [`TailReader`].
#[derive(Debug, Clone, Copy)]
pub struct TailConfig {
    /// Sleep between polls after a transient EOF.
    pub poll: Duration,
    /// Give up (report true EOF) after this long with no new bytes.
    pub idle: Duration,
}

impl Default for TailConfig {
    fn default() -> TailConfig {
        TailConfig {
            poll: Duration::from_millis(25),
            idle: Duration::from_secs(5),
        }
    }
}

impl TailConfig {
    /// Defaults overridden by `FGBD_FOLLOW_POLL_MS` and
    /// `FGBD_FOLLOW_IDLE_MS`.
    pub fn from_env() -> TailConfig {
        let mut cfg = TailConfig::default();
        if let Some(ms) = env_ms("FGBD_FOLLOW_POLL_MS") {
            cfg.poll = Duration::from_millis(ms);
        }
        if let Some(ms) = env_ms("FGBD_FOLLOW_IDLE_MS") {
            cfg.idle = Duration::from_millis(ms);
        }
        cfg
    }
}

fn env_ms(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

/// A [`Read`] adapter that polls through transient EOFs (see the module
/// docs).
#[derive(Debug)]
pub struct TailReader<R> {
    inner: R,
    cfg: TailConfig,
}

impl<R: Read> TailReader<R> {
    /// Wraps `inner` with the given polling parameters.
    pub fn new(inner: R, cfg: TailConfig) -> TailReader<R> {
        TailReader { inner, cfg }
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for TailReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = Instant::now() + self.cfg.idle;
        loop {
            let n = self.inner.read(buf)?;
            if n > 0 {
                return Ok(n);
            }
            if Instant::now() >= deadline {
                return Ok(0);
            }
            std::thread::sleep(self.cfg.poll);
        }
    }
}

/// Waits for `path` to exist (the writer may not have created it yet when
/// a `--follow` session starts), polling with `cfg.poll` up to `cfg.idle`.
/// Returns `true` once the file exists.
pub fn wait_for_file(path: &Path, cfg: TailConfig) -> bool {
    let deadline = Instant::now() + cfg.idle;
    loop {
        if path.exists() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(cfg.poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn fast() -> TailConfig {
        TailConfig {
            poll: Duration::from_millis(2),
            idle: Duration::from_millis(200),
        }
    }

    #[test]
    fn reads_bytes_appended_after_eof() {
        let dir = std::env::temp_dir().join(format!("fgbd-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grow.bin");
        std::fs::write(&path, b"abc").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let mut tail = TailReader::new(file, fast());
        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .unwrap();
            f.write_all(b"defgh").unwrap();
        });
        let mut out = Vec::new();
        let mut buf = [0u8; 4];
        loop {
            let n = tail.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
            if out.len() >= 8 {
                break;
            }
        }
        writer.join().unwrap();
        assert_eq!(&out, b"abcdefgh");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_budget_turns_into_real_eof() {
        let data: &[u8] = b"xy";
        let mut tail = TailReader::new(
            data,
            TailConfig {
                poll: Duration::from_millis(1),
                idle: Duration::from_millis(10),
            },
        );
        let mut out = Vec::new();
        let started = Instant::now();
        tail.read_to_end(&mut out).unwrap();
        assert_eq!(&out, b"xy");
        // Gave up after roughly the idle budget, not immediately and not
        // forever.
        assert!(started.elapsed() >= Duration::from_millis(10));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn wait_for_file_sees_late_creation() {
        let dir = std::env::temp_dir().join(format!("fgbd-tailwait-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.bin");
        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            std::fs::write(&writer_path, b"now").unwrap();
        });
        assert!(wait_for_file(&path, fast()));
        writer.join().unwrap();
        assert!(!wait_for_file(
            &dir.join("never.bin"),
            TailConfig {
                poll: Duration::from_millis(1),
                idle: Duration::from_millis(15),
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
