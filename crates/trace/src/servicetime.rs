//! Per-class service-time approximation (paper §III-B, "Service time
//! approximation").
//!
//! Throughput normalization needs, for every `(server, class)`, the *service
//! time* — the intra-node delay a request of that class experiences when no
//! queueing is present. The paper measures it online from the passive trace
//! "when the production system is under low workload in order to mask out
//! the queueing effects inside a server", and recomputes it as service times
//! drift.
//!
//! Here the intra-node delay of a reconstructed span is its residence time
//! minus the residence of its direct children (time the thread was blocked
//! downstream, which includes two network hops per call — a small known bias
//! documented on [`ServiceTimeTable::approximate`]). A low quantile over the
//! observed delays approximates the queueing-free service time.

use std::collections::HashMap;

use fgbd_des::{SimDuration, SimTime};

use crate::reconstruct::Reconstruction;
use crate::record::{ClassId, NodeId};

/// Per-`(server, class)` service-time estimates in seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceTimeTable {
    map: HashMap<(NodeId, ClassId), f64>,
}

impl ServiceTimeTable {
    /// An empty table (populate with [`ServiceTimeTable::insert`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimates service times from a reconstruction, taking the `quantile`
    /// (in `[0,1]`; the paper's low-load measurement corresponds to a low
    /// quantile such as 0.1) of intra-node delays per `(server, class)`.
    ///
    /// The intra-node delay subtracts direct children's residence times, so
    /// it over-counts by one network round-trip per downstream call; with
    /// LAN latencies (hundreds of microseconds) against millisecond service
    /// times this bias is small and constant per class, which normalization
    /// tolerates.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]`.
    pub fn approximate(rec: &Reconstruction, quantile: f64) -> Self {
        Self::approximate_window(rec, quantile, SimTime::ZERO, SimTime::MAX)
    }

    /// Like [`ServiceTimeTable::approximate`], restricted to spans arriving
    /// in `[from, to)` — used to calibrate on a known low-load window or to
    /// track service-time drift.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]`.
    pub fn approximate_window(
        rec: &Reconstruction,
        quantile: f64,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
        // Sum of child residences per parent span.
        let mut child_wait = vec![0.0f64; rec.spans.len()];
        for s in &rec.spans {
            if let (Some(p), Some(dep)) = (s.parent, s.departure) {
                child_wait[p] += (dep - s.arrival).as_secs_f64();
            }
        }
        let mut samples: HashMap<(NodeId, ClassId), Vec<f64>> = HashMap::new();
        for (i, s) in rec.spans.iter().enumerate() {
            let Some(dep) = s.departure else { continue };
            if s.arrival < from || s.arrival >= to {
                continue;
            }
            let intra = (dep - s.arrival).as_secs_f64() - child_wait[i];
            if intra > 0.0 {
                samples.entry((s.server, s.class)).or_default().push(intra);
            }
        }
        let mut map = HashMap::new();
        for (key, mut xs) in samples {
            xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN delays"));
            let idx = ((xs.len() - 1) as f64 * quantile).round() as usize;
            map.insert(key, xs[idx]);
        }
        ServiceTimeTable { map }
    }

    /// Sets the service time for `(server, class)` directly (synthetic
    /// workloads, tests).
    pub fn insert(&mut self, server: NodeId, class: ClassId, service: SimDuration) {
        self.map.insert((server, class), service.as_secs_f64());
    }

    /// The estimated service time, if that class was observed on that
    /// server.
    pub fn get(&self, server: NodeId, class: ClassId) -> Option<SimDuration> {
        self.map
            .get(&(server, class))
            .map(|&s| SimDuration::from_secs_f64(s))
    }

    /// Service time in fractional seconds (convenient for normalization
    /// arithmetic).
    pub fn get_secs(&self, server: NodeId, class: ClassId) -> Option<f64> {
        self.map.get(&(server, class)).copied()
    }

    /// Classes observed on `server`, ascending.
    pub fn classes(&self, server: NodeId) -> Vec<ClassId> {
        let mut cs: Vec<ClassId> = self
            .map
            .keys()
            .filter(|(s, _)| *s == server)
            .map(|(_, c)| *c)
            .collect();
        cs.sort();
        cs
    }

    /// The paper's *work unit* for a server: the greatest common divisor of
    /// its classes' service times (§III-B; e.g. 30 ms and 10 ms → 10 ms).
    ///
    /// Real-valued times have no exact GCD, so times are first rounded to
    /// `resolution`; the result is never smaller than `resolution`.
    ///
    /// Returns `None` if no class was observed on `server`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn work_unit(&self, server: NodeId, resolution: SimDuration) -> Option<SimDuration> {
        assert!(!resolution.is_zero(), "resolution must be positive");
        let res = resolution.as_micros();
        let mut g: Option<u64> = None;
        for (&(s, _), &secs) in &self.map {
            if s != server {
                continue;
            }
            let q = ((secs * 1e6 / res as f64).round() as u64).max(1) * res;
            g = Some(match g {
                None => q,
                Some(prev) => gcd(prev, q),
            });
        }
        g.map(|us| SimDuration::from_micros(us.max(res)))
    }

    /// Number of `(server, class)` entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::{Heuristic, Reconstruction};
    use crate::record::{MsgKind, MsgRecord, NodeKind, NodeMeta, TraceLog, TxnId};
    use crate::ConnId;

    const CLIENT: NodeId = NodeId(0);
    const WEB: NodeId = NodeId(1);
    const APP: NodeId = NodeId(2);

    fn nodes() -> Vec<NodeMeta> {
        vec![
            NodeMeta {
                id: CLIENT,
                name: "client".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: WEB,
                name: "web".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
            NodeMeta {
                id: APP,
                name: "app".into(),
                kind: NodeKind::Server,
                tier: Some(1),
            },
        ]
    }

    fn rec(
        at: u64,
        src: NodeId,
        dst: NodeId,
        kind: MsgKind,
        conn: u32,
        class: u16,
        truth: u64,
    ) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at),
            src,
            dst,
            kind,
            conn: ConnId(conn),
            class: ClassId(class),
            bytes: 64,
            truth: Some(TxnId(truth)),
        }
    }

    /// One serial transaction: web residence 100us around an app call of
    /// 40us -> web intra-node delay 60us; app service 40us.
    fn one_txn(log: &mut TraceLog, base: u64, conn: u32, truth: u64) {
        log.push(rec(base, CLIENT, WEB, MsgKind::Request, conn, 1, truth));
        log.push(rec(
            base + 30,
            WEB,
            APP,
            MsgKind::Request,
            100 + conn,
            1,
            truth,
        ));
        log.push(rec(
            base + 70,
            APP,
            WEB,
            MsgKind::Response,
            100 + conn,
            1,
            truth,
        ));
        log.push(rec(
            base + 100,
            WEB,
            CLIENT,
            MsgKind::Response,
            conn,
            1,
            truth,
        ));
    }

    #[test]
    fn intra_node_delay_subtracts_child_wait() {
        let mut log = TraceLog::new(nodes());
        for i in 0..5 {
            one_txn(&mut log, i * 1_000, 10 + i as u32, i + 1);
        }
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        let t = ServiceTimeTable::approximate(&r, 0.5);
        assert_eq!(t.get(WEB, ClassId(1)), Some(SimDuration::from_micros(60)));
        assert_eq!(t.get(APP, ClassId(1)), Some(SimDuration::from_micros(40)));
        assert_eq!(t.classes(WEB), vec![ClassId(1)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn low_quantile_masks_queueing() {
        // Class 2 at APP: true service 40us, but some spans are inflated by
        // queueing; the low quantile should recover ~40us.
        let mut log = TraceLog::new(nodes());
        let mut push_app = |base: u64, dur: u64, conn: u32, truth: u64| {
            log.push(rec(base, WEB, APP, MsgKind::Request, conn, 2, truth));
            log.push(rec(base + dur, APP, WEB, MsgKind::Response, conn, 2, truth));
        };
        for i in 0..8u64 {
            push_app(i * 1_000, 40, 200 + i as u32, i);
        }
        for i in 8..10u64 {
            push_app(i * 1_000, 400, 200 + i as u32, i); // queued
        }
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        let t = ServiceTimeTable::approximate(&r, 0.1);
        assert_eq!(t.get(APP, ClassId(2)), Some(SimDuration::from_micros(40)));
        // The high quantile sees the inflated ones.
        let t90 = ServiceTimeTable::approximate(&r, 0.95);
        assert_eq!(
            t90.get(APP, ClassId(2)),
            Some(SimDuration::from_micros(400))
        );
    }

    #[test]
    fn window_restricts_samples() {
        let mut log = TraceLog::new(nodes());
        // Early window: 40us services; late window: 80us (drift).
        for i in 0..4u64 {
            log.push(rec(
                i * 100,
                WEB,
                APP,
                MsgKind::Request,
                300 + i as u32,
                3,
                i,
            ));
            log.push(rec(
                i * 100 + 40,
                APP,
                WEB,
                MsgKind::Response,
                300 + i as u32,
                3,
                i,
            ));
        }
        for i in 0..4u64 {
            let base = 1_000_000 + i * 100;
            log.push(rec(
                base,
                WEB,
                APP,
                MsgKind::Request,
                400 + i as u32,
                3,
                10 + i,
            ));
            log.push(rec(
                base + 80,
                APP,
                WEB,
                MsgKind::Response,
                400 + i as u32,
                3,
                10 + i,
            ));
        }
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        let early =
            ServiceTimeTable::approximate_window(&r, 0.5, SimTime::ZERO, SimTime::from_millis(500));
        let late =
            ServiceTimeTable::approximate_window(&r, 0.5, SimTime::from_millis(500), SimTime::MAX);
        assert_eq!(
            early.get(APP, ClassId(3)),
            Some(SimDuration::from_micros(40))
        );
        assert_eq!(
            late.get(APP, ClassId(3)),
            Some(SimDuration::from_micros(80))
        );
    }

    #[test]
    fn work_unit_is_gcd_of_class_services() {
        // Paper's Fig 7 example: 30ms and 10ms -> 10ms work unit.
        let mut t = ServiceTimeTable::new();
        t.insert(APP, ClassId(1), SimDuration::from_millis(30));
        t.insert(APP, ClassId(2), SimDuration::from_millis(10));
        assert_eq!(
            t.work_unit(APP, SimDuration::from_millis(1)),
            Some(SimDuration::from_millis(10))
        );
        // Coprime-ish values collapse to the resolution.
        let mut t2 = ServiceTimeTable::new();
        t2.insert(APP, ClassId(1), SimDuration::from_micros(7_001));
        t2.insert(APP, ClassId(2), SimDuration::from_micros(11_000));
        assert_eq!(
            t2.work_unit(APP, SimDuration::from_micros(1_000)),
            Some(SimDuration::from_micros(1_000))
        );
        assert_eq!(t2.work_unit(WEB, SimDuration::from_millis(1)), None);
    }

    #[test]
    fn empty_reconstruction_gives_empty_table() {
        let r = Reconstruction::default();
        let t = ServiceTimeTable::approximate(&r, 0.1);
        assert!(t.is_empty());
    }
}
