//! Streaming span extraction: the online front-end that overlaps span
//! pairing with whatever produces the records (the DES, or a capture file
//! being decoded).
//!
//! The paper's method is inherently streamable — a span is fully
//! determined the moment its response leaves the server tap (§III-A), so
//! there is no need to materialize an entire [`TraceLog`] before pairing.
//! This module wires a producer thread to a small consumer pool:
//!
//! ```text
//! producer ──StreamSink──▶ [SPSC ring of record chunks] ──▶ router thread
//!                                                        shard = conn % N
//!                                  ┌─────────────────────────┼─ ... ─┐
//!                                  ▼                         ▼       ▼
//!                            shard worker 0            shard worker 1 ...
//!                            (online FIFO pairing per (server, conn))
//!                                  └────────── finish(): merge ───────┘
//! ```
//!
//! Records travel in fixed-size chunks through bounded SPSC rings
//! ([`fgbd_des::sync`]); exhausted chunk buffers are recycled back to the
//! producer through a reverse ring, so a steady-state stream allocates
//! nothing per record and holds only `capacity + 2` buffers per channel.
//! A full ring blocks the producer (backpressure) and counts a stall —
//! surfaced as the `trace.stream_stalls` counter next to
//! `trace.stream_chunks`.
//!
//! ## Determinism
//!
//! Sharding is by connection id, and request/response pairing is FIFO per
//! `(server, conn)`, so every pairing key lives wholly inside one shard —
//! each shard sees its records in global order and produces exactly the
//! spans the batch extractor would. The router stamps every record with a
//! global sequence number; a span inherits its response record's stamp.
//! The batch extractor's per-server order is "response order, stably
//! sorted by `(arrival, departure)`", which equals an (unstable) sort by
//! the *unique* key `(arrival, departure, seq)` — so the merge step
//! reproduces the batch permutation bit-for-bit regardless of shard
//! count, chunk size, or channel capacity. Property-tested against
//! [`crate::span::reference`] in `tests/properties.rs`.

use std::collections::{HashMap, VecDeque};
use std::thread::JoinHandle;

use fgbd_des::hash::FxHashMap;
use fgbd_des::sync::{self, Receiver, Sender};
use fgbd_des::SimTime;

use crate::record::{ClassId, MsgKind, MsgRecord, NodeId, TraceLog, TxnId};
use crate::span::{Span, SpanSet};

/// Default records per chunk — large enough to amortize the ring's atomic
/// hand-off to nothing, small enough to keep the consumer busy early.
/// 32 Ki (×28-byte records ≈ 0.9 MB) halves the hand-off rate of the old
/// 16 Ki default, which matters most at 1–2 shards where every hand-off
/// lands on the same one or two consumer threads.
pub const DEFAULT_CHUNK: usize = 32 * 1024;
/// Default chunks in flight per channel.
pub const DEFAULT_CAPACITY: usize = 8;
const MAX_SHARDS: usize = 8;

/// Tuning for the streaming front-end. All fields are floored at 1 when a
/// stream is started; use [`StreamConfig::from_values`] /
/// [`StreamConfig::from_env`] to express "no streaming at all" (`None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of shard extractor threads (1 = extract on the router
    /// thread itself, still overlapped with the producer).
    pub shards: usize,
    /// Records per chunk.
    pub chunk: usize,
    /// Chunks in flight per channel before the producer blocks.
    pub capacity: usize,
}

impl StreamConfig {
    /// A config from explicit values, or `None` when `shards == 0` —
    /// zero consumer threads means the batch path
    /// ([`SpanSet::extract`] over a materialized log).
    pub fn from_values(shards: usize, chunk: usize, capacity: usize) -> Option<StreamConfig> {
        (shards > 0).then(|| StreamConfig {
            shards: shards.min(MAX_SHARDS),
            chunk: chunk.max(1),
            capacity: capacity.max(1),
        })
    }

    /// The process-wide config from the environment, or `None` when
    /// streaming is switched off:
    ///
    /// * `FGBD_STREAM=0|false|off` — batch path.
    /// * `FGBD_STREAM_SHARDS` — shard thread count; `0` also selects the
    ///   batch path. Default: cores − 1, clamped to `1..=8` (so the
    ///   producer/consumer overlap stays on even on a single core).
    /// * `FGBD_STREAM_CHUNK`, `FGBD_STREAM_CAPACITY` — chunk size and
    ///   per-channel in-flight chunk budget.
    pub fn from_env() -> Option<StreamConfig> {
        let off =
            std::env::var("FGBD_STREAM").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"));
        if off {
            return None;
        }
        let shards = env_usize("FGBD_STREAM_SHARDS").unwrap_or_else(default_shards);
        let chunk = env_usize("FGBD_STREAM_CHUNK").unwrap_or(DEFAULT_CHUNK);
        let capacity = env_usize("FGBD_STREAM_CAPACITY").unwrap_or(DEFAULT_CAPACITY);
        StreamConfig::from_values(shards, chunk, capacity)
    }

    /// Like [`StreamConfig::from_env`], but falls back to the batch path
    /// (`None`) when streaming would *lose*: with a single extractor
    /// shard the pipeline taxes the producer with per-record tap and
    /// channel overhead while extraction gains no parallelism
    /// (`streaming_pipeline/streamed_shards_1` measures 2.4× slower than
    /// `batch_extract`). The fallback only engages when the default was
    /// going to pick one shard anyway — an explicit `FGBD_STREAM` /
    /// `FGBD_STREAM_SHARDS` setting is always honored.
    pub fn from_env_auto() -> Option<StreamConfig> {
        let explicit = std::env::var_os("FGBD_STREAM").is_some()
            || std::env::var_os("FGBD_STREAM_SHARDS").is_some();
        let cfg = StreamConfig::from_env()?;
        if !explicit && cfg.shards < 2 {
            return None;
        }
        Some(cfg)
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get().saturating_sub(1))
        .clamp(1, MAX_SHARDS)
}

/// The producer failed because the consuming side is gone (it panicked;
/// [`SpanStream::finish`] resurfaces the original panic).
struct Closed;

/// Producer end of one chunked channel: fills a local buffer and ships it
/// whole, reusing buffers handed back through the recycle ring.
struct ChunkTx<T: Send> {
    data: Sender<Vec<T>>,
    recycle: Receiver<Vec<T>>,
    buf: Vec<T>,
    chunk: usize,
    chunks: u64,
}

/// Consumer end of one chunked channel.
struct ChunkRx<T: Send> {
    data: Receiver<Vec<T>>,
    recycle: Sender<Vec<T>>,
}

fn chunk_channel<T: Send>(chunk: usize, capacity: usize) -> (ChunkTx<T>, ChunkRx<T>) {
    let (data_tx, data_rx) = sync::channel(capacity);
    // Buffers in flight are bounded by the data ring (capacity) plus the
    // producer's fill buffer and the consumer's in-hand chunk, so a
    // recycle ring of capacity + 2 never rejects a give-back.
    let (recycle_tx, recycle_rx) = sync::channel(capacity + 2);
    (
        ChunkTx {
            data: data_tx,
            recycle: recycle_rx,
            buf: Vec::with_capacity(chunk),
            chunk,
            chunks: 0,
        },
        ChunkRx {
            data: data_rx,
            recycle: recycle_tx,
        },
    )
}

impl<T: Send> ChunkTx<T> {
    fn push(&mut self, v: T) -> Result<(), Closed> {
        self.buf.push(v);
        if self.buf.len() >= self.chunk {
            self.flush()
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> Result<(), Closed> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let next = self
            .recycle
            .try_recv()
            .unwrap_or_else(|| Vec::with_capacity(self.chunk));
        let full = std::mem::replace(&mut self.buf, next);
        self.chunks += 1;
        self.data.send(full).map_err(|_| Closed)
    }

    fn stalls(&self) -> u64 {
        self.data.stalls()
    }
}

impl<T: Send> ChunkRx<T> {
    fn recv(&mut self) -> Option<Vec<T>> {
        self.data.recv()
    }

    fn give_back(&mut self, mut buf: Vec<T>) {
        buf.clear();
        let _ = self.recycle.try_send(buf);
    }
}

/// A request awaiting its response in a per-`(server, conn)` FIFO.
#[derive(Clone, Copy)]
struct OpenReq {
    at: SimTime,
    class: ClassId,
    truth: Option<TxnId>,
}

/// One shard's results: per-server spans still carrying their global
/// sequence stamps, plus unmatched counts.
struct ShardOut {
    by_server: FxHashMap<NodeId, Vec<(u64, Span)>>,
    unmatched: FxHashMap<NodeId, usize>,
    matched: u64,
}

/// Online FIFO request/response pairing for the subset of connections
/// routed to one shard — the streaming counterpart of the pairing loop in
/// [`SpanSet::extract`], with `(server, conn)` slots interned on the fly
/// instead of from a whole-log pre-pass.
#[derive(Default)]
struct ShardExtractor {
    slots: FxHashMap<u64, u32>,
    fifos: Vec<(NodeId, VecDeque<OpenReq>)>,
    out: FxHashMap<NodeId, Vec<(u64, Span)>>,
    unmatched: FxHashMap<NodeId, usize>,
    matched: u64,
}

impl ShardExtractor {
    fn push(&mut self, rec: &MsgRecord, seq: u64) {
        let server = rec.span_node();
        let key = (u64::from(server.0) << 32) | u64::from(rec.conn.0);
        let fifos = &mut self.fifos;
        let slot = *self.slots.entry(key).or_insert_with(|| {
            fifos.push((server, VecDeque::new()));
            (fifos.len() - 1) as u32
        }) as usize;
        match rec.kind {
            MsgKind::Request => self.fifos[slot].1.push_back(OpenReq {
                at: rec.at,
                class: rec.class,
                truth: rec.truth,
            }),
            MsgKind::Response => match self.fifos[slot].1.pop_front() {
                Some(req) => {
                    self.matched += 1;
                    self.out.entry(server).or_default().push((
                        seq,
                        Span {
                            server,
                            class: req.class,
                            arrival: req.at,
                            departure: rec.at,
                            conn: rec.conn,
                            truth: req.truth,
                        },
                    ));
                }
                None => *self.unmatched.entry(server).or_default() += 1,
            },
        }
    }

    fn finish(mut self) -> ShardOut {
        // Requests still open at stream end.
        for (server, fifo) in std::mem::take(&mut self.fifos) {
            if !fifo.is_empty() {
                *self.unmatched.entry(server).or_default() += fifo.len();
            }
        }
        ShardOut {
            by_server: self.out,
            unmatched: self.unmatched,
            matched: self.matched,
        }
    }
}

/// The producer-side handle: push records as they happen, then drop it to
/// signal end-of-stream. Dropping the sink **before** calling
/// [`SpanStream::finish`] is mandatory — both live call sites consume it
/// structurally — otherwise finish would wait on a stream that never
/// ends.
pub struct StreamSink {
    tx: ChunkTx<MsgRecord>,
    dead: bool,
}

impl StreamSink {
    /// Feeds one record to the stream. Records must arrive in
    /// non-decreasing time order (the [`TraceLog::push`] invariant).
    ///
    /// If the consuming side died, further records are discarded silently;
    /// [`SpanStream::finish`] then resurfaces the consumer's panic, which
    /// is the root cause worth reporting.
    pub fn push(&mut self, rec: MsgRecord) {
        if !self.dead && self.tx.push(rec).is_err() {
            self.dead = true;
        }
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        if !self.dead {
            let _ = self.tx.flush();
        }
        if fgbd_obsv::enabled() {
            fgbd_obsv::metrics::counter("trace.stream_chunks").add(self.tx.chunks);
            // Retained: a zero here is the finding (no backpressure), so
            // it must appear in manifests explicitly rather than be
            // dropped as "untouched".
            fgbd_obsv::metrics::counter_retained("trace.stream_stalls").add(self.tx.stalls());
        }
    }
}

/// Everything the router thread hands back at end-of-stream.
struct ConsumerOut {
    shards: Vec<ShardOut>,
    router_stalls: u64,
}

/// The consuming half of a streaming extraction; join it with
/// [`SpanStream::finish`] after the [`StreamSink`] is dropped.
pub struct SpanStream {
    consumer: JoinHandle<ConsumerOut>,
}

impl SpanStream {
    /// Spawns the router (and, for `shards > 1`, the shard workers) and
    /// returns the stream handle plus the producer sink.
    pub fn start(cfg: &StreamConfig) -> (SpanStream, StreamSink) {
        let cfg = StreamConfig {
            shards: cfg.shards.clamp(1, MAX_SHARDS),
            chunk: cfg.chunk.max(1),
            capacity: cfg.capacity.max(1),
        };
        let (tx, rx) = chunk_channel::<MsgRecord>(cfg.chunk, cfg.capacity);
        let consumer = std::thread::Builder::new()
            .name("fgbd-stream-router".into())
            .spawn(move || consume(rx, cfg))
            .expect("spawn stream router thread");
        (SpanStream { consumer }, StreamSink { tx, dead: false })
    }

    /// Waits for the consumer pool and merges per-shard spans back into
    /// the canonical batch order (see the module docs for the ordering
    /// argument). Panics from the consumer side are resurfaced here.
    pub fn finish(self) -> SpanSet {
        let out = match self.consumer.join() {
            Ok(v) => v,
            Err(e) => std::panic::resume_unwind(e),
        };
        let mut merged: HashMap<NodeId, Vec<(u64, Span)>> = HashMap::new();
        let mut unmatched: HashMap<NodeId, usize> = HashMap::new();
        let mut matched = 0u64;
        for shard in out.shards {
            matched += shard.matched;
            for (server, mut spans) in shard.by_server {
                merged.entry(server).or_default().append(&mut spans);
            }
            for (server, n) in shard.unmatched {
                *unmatched.entry(server).or_default() += n;
            }
        }
        let mut by_server: HashMap<NodeId, Vec<Span>> = HashMap::with_capacity(merged.len());
        let mut total = 0u64;
        for (server, mut spans) in merged {
            // `seq` is unique, so the key is a total order and an unstable
            // sort reproduces the batch extractor's stable
            // (arrival, departure) order exactly.
            spans.sort_unstable_by_key(|&(seq, s)| (s.arrival, s.departure, seq));
            let spans: Vec<Span> = spans.into_iter().map(|(_, s)| s).collect();
            total += spans.len() as u64;
            by_server.insert(server, spans);
        }
        let set = SpanSet::from_parts(by_server, unmatched);
        fgbd_obsv::counter!("trace.extract_reuse_hits", matched);
        fgbd_obsv::counter!("extract.spans", total);
        if fgbd_obsv::enabled() {
            fgbd_obsv::metrics::counter_retained("trace.stream_stalls").add(out.router_stalls);
        }
        set
    }
}

fn consume(mut rx: ChunkRx<MsgRecord>, cfg: StreamConfig) -> ConsumerOut {
    if cfg.shards == 1 {
        let mut ex = ShardExtractor::default();
        let mut seq = 0u64;
        while let Some(chunk) = rx.recv() {
            for rec in &chunk {
                ex.push(rec, seq);
                seq += 1;
            }
            rx.give_back(chunk);
        }
        return ConsumerOut {
            shards: vec![ex.finish()],
            router_stalls: 0,
        };
    }
    let mut txs: Vec<ChunkTx<(MsgRecord, u64)>> = Vec::with_capacity(cfg.shards);
    let mut workers: Vec<JoinHandle<ShardOut>> = Vec::with_capacity(cfg.shards);
    for i in 0..cfg.shards {
        let (tx, mut srx) = chunk_channel::<(MsgRecord, u64)>(cfg.chunk, cfg.capacity);
        txs.push(tx);
        let worker = std::thread::Builder::new()
            .name(format!("fgbd-stream-shard-{i}"))
            .spawn(move || {
                let mut ex = ShardExtractor::default();
                while let Some(chunk) = srx.recv() {
                    for (rec, seq) in &chunk {
                        ex.push(rec, *seq);
                    }
                    srx.give_back(chunk);
                }
                ex.finish()
            })
            .expect("spawn stream shard worker");
        workers.push(worker);
    }
    let mut seq = 0u64;
    let mut worker_died = false;
    'scatter: while let Some(chunk) = rx.recv() {
        for rec in &chunk {
            // Shard by connection id: pairing is FIFO per (server, conn),
            // so keeping each connection on one shard keeps every pairing
            // key whole.
            let s = rec.conn.0 as usize % cfg.shards;
            if txs[s].push((*rec, seq)).is_err() {
                worker_died = true;
                break 'scatter;
            }
            seq += 1;
        }
        rx.give_back(chunk);
    }
    if !worker_died {
        for tx in &mut txs {
            let _ = tx.flush();
        }
    }
    let router_stalls: u64 = txs.iter().map(ChunkTx::stalls).sum();
    drop(txs);
    let shards = workers
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(e) => std::panic::resume_unwind(e),
        })
        .collect();
    ConsumerOut {
        shards,
        router_stalls,
    }
}

/// Streams an already-materialized log through a real pipeline (sink,
/// router, shard workers) and returns the merged result — the harness
/// used by the property tests and the `streaming_pipeline` bench. Live
/// callers feed the [`StreamSink`] record-by-record instead.
pub fn extract_streamed(log: &TraceLog, cfg: &StreamConfig) -> SpanSet {
    let (stream, mut sink) = SpanStream::start(cfg);
    for rec in &log.records {
        sink.push(*rec);
    }
    drop(sink);
    stream.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ConnId, NodeKind, NodeMeta};

    fn node(id: u16, name: &str, kind: NodeKind) -> NodeMeta {
        NodeMeta {
            id: NodeId(id),
            name: name.into(),
            kind,
            tier: None,
        }
    }

    fn rec(at: u64, src: u16, dst: u16, kind: MsgKind, conn: u32) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at),
            src: NodeId(src),
            dst: NodeId(dst),
            kind,
            conn: ConnId(conn),
            class: ClassId(conn as u16 % 3),
            bytes: 64,
            truth: Some(TxnId(u64::from(conn))),
        }
    }

    fn demo_log() -> TraceLog {
        let mut log = TraceLog::new(vec![
            node(0, "client", NodeKind::Client),
            node(1, "web", NodeKind::Server),
            node(2, "db", NodeKind::Server),
        ]);
        // Interleaved conversations on several connections across two
        // servers, one response without a request (conn 99), and one
        // request left open (conn 7).
        log.push(rec(5, 2, 0, MsgKind::Response, 99));
        for i in 0..50u64 {
            let conn = (i % 5) as u32;
            let dst = 1 + (conn % 2) as u16;
            log.push(rec(10 + i * 7, 0, dst, MsgKind::Request, conn));
            log.push(rec(12 + i * 7, dst, 0, MsgKind::Response, conn));
        }
        log.push(rec(1_000, 0, 1, MsgKind::Request, 7));
        log
    }

    fn assert_same(a: &SpanSet, b: &SpanSet) {
        assert_eq!(a.servers(), b.servers());
        for s in a.servers() {
            assert_eq!(a.server(s), b.server(s), "server {s:?}");
        }
        assert_eq!(a.unmatched, b.unmatched);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn streamed_matches_batch_across_configs() {
        let log = demo_log();
        let batch = SpanSet::extract(&log);
        for shards in [1usize, 2, 3, 8] {
            for chunk in [1usize, 3, 1024] {
                let cfg = StreamConfig::from_values(shards, chunk, 2).unwrap();
                let streamed = extract_streamed(&log, &cfg);
                assert_same(&streamed, &batch);
            }
        }
    }

    #[test]
    fn empty_stream_yields_empty_set() {
        let cfg = StreamConfig::from_values(4, 8, 2).unwrap();
        let (stream, sink) = SpanStream::start(&cfg);
        drop(sink);
        let set = stream.finish();
        assert!(set.is_empty());
        assert!(set.unmatched.is_empty());
    }

    #[test]
    fn zero_shards_means_batch_path() {
        assert_eq!(StreamConfig::from_values(0, 16, 4), None);
        let some = StreamConfig::from_values(1, 0, 0).unwrap();
        assert_eq!((some.shards, some.chunk, some.capacity), (1, 1, 1));
        // Shard counts beyond the pool cap are clamped, not rejected.
        assert_eq!(StreamConfig::from_values(99, 1, 1).unwrap().shards, 8);
    }

    #[test]
    fn shard_worker_panic_surfaces_in_finish() {
        // A Response whose FIFO logic panics is hard to fabricate (the
        // extractor is total), so provoke the panic structurally instead:
        // capacity/chunk of 1 with a router that died from a poisoned
        // thread is covered by the spsc tests; here we at least pin the
        // sink-after-death contract — pushes become no-ops, not hangs.
        let cfg = StreamConfig::from_values(2, 1, 1).unwrap();
        let (stream, mut sink) = SpanStream::start(&cfg);
        for i in 0..100 {
            sink.push(rec(i, 0, 1, MsgKind::Request, i as u32));
        }
        drop(sink);
        let set = stream.finish();
        assert_eq!(set.unmatched.get(&NodeId(1)), Some(&100));
    }
}
