#![warn(missing_docs)]

//! # fgbd-trace — passive network tracing substrate
//!
//! The paper's detection method is fed by *passive network tracing* (Fujitsu
//! SysViz): a tap on the switch mirror port records every interaction message
//! between tiers with microsecond timestamps and negligible overhead on the
//! servers. This crate reproduces that substrate:
//!
//! * [`record`] — the capture schema: [`MsgRecord`] / [`TraceLog`], with
//!   ground-truth annotations that black-box code cannot use.
//! * [`span`] — per-server request spans (arrival/departure pairs) extracted
//!   by FIFO request/response pairing per connection; these are the direct
//!   inputs of the fine-grained load/throughput analysis in `fgbd-core`.
//! * [`reconstruct`] — black-box transaction reconstruction: stitching
//!   per-server spans into whole-transaction trees using only timing and
//!   nesting constraints (SysViz is a black-box tracer; the paper reports
//!   over 99% reconstruction accuracy, which [`reconstruct::Accuracy`]
//!   measures against simulator ground truth).
//! * [`servicetime`] — per-class service-time approximation from low-load
//!   capture windows (paper §III-B), feeding throughput normalization.
//! * [`capture`] — a compact binary on-disk format for captures (the
//!   reproduction's pcap analogue), plus time/node slicing.
//! * [`mmapio`] — zero-copy capture input: a dependency-free `mmap` wrapper
//!   (heap fallback elsewhere) whose `&[u8]` feeds the slice readers and the
//!   lazy [`capture2::ChunkCursor`] without materializing the file.
//! * [`stream`] — the streaming front-end: bounded SPSC record channels
//!   feeding sharded online span extraction that overlaps with the
//!   producer (simulator or capture decoder), bit-identical to the batch
//!   extractor.
//!
//! # Examples
//!
//! ```
//! use fgbd_des::SimTime;
//! use fgbd_trace::record::{ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, TraceLog, TxnId};
//! use fgbd_trace::span::SpanSet;
//!
//! let mut log = TraceLog::new(vec![
//!     NodeMeta { id: NodeId(0), name: "client".into(), kind: NodeKind::Client, tier: None },
//!     NodeMeta { id: NodeId(1), name: "web-1".into(), kind: NodeKind::Server, tier: Some(0) },
//! ]);
//! let req = MsgRecord {
//!     at: SimTime::from_micros(100), src: NodeId(0), dst: NodeId(1),
//!     kind: MsgKind::Request, conn: ConnId(1), class: ClassId(0), bytes: 512,
//!     truth: Some(TxnId(1)),
//! };
//! log.push(req);
//! log.push(MsgRecord { at: SimTime::from_micros(900), src: NodeId(1), dst: NodeId(0),
//!     kind: MsgKind::Response, ..req });
//! let spans = SpanSet::extract(&log);
//! assert_eq!(spans.server(NodeId(1)).len(), 1);
//! ```

pub mod capture;
pub mod capture2;
pub mod merge;
pub mod mmapio;
pub mod reconstruct;
pub mod record;
pub mod servicetime;
pub mod span;
pub mod stream;
pub mod tail;

pub use capture::{
    read_capture, read_capture_file, read_capture_tapped, write_capture, CaptureError,
};
pub use capture2::{
    read_capture2_parallel, read_capture2_range, write_capture2, CaptureChunks, ChunkCursor,
    ChunkedWriter, Projection,
};
pub use merge::merge_shard_logs;
pub use mmapio::{mmap_from_env, Mapping};
pub use record::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, TraceLog, TxnId,
};
pub use span::{Span, SpanSet};
pub use stream::{SpanStream, StreamConfig, StreamSink};
pub use tail::{wait_for_file, TailConfig, TailReader};
