//! The raw observables of passive network tracing.
//!
//! A network tap (the paper uses Fujitsu SysViz attached to mirror ports)
//! sees every interaction message between tiers: its capture timestamp, the
//! link it crossed, the TCP connection it belongs to, whether it is a request
//! or a response, and — because HTTP/SQL payloads are visible — a *class
//! signature* (URL pattern / query template). It does **not** see any global
//! transaction identifier; recovering transactions is the job of
//! [`crate::reconstruct`].
//!
//! For validation, the simulator annotates each record with the ground-truth
//! transaction id in [`MsgRecord::truth`]. Black-box code paths must never
//! read it; the reconstruction API statically prevents this by operating on
//! [`MsgRecord::observable`] views.

use serde::{Deserialize, Serialize};

use fgbd_des::SimTime;

/// A node (client generator or server) visible on the traced network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// A TCP connection, identified by its 5-tuple in a real capture; the
/// simulator allocates them from per-link pools just like a connection pool
/// or ephemeral-port range would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnId(pub u32);

/// A request class signature (URL pattern / prepared-statement template).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(pub u16);

/// Ground-truth transaction id (simulator-only; invisible to black-box
/// analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

/// Message direction relative to the lower tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    /// A call travelling down-tier (client → web → app → …).
    Request,
    /// A reply travelling back up-tier.
    Response,
}

/// What kind of node this is; used by span extraction to know where
/// transactions originate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Workload generator (the RUBBoS client farm).
    Client,
    /// A component server of the n-tier system.
    Server,
}

/// Metadata for one traced node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Node identifier referenced by [`MsgRecord`]s.
    pub id: NodeId,
    /// Human-readable name, e.g. `"tomcat-1"`.
    pub name: String,
    /// Client or server.
    pub kind: NodeKind,
    /// Tier index (0 = web) for servers; `None` for clients.
    pub tier: Option<u8>,
}

/// One captured interaction message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgRecord {
    /// Capture timestamp (microsecond granularity, single tap clock — the
    /// paper stresses this sidesteps NTP skew between servers).
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Request or response.
    pub kind: MsgKind,
    /// TCP connection the message travelled on.
    pub conn: ConnId,
    /// Class signature parsed from the payload.
    pub class: ClassId,
    /// Payload size in bytes (drives network-utilization accounting).
    pub bytes: u32,
    /// Ground truth for validation only — never read by black-box analysis.
    pub truth: Option<TxnId>,
}

impl MsgRecord {
    /// The black-box view of this record: everything a real tap would see,
    /// with the ground-truth annotation stripped.
    pub fn observable(&self) -> MsgRecord {
        MsgRecord {
            truth: None,
            ..*self
        }
    }

    /// The server this message is a request *to* (its `dst`) or a response
    /// *from* (its `src`) — i.e. the node whose span this message bounds.
    pub fn span_node(&self) -> NodeId {
        match self.kind {
            MsgKind::Request => self.dst,
            MsgKind::Response => self.src,
        }
    }
}

/// A complete capture: node metadata plus the time-ordered message log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    /// All nodes that appear in `records`.
    pub nodes: Vec<NodeMeta>,
    /// Messages in capture order (non-decreasing `at`).
    pub records: Vec<MsgRecord>,
}

impl TraceLog {
    /// Creates an empty log with the given node table.
    pub fn new(nodes: Vec<NodeMeta>) -> Self {
        TraceLog {
            nodes,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `rec.at` precedes the previous record —
    /// captures are time-ordered by construction.
    pub fn push(&mut self, rec: MsgRecord) {
        debug_assert!(
            self.records.last().is_none_or(|p| p.at <= rec.at),
            "trace records must be time-ordered"
        );
        self.records.push(rec);
    }

    /// Looks up node metadata.
    pub fn node(&self, id: NodeId) -> Option<&NodeMeta> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Ids of all server nodes, in table order.
    pub fn server_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Server)
            .map(|n| n.id)
            .collect()
    }

    /// A copy with all ground-truth annotations stripped — what a real
    /// capture file would contain.
    pub fn blinded(&self) -> TraceLog {
        TraceLog {
            nodes: self.nodes.clone(),
            records: self.records.iter().map(MsgRecord::observable).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_us: u64, src: u16, dst: u16, kind: MsgKind) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at_us),
            src: NodeId(src),
            dst: NodeId(dst),
            kind,
            conn: ConnId(1),
            class: ClassId(0),
            bytes: 100,
            truth: Some(TxnId(7)),
        }
    }

    #[test]
    fn observable_strips_truth() {
        let r = rec(5, 0, 1, MsgKind::Request);
        assert_eq!(r.truth, Some(TxnId(7)));
        assert_eq!(r.observable().truth, None);
        assert_eq!(r.observable().at, r.at);
    }

    #[test]
    fn span_node_follows_direction() {
        assert_eq!(rec(1, 0, 1, MsgKind::Request).span_node(), NodeId(1));
        assert_eq!(rec(2, 1, 0, MsgKind::Response).span_node(), NodeId(1));
    }

    #[test]
    fn blinded_log_has_no_truth() {
        let mut log = TraceLog::new(vec![
            NodeMeta {
                id: NodeId(0),
                name: "client".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: NodeId(1),
                name: "web".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
        ]);
        log.push(rec(1, 0, 1, MsgKind::Request));
        log.push(rec(9, 1, 0, MsgKind::Response));
        let b = log.blinded();
        assert!(b.records.iter().all(|r| r.truth.is_none()));
        assert_eq!(b.records.len(), 2);
        assert_eq!(log.server_ids(), vec![NodeId(1)]);
        assert_eq!(log.node(NodeId(1)).unwrap().name, "web");
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics_in_debug() {
        let mut log = TraceLog::new(vec![]);
        log.push(rec(10, 0, 1, MsgKind::Request));
        log.push(rec(5, 0, 1, MsgKind::Request));
    }
}
