//! Capture files: a compact, versioned binary serialization of
//! [`TraceLog`] — the reproduction's analogue of a pcap file, so captures
//! can be written during a run and analyzed offline (or exchanged between
//! tools) without dragging a JSON serializer through millions of records.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   [u8;8]  = b"FGBDCAP1"
//! n_nodes u32
//!   per node: id u16, kind u8 (0=client, 1=server), tier u8 (0xFF = none),
//!             name_len u16, name bytes (UTF-8)
//! n_records u64
//!   per record: at u64, src u16, dst u16, kind u8 (0=req, 1=resp),
//!               conn u32, class u16, bytes u32,
//!               truth u64 (u64::MAX = none)
//! ```
//!
//! Readers reject unknown magics and truncated inputs with
//! [`CaptureError`]; writers stream, so memory stays flat regardless of
//! capture size.
//!
//! A second, chunked columnar format (`FGBDCAP2`, see [`crate::capture2`])
//! shares the node-table encoding and the reader entry points below:
//! [`read_capture`] / [`read_capture_tapped`] sniff the magic and decode
//! either format, so every consumer of `.fgbdcap` files accepts both.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use fgbd_des::SimTime;

use crate::record::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, TraceLog, TxnId,
};

pub(crate) const MAGIC: &[u8; 8] = b"FGBDCAP1";
const NO_TIER: u8 = 0xFF;
const NO_TRUTH: u64 = u64::MAX;

/// Failures while reading or writing a capture file.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a capture file (or a newer, unknown version).
    BadMagic([u8; 8]),
    /// The input ended mid-structure or contains an invalid field.
    Malformed(&'static str),
    /// A specific chunk of an `FGBDCAP2` capture failed validation; the
    /// index pinpoints the damage so multi-GB captures do not have to be
    /// bisected by hand.
    Chunk {
        /// Zero-based index of the failing chunk within the capture.
        index: u32,
        /// What failed inside that chunk.
        what: &'static str,
    },
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "capture i/o error: {e}"),
            CaptureError::BadMagic(m) => write!(f, "not a capture file (magic {m:02x?})"),
            CaptureError::Malformed(what) => write!(f, "malformed capture: {what}"),
            CaptureError::Chunk { index, what } => {
                write!(f, "malformed capture chunk {index}: {what}")
            }
        }
    }
}

impl std::error::Error for CaptureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        // An unexpected EOF while decoding means truncation, which is a
        // format error from the caller's point of view.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CaptureError::Malformed("truncated input")
        } else {
            CaptureError::Io(e)
        }
    }
}

/// Writes `log` as a capture stream.
///
/// The writer can be anything implementing [`Write`]; pass `&mut file` to
/// keep using the file afterwards.
///
/// # Errors
///
/// Returns [`CaptureError::Io`] on underlying write failures.
pub fn write_capture<W: Write>(mut w: W, log: &TraceLog) -> Result<(), CaptureError> {
    w.write_all(MAGIC)?;
    write_node_table(&mut w, &log.nodes)?;
    w.write_all(&(log.records.len() as u64).to_le_bytes())?;
    for r in &log.records {
        w.write_all(&r.at.as_micros().to_le_bytes())?;
        w.write_all(&r.src.0.to_le_bytes())?;
        w.write_all(&r.dst.0.to_le_bytes())?;
        w.write_all(&[match r.kind {
            MsgKind::Request => 0u8,
            MsgKind::Response => 1u8,
        }])?;
        w.write_all(&r.conn.0.to_le_bytes())?;
        w.write_all(&r.class.0.to_le_bytes())?;
        w.write_all(&r.bytes.to_le_bytes())?;
        w.write_all(&r.truth.map_or(NO_TRUTH, |t| t.0).to_le_bytes())?;
    }
    Ok(())
}

/// Writes the node table — shared verbatim by both capture formats, so a
/// format upgrade never changes how topology metadata is encoded.
pub(crate) fn write_node_table<W: Write>(
    w: &mut W,
    nodes: &[NodeMeta],
) -> Result<(), CaptureError> {
    w.write_all(&(nodes.len() as u32).to_le_bytes())?;
    for n in nodes {
        w.write_all(&n.id.0.to_le_bytes())?;
        w.write_all(&[match n.kind {
            NodeKind::Client => 0u8,
            NodeKind::Server => 1u8,
        }])?;
        w.write_all(&[n.tier.unwrap_or(NO_TIER)])?;
        let name = n.name.as_bytes();
        w.write_all(&(name.len() as u16).to_le_bytes())?;
        w.write_all(name)?;
    }
    Ok(())
}

/// Reads the node table (see [`write_node_table`]).
pub(crate) fn read_node_table<R: Read>(r: &mut R) -> Result<Vec<NodeMeta>, CaptureError> {
    let n_nodes = read_u32(r)? as usize;
    if n_nodes > u16::MAX as usize + 1 {
        return Err(CaptureError::Malformed("implausible node count"));
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let id = NodeId(read_u16(r)?);
        let kind = match read_u8(r)? {
            0 => NodeKind::Client,
            1 => NodeKind::Server,
            _ => return Err(CaptureError::Malformed("unknown node kind")),
        };
        let tier = match read_u8(r)? {
            NO_TIER => None,
            t => Some(t),
        };
        let name_len = read_u16(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| CaptureError::Malformed("non-UTF-8 name"))?;
        nodes.push(NodeMeta {
            id,
            name,
            kind,
            tier,
        });
    }
    Ok(nodes)
}

/// Reads a capture stream back into a [`TraceLog`]. Accepts both formats
/// (`FGBDCAP1` and the chunked columnar `FGBDCAP2`) by sniffing the magic.
///
/// # Errors
///
/// Returns [`CaptureError::BadMagic`] for foreign inputs and
/// [`CaptureError::Malformed`] / [`CaptureError::Chunk`] for truncated or
/// invalid ones.
pub fn read_capture<R: Read>(r: R) -> Result<TraceLog, CaptureError> {
    read_capture_tapped(r, |_| {})
}

/// Reads a capture file, using the parallel chunk decoder for `FGBDCAP2`
/// inputs when `FGBD_CAPTURE_THREADS` (or the host parallelism) allows —
/// the fastest way to materialize a whole capture. Under
/// `FGBD_CAPTURE_MMAP=1` the file is memory-mapped instead of heap-read
/// (`crate::mmapio`); the decoded log is identical to [`read_capture`]'s,
/// byte for byte, at every thread count either way.
///
/// # Errors
///
/// Propagates [`CaptureError::Io`] for filesystem failures plus everything
/// [`read_capture`] can return.
pub fn read_capture_file(path: &Path) -> Result<TraceLog, CaptureError> {
    let bytes = if crate::mmapio::mmap_from_env() {
        crate::mmapio::Mapping::open(path)?
    } else {
        crate::mmapio::Mapping::heap(std::fs::read(path)?)
    };
    if bytes.len() >= 8 && &bytes[..8] == crate::capture2::MAGIC2 {
        crate::capture2::read_capture2_parallel(&bytes, crate::capture2::threads_from_env())
    } else {
        read_capture(&*bytes)
    }
}

/// Reads a capture stream while forwarding every decoded record to `tap`,
/// in order, as soon as it is decoded — the hook the streaming front-end
/// (`crate::stream`) uses to overlap file decode with span extraction.
/// The fully materialized [`TraceLog`] is still returned for the
/// downstream consumers that need random access (reconstruction,
/// slicing).
///
/// On error the tap has already seen a prefix of the records; callers
/// abandon the stream (dropping the sink) and propagate the error.
///
/// # Errors
///
/// Returns [`CaptureError::BadMagic`] for foreign inputs and
/// [`CaptureError::Malformed`] for truncated or invalid ones.
pub fn read_capture_tapped<R: Read>(
    mut r: R,
    mut tap: impl FnMut(MsgRecord),
) -> Result<TraceLog, CaptureError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == crate::capture2::MAGIC2 {
        return crate::capture2::read_capture2_tapped_after_magic(r, tap);
    }
    if &magic != MAGIC {
        return Err(CaptureError::BadMagic(magic));
    }
    let nodes = read_node_table(&mut r)?;
    let n_records = read_u64(&mut r)?;
    let mut log = TraceLog::new(nodes);
    log.records
        .reserve(usize::try_from(n_records).unwrap_or(0).min(1 << 28));
    let mut prev = SimTime::ZERO;
    for _ in 0..n_records {
        let rec = read_record_v1(&mut r, prev)?;
        prev = rec.at;
        tap(rec);
        log.records.push(rec);
    }
    Ok(log)
}

/// Decodes one flat-format record, enforcing time order against `prev` —
/// shared by [`read_capture_tapped`] and the dual-format chunk iterator in
/// [`crate::capture2`].
pub(crate) fn read_record_v1<R: Read>(r: &mut R, prev: SimTime) -> Result<MsgRecord, CaptureError> {
    let at = SimTime::from_micros(read_u64(r)?);
    if at < prev {
        return Err(CaptureError::Malformed("records out of order"));
    }
    let src = NodeId(read_u16(r)?);
    let dst = NodeId(read_u16(r)?);
    let kind = match read_u8(r)? {
        0 => MsgKind::Request,
        1 => MsgKind::Response,
        _ => return Err(CaptureError::Malformed("unknown message kind")),
    };
    let conn = ConnId(read_u32(r)?);
    let class = ClassId(read_u16(r)?);
    let bytes = read_u32(r)?;
    let truth = match read_u64(r)? {
        NO_TRUTH => None,
        t => Some(TxnId(t)),
    };
    Ok(MsgRecord {
        at,
        src,
        dst,
        kind,
        conn,
        class,
        bytes,
        truth,
    })
}

pub(crate) fn read_u8<R: Read>(r: &mut R) -> Result<u8, CaptureError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn read_u16<R: Read>(r: &mut R) -> Result<u16, CaptureError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32, CaptureError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64, CaptureError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl TraceLog {
    /// A copy of this log with `records` substituted — the shared tail of
    /// every slicing operation.
    fn with_records(&self, records: Vec<MsgRecord>) -> TraceLog {
        TraceLog {
            nodes: self.nodes.clone(),
            records,
        }
    }

    /// A copy restricted to records in `[from, to)` — for zooming into an
    /// episode before analysis.
    ///
    /// Relies on the time-ordered append invariant of [`TraceLog::push`]
    /// (also enforced by [`read_capture`]): the window is located by binary
    /// search and copied as one contiguous range instead of scanning every
    /// record.
    ///
    /// Debug builds assert the invariant over the whole log. Release builds
    /// with telemetry enabled (see [`fgbd_obsv::enabled`]) run a cheap
    /// O(window) heuristic over the *copied* slice instead: if
    /// the extracted window is itself unsorted, or contains records outside
    /// `[from, to)`, the log violated the invariant and the binary search
    /// partitioned on garbage. That is reported as a **soft failure** — the
    /// `capture.unsorted_log` counter increments and a warning is logged,
    /// but the (best-effort) slice is still returned, so a single corrupt
    /// capture downgrades one analysis window rather than aborting a long
    /// experiment run. The heuristic cannot catch every unsorted input (a
    /// disordered region wholly outside the window is invisible), which is
    /// why debug builds keep the full assertion.
    pub fn slice_time(&self, from: SimTime, to: SimTime) -> TraceLog {
        debug_assert!(
            self.records.windows(2).all(|w| w[0].at <= w[1].at),
            "slice_time requires time-ordered records"
        );
        let lo = self.records.partition_point(|r| r.at < from);
        let hi = lo + self.records[lo..].partition_point(|r| r.at < to);
        let window = &self.records[lo..hi];
        // The O(window) heuristic rides on telemetry: with FGBD_OBSV=0 (or
        // the obsv `disabled` feature) the slicing fast path keeps its
        // single-copy cost and only debug builds check the invariant.
        let suspect = fgbd_obsv::enabled()
            && (window.windows(2).any(|w| w[0].at > w[1].at)
                || window.iter().any(|r| r.at < from || r.at >= to));
        if suspect {
            fgbd_obsv::counter!("capture.unsorted_log", 1);
            fgbd_obsv::log!(
                "trace",
                "WARN slice_time: log violates the time-ordered invariant; \
                 window [{from:?}, {to:?}) is best-effort"
            );
        }
        self.with_records(window.to_vec())
    }

    /// A copy keeping only messages that touch `node` (as sender or
    /// receiver) — the per-server view a tap on that server's switch port
    /// would capture.
    pub fn slice_node(&self, node: NodeId) -> TraceLog {
        self.with_records(
            self.records
                .iter()
                .filter(|r| r.src == node || r.dst == node)
                .copied()
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> TraceLog {
        let mut log = TraceLog::new(vec![
            NodeMeta {
                id: NodeId(0),
                name: "clients".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: NodeId(1),
                name: "web-1".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
        ]);
        for i in 0..100u64 {
            log.push(MsgRecord {
                at: SimTime::from_micros(i * 10),
                src: NodeId(0),
                dst: NodeId(1),
                kind: MsgKind::Request,
                conn: ConnId(i as u32),
                class: ClassId((i % 7) as u16),
                bytes: 100 + i as u32,
                truth: if i % 3 == 0 { Some(TxnId(i)) } else { None },
            });
        }
        log
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let log = demo_log();
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        let back = read_capture(buf.as_slice()).expect("read");
        assert_eq!(back.nodes, log.nodes);
        assert_eq!(back.records, log.records);
    }

    #[test]
    fn tapped_reader_forwards_every_record_in_order() {
        let log = demo_log();
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        let mut seen = Vec::new();
        let back = read_capture_tapped(buf.as_slice(), |r| seen.push(r)).expect("read");
        assert_eq!(seen, back.records);
        assert_eq!(seen, log.records);
    }

    #[test]
    fn foreign_input_is_rejected() {
        let err = read_capture(&b"NOTACAP0rest"[..]).unwrap_err();
        assert!(matches!(err, CaptureError::BadMagic(_)));
        assert!(err.to_string().contains("not a capture file"));
    }

    #[test]
    fn truncation_is_detected() {
        let log = demo_log();
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        for cut in [4usize, 12, 20, buf.len() - 3] {
            let err = read_capture(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CaptureError::Malformed(_)),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn corrupted_kind_is_detected() {
        let log = demo_log();
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        // Find the first record's kind byte: header is 8 magic + 4 count +
        // 2 nodes of (2+1+1+2+name). Compute instead of hardcoding.
        let node_bytes: usize = log.nodes.iter().map(|n| 2 + 1 + 1 + 2 + n.name.len()).sum();
        let kind_off = 8 + 4 + node_bytes + 8 + 8 + 2 + 2;
        buf[kind_off] = 9;
        let err = read_capture(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            CaptureError::Malformed("unknown message kind")
        ));
    }

    #[test]
    fn slice_time_is_half_open() {
        let log = demo_log();
        let sliced = log.slice_time(SimTime::from_micros(100), SimTime::from_micros(200));
        assert_eq!(sliced.records.len(), 10);
        assert!(sliced
            .records
            .iter()
            .all(|r| r.at >= SimTime::from_micros(100) && r.at < SimTime::from_micros(200)));
    }

    #[test]
    fn slice_time_handles_empty_and_boundary_windows() {
        let log = demo_log();
        assert!(log
            .slice_time(SimTime::from_micros(5000), SimTime::from_micros(6000))
            .records
            .is_empty());
        assert!(log
            .slice_time(SimTime::from_micros(200), SimTime::from_micros(200))
            .records
            .is_empty());
        // Full-range slice copies everything.
        assert_eq!(
            log.slice_time(SimTime::ZERO, SimTime::from_micros(u64::MAX))
                .records
                .len(),
            100
        );
        // Duplicate timestamps all land on the same side of the cut.
        let mut dup = demo_log();
        let last = *dup.records.last().unwrap();
        for _ in 0..3 {
            dup.push(MsgRecord {
                at: SimTime::from_micros(990),
                ..last
            });
        }
        let sliced = dup.slice_time(SimTime::from_micros(990), SimTime::from_micros(991));
        assert_eq!(sliced.records.len(), 4);
    }

    /// `slice_time` documents the time-ordered invariant and debug-asserts
    /// it: a hand-assembled unsorted log must panic rather than silently
    /// return a wrong window. (`TraceLog::push` and `read_capture` both
    /// refuse to produce unsorted logs, so only manual construction can
    /// violate this.)
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn slice_time_panics_on_unsorted_log_in_debug() {
        let mut log = demo_log();
        log.records.swap(10, 50);
        let _ = log.slice_time(SimTime::from_micros(100), SimTime::from_micros(200));
    }

    /// Release counterpart of the debug assertion: an unsorted log inside
    /// the requested window is detected, counted as a soft failure on
    /// `capture.unsorted_log`, and the best-effort slice is still returned.
    #[test]
    #[cfg(not(debug_assertions))]
    fn slice_time_counts_unsorted_log_as_soft_failure_in_release() {
        let mut log = demo_log();
        log.records.swap(10, 50);
        // A window covering the whole log definitely contains the swapped
        // pair (binary search bounds on unsorted data are arbitrary for
        // narrower windows).
        let before = fgbd_obsv::metrics::counter("capture.unsorted_log").get();
        let sliced = log.slice_time(SimTime::ZERO, SimTime::from_micros(1_000));
        let after = fgbd_obsv::metrics::counter("capture.unsorted_log").get();
        assert_eq!(after, before + 1, "soft failure must be counted");
        assert!(
            !sliced.records.is_empty(),
            "best-effort slice still returned"
        );
        // A clean log must not trip the heuristic.
        let clean = demo_log();
        let _ = clean.slice_time(SimTime::ZERO, SimTime::from_micros(1_000));
        assert_eq!(
            fgbd_obsv::metrics::counter("capture.unsorted_log").get(),
            after
        );
    }

    #[test]
    fn slice_node_keeps_touching_records() {
        let log = demo_log();
        assert_eq!(log.slice_node(NodeId(1)).records.len(), 100);
        assert_eq!(log.slice_node(NodeId(9)).records.len(), 0);
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = TraceLog::new(vec![]);
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        let back = read_capture(buf.as_slice()).expect("read");
        assert!(back.nodes.is_empty());
        assert!(back.records.is_empty());
    }
}
