//! Black-box transaction reconstruction (the SysViz role).
//!
//! SysViz is a *black-box* tracer: interaction messages carry no global
//! transaction identifier, so the trace of each transaction must be
//! reconstructed from timing and nesting constraints alone (paper §II-C; the
//! authors report >99% accuracy on a 4-tier application under high
//! concurrency).
//!
//! The structural facts available to a black-box reconstructor:
//!
//! * A downstream call observed on server `P → S` must belong to a request
//!   that is currently **active** on `P` (its thread is blocked on the call —
//!   calls are synchronous in n-tier middleware).
//! * A request that already has an **outstanding** downstream call cannot
//!   issue another one — its thread is blocked. This hard constraint prunes
//!   most candidates under high concurrency.
//! * The **class signature** visible in message payloads (URL pattern /
//!   query template) must be consistent along a transaction: a parent of
//!   class *c* only issues class-*c* calls. (SysViz learns such
//!   URL-to-query-template associations from its transaction models.)
//! * The parent server `P` is *known* from the message's source address; the
//!   ambiguity is only **which** of the requests active on `P` issued the
//!   call.
//! * Requests on one TCP connection are serial, so request/response pairing
//!   per connection is exact.
//!
//! After pruning, remaining ties are broken by a [`Heuristic`]: recency (a
//! thread that just received a response or just arrived is the most likely
//! next caller), FIFO (oldest active request first), or a profile-guided
//! mode that learns per-class fan-out counts from unambiguous
//! (single-candidate) situations and uses them to rule out parents that
//! already issued their full complement of calls. [`Accuracy`] scores any
//! reconstruction against simulator ground truth.
//!
//! # The ingestion fast path
//!
//! Reconstruction is re-run on every capture a sweep or figure driver
//! produces, so [`Reconstruction::run`] is built to be allocation-free and
//! cache-friendly per record: a one-time [`LogIndex`] pass interns nodes,
//! classes, and `(server, connection)` pairs into dense `usize` slots, the
//! per-server candidate sets and per-connection FIFO queues live in
//! intrusive linked lists threaded through flat arrays, and parent selection
//! is a single pass that evaluates the hard (blocked) and soft (class)
//! constraints with running winners instead of materializing candidate
//! vectors. The walk exploits the paper's own observation that the blocked
//! constraint prunes most candidates: each server keeps a second intrusive
//! list holding only its *unblocked* active spans (every hot per-span field
//! packed into one cache line, [`HotSpan`]), so the common case scans just
//! the spans that can actually issue a call and the full active list is
//! touched only in the everyone-blocked fallback. The original
//! `HashMap`-keyed implementation is kept verbatim as [`reference`] — the
//! executable specification that the property tests
//! (`reconstruct_fast_matches_reference`) and the Criterion benches hold the
//! fast path bit-identical to. (Winner selection keys embed the span index,
//! so they are total and the walk order of either list cannot change the
//! result.)

use std::collections::HashMap;

use fgbd_des::hash::FxBuildHasher;
use fgbd_des::SimTime;

use crate::record::{ClassId, ConnId, MsgKind, NodeId, NodeKind, TraceLog, TxnId};

/// Parent-attribution strategy for downstream calls (applied after the hard
/// blocked/class pruning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Attribute to the candidate whose last observed event (arrival, issued
    /// call, or received child response) is **oldest**: under processor
    /// sharing it has had the most time to finish its CPU segment and issue
    /// the next call. The default, and empirically the most accurate.
    LongestQuiescent,
    /// Attribute to the candidate whose last observed event is most recent.
    /// A baseline for the ablation benchmarks.
    MostRecent,
    /// Attribute to the oldest active request (FIFO by arrival). A naive
    /// baseline.
    Fifo,
    /// [`Heuristic::LongestQuiescent`], additionally filtered by learned
    /// per-class fan-out counts: parents that already issued as many calls
    /// as their class was ever observed to issue (in unambiguous cases) are
    /// ruled out.
    ProfileGuided,
}

/// One reconstructed per-server span, with its attributed parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecSpan {
    /// Server the request visited.
    pub server: NodeId,
    /// Class signature.
    pub class: ClassId,
    /// Request-message capture time.
    pub arrival: SimTime,
    /// Response-message capture time; `None` if still open at capture end.
    pub departure: Option<SimTime>,
    /// Connection the request travelled on.
    pub conn: ConnId,
    /// Index of the attributed parent span, `None` for transaction roots.
    pub parent: Option<usize>,
    /// Index of this span's transaction root.
    pub root: usize,
    /// Number of downstream calls attributed to this span.
    pub calls_issued: u32,
    /// Ground truth transaction id (copied through for validation; never
    /// consulted during attribution).
    pub truth: Option<TxnId>,
}

/// One reconstructed transaction: a root client request and every span
/// attributed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Index of the root span.
    pub root: usize,
    /// All member spans (including the root), in creation order.
    pub spans: Vec<usize>,
    /// `true` if every member span saw its response before capture end.
    pub complete: bool,
}

/// The result of black-box reconstruction over a capture.
#[derive(Debug, Clone, Default)]
pub struct Reconstruction {
    /// Every reconstructed span.
    pub spans: Vec<RecSpan>,
    /// Transactions, one per client request observed.
    pub txns: Vec<Txn>,
}

/// Linked-list / slot sentinel for the dense tables.
pub(crate) const NONE: u32 = u32::MAX;

/// Dense per-capture tables built in one pass before reconstruction: node,
/// class, and `(span server, connection)` identifiers are interned into
/// contiguous `0..n` slots so the record loop indexes flat arrays instead of
/// hashing. Node ids that appear in records but not in `log.nodes` (foreign
/// taps, corrupt captures) are interned as servers — exactly how the
/// reference treats them. Shared with `span::SpanSet::extract`, whose
/// request/response pairing runs on the same `(server, connection)` slots.
pub(crate) struct LogIndex {
    /// `NodeId.0 → dense node slot` (`NONE` = id never seen).
    node_slot: Vec<u32>,
    /// Per node slot: is this node a client generator? Replaces the old
    /// linear `Vec::contains` client test with one indexed load.
    client: Vec<bool>,
    /// Number of interned nodes.
    pub(crate) n_nodes: usize,
    /// `ClassId.0 → dense class slot`.
    class_slot: Vec<u32>,
    /// Number of interned classes.
    n_classes: usize,
    /// Per record: dense slot of its `(span server, connection)` pair — the
    /// key request/response matching runs on.
    pub(crate) rec_conn: Vec<u32>,
    /// Number of interned `(span server, connection)` pairs.
    pub(crate) n_conns: usize,
}

impl LogIndex {
    pub(crate) fn build(log: &TraceLog) -> LogIndex {
        let mut max_node = 0usize;
        let mut max_class = 0usize;
        for n in &log.nodes {
            max_node = max_node.max(usize::from(n.id.0));
        }
        for r in &log.records {
            max_node = max_node.max(usize::from(r.src.0)).max(usize::from(r.dst.0));
            max_class = max_class.max(usize::from(r.class.0));
        }
        let mut node_slot = vec![NONE; max_node + 1];
        let mut client = Vec::with_capacity(log.nodes.len());
        for n in &log.nodes {
            let e = &mut node_slot[usize::from(n.id.0)];
            if *e == NONE {
                *e = client.len() as u32;
                client.push(n.kind == NodeKind::Client);
            }
        }
        let mut class_slot = vec![NONE; max_class + 1];
        let mut n_classes = 0u32;
        let mut conn_slots: HashMap<(u32, ConnId), u32, FxBuildHasher> =
            HashMap::with_capacity_and_hasher(log.records.len() / 2 + 1, FxBuildHasher);
        let mut rec_conn = Vec::with_capacity(log.records.len());
        for r in &log.records {
            for id in [r.src, r.dst] {
                let e = &mut node_slot[usize::from(id.0)];
                if *e == NONE {
                    *e = client.len() as u32;
                    client.push(false);
                }
            }
            let ce = &mut class_slot[usize::from(r.class.0)];
            if *ce == NONE {
                *ce = n_classes;
                n_classes += 1;
            }
            let span_server = node_slot[usize::from(r.span_node().0)];
            let next = conn_slots.len() as u32;
            rec_conn.push(*conn_slots.entry((span_server, r.conn)).or_insert(next));
        }
        LogIndex {
            n_nodes: client.len(),
            node_slot,
            client,
            class_slot,
            n_classes: n_classes as usize,
            rec_conn,
            n_conns: conn_slots.len(),
        }
    }

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> usize {
        self.node_slot[usize::from(id.0)] as usize
    }
}

/// Running winner over one candidate tier (all active / unblocked /
/// class-matched) of the single-pass parent scan. Tracks the heuristic's
/// best candidate plus, for [`Heuristic::ProfileGuided`], the best among
/// fan-out-eligible candidates — so no candidate set is ever materialized.
#[derive(Clone, Copy)]
struct TierBest {
    count: u32,
    best: u32,
    best_key: (SimTime, u32),
    pg_count: u32,
    pg_best: u32,
    pg_key: (SimTime, u32),
}

impl TierBest {
    const EMPTY: TierBest = TierBest {
        count: 0,
        best: NONE,
        best_key: (SimTime::ZERO, 0),
        pg_count: 0,
        pg_best: NONE,
        pg_key: (SimTime::ZERO, 0),
    };

    /// Folds candidate `i` (with its heuristic sort key) into the running
    /// winners. `take_max` selects max-key (MostRecent) over min-key
    /// ordering; `eligible` feeds the profile-guided winner.
    #[inline]
    fn add(&mut self, i: u32, key: (SimTime, u32), take_max: bool, eligible: bool) {
        self.count += 1;
        let better = self.count == 1 || ((key > self.best_key) == take_max && key != self.best_key);
        if better {
            self.best = i;
            self.best_key = key;
        }
        if eligible {
            self.pg_count += 1;
            if self.pg_count == 1 || key < self.pg_key {
                self.pg_best = i;
                self.pg_key = key;
            }
        }
    }

    /// The tier's chosen parent — for ProfileGuided the best eligible
    /// candidate, falling back to the unfiltered winner when the learned
    /// caps rule everyone out (mirroring [`reference`]'s fallback).
    #[inline]
    fn pick(&self, heuristic: Heuristic) -> Option<usize> {
        if self.count == 0 {
            None
        } else if heuristic == Heuristic::ProfileGuided && self.pg_count > 0 {
            Some(self.pg_best as usize)
        } else {
            Some(self.best as usize)
        }
    }
}

/// Everything the candidate walk reads about a span, packed into a single
/// cache line's worth of state (32 bytes): the walk chases `unb_next` /
/// `act_next` pointers through random heap order, so one load per candidate
/// instead of one per parallel array is the difference between a
/// memory-bound and a compute-bound scan. `unb_prev`/`unb_next` thread the
/// per-server *unblocked* list through this same struct.
#[derive(Clone, Copy)]
struct HotSpan {
    /// Last observed event (arrival, issued call, received child response).
    last_event: SimTime,
    /// Request-message capture time (the FIFO heuristic's sort key).
    arrival: SimTime,
    /// Dense class slot.
    class: u32,
    /// Downstream calls attributed so far (the profile-guided cap test).
    calls_issued: u32,
    /// Intrusive per-server unblocked-list links.
    unb_prev: u32,
    unb_next: u32,
}

/// Unlinks span `i` from server `slot`'s unblocked list.
#[inline]
fn unlink_unb(hot: &mut [HotSpan], head: &mut [u32], tail: &mut [u32], slot: usize, i: usize) {
    let (p, n) = (hot[i].unb_prev, hot[i].unb_next);
    if p == NONE {
        head[slot] = n;
    } else {
        hot[p as usize].unb_next = n;
    }
    if n == NONE {
        tail[slot] = p;
    } else {
        hot[n as usize].unb_prev = p;
    }
    hot[i].unb_prev = NONE;
    hot[i].unb_next = NONE;
}

/// Appends span `i` to the tail of server `slot`'s unblocked list.
#[inline]
fn link_unb(hot: &mut [HotSpan], head: &mut [u32], tail: &mut [u32], slot: usize, i: usize) {
    let t = tail[slot];
    if t == NONE {
        head[slot] = i as u32;
    } else {
        hot[t as usize].unb_next = i as u32;
    }
    hot[i].unb_prev = t;
    hot[i].unb_next = NONE;
    tail[slot] = i as u32;
}

impl Reconstruction {
    /// Reconstructs transactions from a capture using `heuristic`.
    ///
    /// Only observable fields are consulted; ground truth is copied through
    /// for later validation but never influences attribution (verified by
    /// the `blinded_log_gives_identical_edges` test).
    ///
    /// This is the dense-index fast path: after the one-time [`LogIndex`]
    /// interning pass, the per-record loop performs no heap allocation
    /// beyond growing the output span table — property-tested bit-identical
    /// to [`reference::run`] across all four heuristics.
    pub fn run(log: &TraceLog, heuristic: Heuristic) -> Reconstruction {
        fgbd_obsv::span!("reconstruct");
        assert!(
            log.records.len() < NONE as usize,
            "capture too large for u32 span indices"
        );
        let ix = LogIndex::build(log);
        let take_max = heuristic == Heuristic::MostRecent;

        let cap = log.records.len() / 2 + 1;
        let mut spans: Vec<RecSpan> = Vec::with_capacity(cap);
        // Per-span dense state, parallel to `spans`. The candidate walk
        // touches only `hot`; the flags and the active/FIFO links are read
        // at single points per record.
        let mut hot: Vec<HotSpan> = Vec::with_capacity(cap);
        let mut blocked: Vec<bool> = Vec::with_capacity(cap);
        let mut in_unb: Vec<bool> = Vec::with_capacity(cap);
        let mut unambiguous: Vec<bool> = Vec::with_capacity(cap);
        // Intrusive per-server active list (doubly linked: O(1) unlink on
        // response) and per-(server, conn) open-request FIFO (singly linked).
        let mut act_prev: Vec<u32> = Vec::with_capacity(cap);
        let mut act_next: Vec<u32> = Vec::with_capacity(cap);
        let mut open_next: Vec<u32> = Vec::with_capacity(cap);
        let mut active_head = vec![NONE; ix.n_nodes];
        let mut active_tail = vec![NONE; ix.n_nodes];
        // Per-server list of *unblocked* active spans — the hard constraint
        // prunes blocked spans from every tier except the everyone-blocked
        // fallback, so the common-case walk only visits these.
        let mut unb_head = vec![NONE; ix.n_nodes];
        let mut unb_tail = vec![NONE; ix.n_nodes];
        let mut open_head = vec![NONE; ix.n_conns];
        let mut open_tail = vec![NONE; ix.n_conns];
        // Learned fan-out profile, dense over (node slot, class slot):
        // (max calls, samples) from unambiguous parents.
        let mut profile = vec![(0u32, 0u64); ix.n_nodes * ix.n_classes];

        for (ri, rec) in log.records.iter().enumerate() {
            match rec.kind {
                MsgKind::Request => {
                    let server = rec.dst;
                    let idx = spans.len();
                    let src = ix.node(rec.src);
                    let rec_class = ix.class_slot[usize::from(rec.class.0)];
                    let (parent, root) = if ix.client[src] {
                        (None, idx)
                    } else {
                        // Single pass over the source server's unblocked
                        // list, folding each candidate into the two
                        // constraint tiers it can win (hard constraint:
                        // blocked spans cannot call; soft constraint: class
                        // signatures are consistent along a transaction).
                        // The full active list is scanned only when every
                        // active span is blocked and both tiers are empty.
                        let mut all = TierBest::EMPTY;
                        let mut unb = TierBest::EMPTY;
                        let mut cls = TierBest::EMPTY;
                        let profile_row = src * ix.n_classes;
                        let mut cur = unb_head[src];
                        while cur != NONE {
                            let h = &hot[cur as usize];
                            let key = match heuristic {
                                Heuristic::Fifo => (h.arrival, cur),
                                _ => (h.last_event, cur),
                            };
                            let eligible = heuristic == Heuristic::ProfileGuided && {
                                let (max, n) = profile[profile_row + h.class as usize];
                                n < 8 || h.calls_issued < max
                            };
                            unb.add(cur, key, take_max, eligible);
                            if h.class == rec_class {
                                cls.add(cur, key, take_max, eligible);
                            }
                            cur = h.unb_next;
                        }
                        let tier = if cls.count > 0 {
                            &cls
                        } else if unb.count > 0 {
                            &unb
                        } else {
                            let mut cur = active_head[src];
                            while cur != NONE {
                                let h = &hot[cur as usize];
                                let key = match heuristic {
                                    Heuristic::Fifo => (h.arrival, cur),
                                    _ => (h.last_event, cur),
                                };
                                let eligible = heuristic == Heuristic::ProfileGuided && {
                                    let (max, n) = profile[profile_row + h.class as usize];
                                    n < 8 || h.calls_issued < max
                                };
                                all.add(cur, key, take_max, eligible);
                                cur = act_next[cur as usize];
                            }
                            &all
                        };
                        match tier.pick(heuristic) {
                            Some(p) => {
                                if tier.count > 1 {
                                    // This parent's call count is now
                                    // heuristic-dependent; don't learn from it.
                                    unambiguous[p] = false;
                                }
                                blocked[p] = true;
                                if in_unb[p] {
                                    // Candidates are active on `rec.src`, so
                                    // the parent's server slot is `src`.
                                    unlink_unb(&mut hot, &mut unb_head, &mut unb_tail, src, p);
                                    in_unb[p] = false;
                                }
                                (Some(p), spans[p].root)
                            }
                            // Orphan call (capture truncation): treat as its
                            // own root so analysis can continue.
                            None => (None, idx),
                        }
                    };
                    spans.push(RecSpan {
                        server,
                        class: rec.class,
                        arrival: rec.at,
                        departure: None,
                        conn: rec.conn,
                        parent,
                        root,
                        calls_issued: 0,
                        truth: rec.truth,
                    });
                    hot.push(HotSpan {
                        last_event: rec.at,
                        arrival: rec.at,
                        class: rec_class,
                        calls_issued: 0,
                        unb_prev: NONE,
                        unb_next: NONE,
                    });
                    blocked.push(false);
                    in_unb.push(true);
                    unambiguous.push(true);
                    act_prev.push(NONE);
                    act_next.push(NONE);
                    open_next.push(NONE);
                    if let Some(p) = parent {
                        spans[p].calls_issued += 1;
                        hot[p].calls_issued += 1;
                        hot[p].last_event = rec.at;
                    }
                    let idx32 = idx as u32;
                    // Append to the (server, conn) open-request FIFO.
                    let c = ix.rec_conn[ri] as usize;
                    if open_tail[c] == NONE {
                        open_head[c] = idx32;
                    } else {
                        open_next[open_tail[c] as usize] = idx32;
                    }
                    open_tail[c] = idx32;
                    // Append to the server's active and unblocked lists.
                    let d = ix.node(server);
                    let tail = active_tail[d];
                    if tail == NONE {
                        active_head[d] = idx32;
                    } else {
                        act_next[tail as usize] = idx32;
                    }
                    act_prev[idx] = tail;
                    active_tail[d] = idx32;
                    link_unb(&mut hot, &mut unb_head, &mut unb_tail, d, idx);
                }
                MsgKind::Response => {
                    // Pop the (server, conn) FIFO head; a response with no
                    // matching request is a front-truncated capture — skip.
                    let c = ix.rec_conn[ri] as usize;
                    let head = open_head[c];
                    if head == NONE {
                        continue;
                    }
                    let idx = head as usize;
                    open_head[c] = open_next[idx];
                    if open_head[c] == NONE {
                        open_tail[c] = NONE;
                    }
                    spans[idx].departure = Some(rec.at);
                    // Unlink from the server's active and unblocked lists.
                    let sslot = ix.node(spans[idx].server);
                    let (p, n) = (act_prev[idx], act_next[idx]);
                    if p == NONE {
                        active_head[sslot] = n;
                    } else {
                        act_next[p as usize] = n;
                    }
                    if n == NONE {
                        active_tail[sslot] = p;
                    } else {
                        act_prev[n as usize] = p;
                    }
                    if in_unb[idx] {
                        unlink_unb(&mut hot, &mut unb_head, &mut unb_tail, sslot, idx);
                        in_unb[idx] = false;
                    }
                    if let Some(par) = spans[idx].parent {
                        hot[par].last_event = rec.at;
                        blocked[par] = false;
                        // The parent is a candidate again — unless it already
                        // departed (out-of-order pairing in a truncated
                        // capture), in which case it left the active set.
                        if !in_unb[par] && spans[par].departure.is_none() {
                            let pslot = ix.node(spans[par].server);
                            link_unb(&mut hot, &mut unb_head, &mut unb_tail, pslot, par);
                            in_unb[par] = true;
                        }
                    }
                    // Feed the fan-out profile from unambiguous spans.
                    if unambiguous[idx] && spans[idx].calls_issued > 0 {
                        let e = &mut profile[sslot * ix.n_classes + hot[idx].class as usize];
                        e.0 = e.0.max(spans[idx].calls_issued);
                        e.1 += 1;
                    }
                }
            }
        }

        // Materialize transactions in two exact-capacity passes: roots in
        // creation order, then members in span (creation) order — the same
        // ordering the incremental reference registration produces.
        let mut txn_of_root: Vec<u32> = vec![NONE; spans.len()];
        let mut txns: Vec<Txn> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            if s.parent.is_none() && s.root == i {
                txn_of_root[i] = txns.len() as u32;
                txns.push(Txn {
                    root: i,
                    spans: Vec::new(),
                    complete: false,
                });
            }
        }
        let mut counts = vec![0usize; txns.len()];
        for s in &spans {
            counts[txn_of_root[s.root] as usize] += 1;
        }
        for (t, c) in txns.iter_mut().zip(counts) {
            t.spans.reserve_exact(c);
        }
        for (i, s) in spans.iter().enumerate() {
            txns[txn_of_root[s.root] as usize].spans.push(i);
        }
        for txn in &mut txns {
            txn.complete = txn.spans.iter().all(|&i| spans[i].departure.is_some());
        }

        fgbd_obsv::counter!("reconstruct.records", log.records.len() as u64);
        fgbd_obsv::counter!("reconstruct.spans", spans.len() as u64);
        fgbd_obsv::counter!("reconstruct.txns", txns.len() as u64);
        Reconstruction { spans, txns }
    }

    /// Number of complete transactions.
    pub fn complete_txns(&self) -> usize {
        self.txns.iter().filter(|t| t.complete).count()
    }

    /// Indices of the direct children of span `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(i))
            .map(|(j, _)| j)
            .collect()
    }
}

/// The original `HashMap`-keyed reconstruction, kept verbatim as the
/// executable specification of [`Reconstruction::run`]: the proptest oracle
/// (`reconstruct_fast_matches_reference`) and the Criterion benches compare
/// the dense fast path against this span-for-span.
pub mod reference {
    use super::*;

    /// Reconstructs transactions from a capture using `heuristic` — the
    /// specification implementation the fast path is held bit-identical to.
    pub fn run(log: &TraceLog, heuristic: Heuristic) -> Reconstruction {
        let client: Vec<NodeId> = log
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Client)
            .map(|n| n.id)
            .collect();
        let is_client = |id: NodeId| client.contains(&id);

        let mut spans: Vec<RecSpan> = Vec::new();
        let mut last_event: Vec<SimTime> = Vec::new();
        // Spans blocked on an outstanding downstream call (synchronous
        // middleware: such spans cannot issue another call).
        let mut blocked: Vec<bool> = Vec::new();
        // Open requests per (server, conn), FIFO.
        let mut open: HashMap<(NodeId, ConnId), Vec<usize>> = HashMap::new();
        // Active span indices per server.
        let mut active: HashMap<NodeId, Vec<usize>> = HashMap::new();
        // Learned fan-out profile: (server, class) -> (max calls, samples)
        // from unambiguous parents.
        let mut profile: HashMap<(NodeId, ClassId), (u32, u64)> = HashMap::new();
        // Marks spans whose entire life had exactly one candidate ambiguity
        // (so their call count is trustworthy for the profile).
        let mut unambiguous: Vec<bool> = Vec::new();
        let mut txn_of_root: HashMap<usize, usize> = HashMap::new();
        let mut txns: Vec<Txn> = Vec::new();

        for rec in &log.records {
            match rec.kind {
                MsgKind::Request => {
                    let server = rec.dst;
                    let idx = spans.len();
                    let (parent, root) = if is_client(rec.src) {
                        (None, idx)
                    } else {
                        let all = active.get(&rec.src).map_or(&[][..], Vec::as_slice);
                        // Hard constraint: blocked spans cannot call.
                        let unblocked: Vec<usize> =
                            all.iter().copied().filter(|&i| !blocked[i]).collect();
                        // Soft constraint: class signatures are consistent
                        // along a transaction; relax if it empties the set.
                        let class_match: Vec<usize> = unblocked
                            .iter()
                            .copied()
                            .filter(|&i| spans[i].class == rec.class)
                            .collect();
                        let cands: &[usize] = if !class_match.is_empty() {
                            &class_match
                        } else if !unblocked.is_empty() {
                            &unblocked
                        } else {
                            all
                        };
                        let chosen = choose_parent(cands, &spans, &last_event, &profile, heuristic);
                        match chosen {
                            Some(p) => {
                                if cands.len() > 1 {
                                    // This parent's call count is now
                                    // heuristic-dependent; don't learn from it.
                                    unambiguous[p] = false;
                                }
                                blocked[p] = true;
                                (Some(p), spans[p].root)
                            }
                            // Orphan call (capture truncation): treat as its
                            // own root so analysis can continue.
                            None => (None, idx),
                        }
                    };
                    spans.push(RecSpan {
                        server,
                        class: rec.class,
                        arrival: rec.at,
                        departure: None,
                        conn: rec.conn,
                        parent,
                        root,
                        calls_issued: 0,
                        truth: rec.truth,
                    });
                    last_event.push(rec.at);
                    blocked.push(false);
                    unambiguous.push(true);
                    if let Some(p) = parent {
                        spans[p].calls_issued += 1;
                        last_event[p] = rec.at;
                    }
                    open.entry((server, rec.conn)).or_default().push(idx);
                    active.entry(server).or_default().push(idx);
                    // Register the transaction when a root appears.
                    if parent.is_none() && root == idx {
                        let t = txns.len();
                        txns.push(Txn {
                            root: idx,
                            spans: vec![idx],
                            complete: false,
                        });
                        txn_of_root.insert(idx, t);
                    } else {
                        let t = txn_of_root[&root];
                        txns[t].spans.push(idx);
                    }
                }
                MsgKind::Response => {
                    let server = rec.src;
                    let Some(idx) = open
                        .get_mut(&(server, rec.conn))
                        .filter(|v| !v.is_empty())
                        .map(|v| v.remove(0))
                    else {
                        // Response with no matching request: front-truncated
                        // capture; skip.
                        continue;
                    };
                    spans[idx].departure = Some(rec.at);
                    if let Some(v) = active.get_mut(&server) {
                        v.retain(|&i| i != idx);
                    }
                    if let Some(p) = spans[idx].parent {
                        last_event[p] = rec.at;
                        blocked[p] = false;
                    }
                    // Feed the fan-out profile from unambiguous spans.
                    if unambiguous[idx] && spans[idx].calls_issued > 0 {
                        let e = profile.entry((server, spans[idx].class)).or_insert((0, 0));
                        e.0 = e.0.max(spans[idx].calls_issued);
                        e.1 += 1;
                    }
                }
            }
        }

        for txn in &mut txns {
            txn.complete = txn.spans.iter().all(|&i| spans[i].departure.is_some());
        }

        Reconstruction { spans, txns }
    }

    fn choose_parent(
        cands: &[usize],
        spans: &[RecSpan],
        last_event: &[SimTime],
        profile: &HashMap<(NodeId, ClassId), (u32, u64)>,
        heuristic: Heuristic,
    ) -> Option<usize> {
        if cands.is_empty() {
            return None;
        }
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        match heuristic {
            Heuristic::LongestQuiescent => longest_quiescent(cands, last_event),
            Heuristic::MostRecent => cands.iter().copied().max_by_key(|&i| (last_event[i], i)),
            Heuristic::Fifo => cands.iter().copied().min_by_key(|&i| (spans[i].arrival, i)),
            Heuristic::ProfileGuided => {
                // Keep candidates that have not yet exhausted their learned
                // fan-out cap; fall back to all candidates if none qualify.
                let cap = |i: usize| -> Option<u32> {
                    let (max, n) = profile.get(&(spans[i].server, spans[i].class))?;
                    if *n < 8 {
                        return None; // too few samples to trust
                    }
                    Some(*max)
                };
                let eligible: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| cap(i).is_none_or(|b| spans[i].calls_issued < b))
                    .collect();
                if eligible.is_empty() {
                    longest_quiescent(cands, last_event)
                } else {
                    longest_quiescent(&eligible, last_event)
                }
            }
        }
    }

    fn longest_quiescent(cands: &[usize], last_event: &[SimTime]) -> Option<usize> {
        cands.iter().copied().min_by_key(|&i| (last_event[i], i))
    }
}

/// Reconstruction quality relative to ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Fraction of non-root spans attributed to a parent of the correct
    /// transaction.
    pub edge_accuracy: f64,
    /// Fraction of complete ground-truth transactions whose reconstructed
    /// span set matches exactly.
    pub txn_accuracy: f64,
    /// Number of non-root spans scored.
    pub edges: usize,
    /// Number of ground-truth transactions scored.
    pub txns: usize,
}

impl Accuracy {
    /// Scores `rec` against the ground-truth annotations it carries.
    ///
    /// Spans without ground truth (blinded captures) are skipped; call this
    /// on a reconstruction of the *annotated* log.
    pub fn evaluate(rec: &Reconstruction) -> Accuracy {
        let mut edges = 0usize;
        let mut correct_edges = 0usize;
        for s in &rec.spans {
            let (Some(p), Some(truth)) = (s.parent, s.truth) else {
                continue;
            };
            edges += 1;
            if rec.spans[p].truth == Some(truth) {
                correct_edges += 1;
            }
        }

        // Ground-truth span multiset per txn id (only spans that closed).
        let mut truth_count: HashMap<TxnId, usize> = HashMap::new();
        for s in &rec.spans {
            if let (Some(t), Some(_)) = (s.truth, s.departure) {
                *truth_count.entry(t).or_default() += 1;
            }
        }
        let mut txns = 0usize;
        let mut correct_txns = 0usize;
        for txn in &rec.txns {
            if !txn.complete {
                continue;
            }
            let Some(root_truth) = rec.spans[txn.root].truth else {
                continue;
            };
            txns += 1;
            let all_match = txn
                .spans
                .iter()
                .all(|&i| rec.spans[i].truth == Some(root_truth));
            if all_match && truth_count.get(&root_truth) == Some(&txn.spans.len()) {
                correct_txns += 1;
            }
        }

        Accuracy {
            edge_accuracy: if edges == 0 {
                1.0
            } else {
                correct_edges as f64 / edges as f64
            },
            txn_accuracy: if txns == 0 {
                1.0
            } else {
                correct_txns as f64 / txns as f64
            },
            edges,
            txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MsgRecord, NodeMeta};

    const CLIENT: NodeId = NodeId(0);
    const WEB: NodeId = NodeId(1);
    const APP: NodeId = NodeId(2);

    const ALL_HEURISTICS: [Heuristic; 4] = [
        Heuristic::LongestQuiescent,
        Heuristic::MostRecent,
        Heuristic::Fifo,
        Heuristic::ProfileGuided,
    ];

    fn nodes() -> Vec<NodeMeta> {
        vec![
            NodeMeta {
                id: CLIENT,
                name: "client".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: WEB,
                name: "web".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
            NodeMeta {
                id: APP,
                name: "app".into(),
                kind: NodeKind::Server,
                tier: Some(1),
            },
        ]
    }

    fn rec(at: u64, src: NodeId, dst: NodeId, kind: MsgKind, conn: u32, truth: u64) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at),
            src,
            dst,
            kind,
            conn: ConnId(conn),
            class: ClassId(1),
            bytes: 64,
            truth: Some(TxnId(truth)),
        }
    }

    /// Two fully serial transactions: unambiguous regardless of heuristic.
    fn serial_log() -> TraceLog {
        let mut log = TraceLog::new(nodes());
        for (base, truth, conn) in [(0u64, 1u64, 10u32), (1000, 2, 11)] {
            log.push(rec(base + 10, CLIENT, WEB, MsgKind::Request, conn, truth));
            log.push(rec(
                base + 20,
                WEB,
                APP,
                MsgKind::Request,
                100 + conn,
                truth,
            ));
            log.push(rec(
                base + 50,
                APP,
                WEB,
                MsgKind::Response,
                100 + conn,
                truth,
            ));
            log.push(rec(base + 60, WEB, CLIENT, MsgKind::Response, conn, truth));
        }
        log
    }

    #[test]
    fn serial_transactions_reconstruct_perfectly() {
        for h in ALL_HEURISTICS {
            let rec = Reconstruction::run(&serial_log(), h);
            assert_eq!(rec.txns.len(), 2);
            assert_eq!(rec.complete_txns(), 2);
            let acc = Accuracy::evaluate(&rec);
            assert_eq!(acc.edge_accuracy, 1.0, "heuristic {h:?}");
            assert_eq!(acc.txn_accuracy, 1.0, "heuristic {h:?}");
            assert_eq!(acc.edges, 2);
        }
    }

    /// A blocked span cannot be attributed a second call, no matter the
    /// heuristic: while txn 1's app call is outstanding, txn 2's call can
    /// only belong to txn 2.
    #[test]
    fn blocked_constraint_resolves_interleaved_calls() {
        let mut log = TraceLog::new(nodes());
        log.push(rec(10, CLIENT, WEB, MsgKind::Request, 10, 1));
        log.push(rec(12, WEB, APP, MsgKind::Request, 110, 1)); // txn1 now blocked
        log.push(rec(30, CLIENT, WEB, MsgKind::Request, 11, 2));
        log.push(rec(32, WEB, APP, MsgKind::Request, 111, 2)); // only txn2 can call
        log.push(rec(60, APP, WEB, MsgKind::Response, 110, 1));
        log.push(rec(70, APP, WEB, MsgKind::Response, 111, 2));
        log.push(rec(80, WEB, CLIENT, MsgKind::Response, 10, 1));
        log.push(rec(90, WEB, CLIENT, MsgKind::Response, 11, 2));
        for h in [
            Heuristic::LongestQuiescent,
            Heuristic::MostRecent,
            Heuristic::Fifo,
        ] {
            let r = Reconstruction::run(&log, h);
            let acc = Accuracy::evaluate(&r);
            assert_eq!(acc.edge_accuracy, 1.0, "{h:?}");
            assert_eq!(acc.txn_accuracy, 1.0, "{h:?}");
        }
    }

    /// When two unblocked same-class spans are candidates, the one whose
    /// last event is oldest has had the time to finish its CPU segment and
    /// issue the call — LongestQuiescent resolves this, MostRecent does not.
    #[test]
    fn longest_quiescent_beats_most_recent_on_second_calls() {
        let mut log = TraceLog::new(nodes());
        // Txn 1 arrives, issues call 1 immediately, gets its response at 20,
        // then computes for 20us before issuing call 2 at t=40.
        log.push(rec(0, CLIENT, WEB, MsgKind::Request, 10, 1));
        log.push(rec(2, WEB, APP, MsgKind::Request, 110, 1));
        log.push(rec(20, APP, WEB, MsgKind::Response, 110, 1));
        // Txn 2 arrives at 30 (its last event is newer than txn 1's).
        log.push(rec(30, CLIENT, WEB, MsgKind::Request, 11, 2));
        // Txn 1 issues its second call at t=40.
        log.push(rec(40, WEB, APP, MsgKind::Request, 111, 1));
        log.push(rec(55, APP, WEB, MsgKind::Response, 111, 1));
        log.push(rec(60, WEB, CLIENT, MsgKind::Response, 10, 1));
        // Txn 2 issues its call only after txn 1 finished.
        log.push(rec(65, WEB, APP, MsgKind::Request, 112, 2));
        log.push(rec(75, APP, WEB, MsgKind::Response, 112, 2));
        log.push(rec(80, WEB, CLIENT, MsgKind::Response, 11, 2));
        let good = Accuracy::evaluate(&Reconstruction::run(&log, Heuristic::LongestQuiescent));
        assert_eq!(good.edge_accuracy, 1.0);
        let bad = Accuracy::evaluate(&Reconstruction::run(&log, Heuristic::MostRecent));
        assert!(bad.edge_accuracy < 1.0);
    }

    #[test]
    fn blinded_log_gives_identical_edges() {
        let log = serial_log();
        let a = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        let b = Reconstruction::run(&log.blinded(), Heuristic::LongestQuiescent);
        let edges_a: Vec<Option<usize>> = a.spans.iter().map(|s| s.parent).collect();
        let edges_b: Vec<Option<usize>> = b.spans.iter().map(|s| s.parent).collect();
        assert_eq!(edges_a, edges_b);
        // Blinded spans carry no truth.
        assert!(b.spans.iter().all(|s| s.truth.is_none()));
    }

    #[test]
    fn incomplete_txn_is_flagged() {
        let mut log = serial_log();
        // A root whose response never arrives.
        log.push(rec(5000, CLIENT, WEB, MsgKind::Request, 12, 3));
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        assert_eq!(r.txns.len(), 3);
        assert_eq!(r.complete_txns(), 2);
    }

    #[test]
    fn orphan_downstream_call_becomes_root() {
        let mut log = TraceLog::new(nodes());
        // An app call with no active web span (front truncation).
        log.push(rec(10, WEB, APP, MsgKind::Request, 100, 9));
        log.push(rec(20, APP, WEB, MsgKind::Response, 100, 9));
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        assert_eq!(r.txns.len(), 1);
        assert!(r.spans[0].parent.is_none());
    }

    #[test]
    fn children_lists_direct_descendants() {
        let r = Reconstruction::run(&serial_log(), Heuristic::LongestQuiescent);
        assert_eq!(r.children(0), vec![1]);
        assert!(r.children(1).is_empty());
    }

    /// Spot-check of the proptest oracle: fast path and reference agree
    /// span-for-span on an ambiguous interleaved log, for every heuristic.
    #[test]
    fn fast_path_matches_reference_on_interleaved_log() {
        let mut log = TraceLog::new(nodes());
        // Three concurrent same-class web spans with overlapping app calls:
        // attribution is genuinely heuristic-dependent.
        log.push(rec(0, CLIENT, WEB, MsgKind::Request, 10, 1));
        log.push(rec(5, CLIENT, WEB, MsgKind::Request, 11, 2));
        log.push(rec(8, CLIENT, WEB, MsgKind::Request, 12, 3));
        log.push(rec(12, WEB, APP, MsgKind::Request, 110, 1));
        log.push(rec(14, WEB, APP, MsgKind::Request, 111, 2));
        log.push(rec(20, APP, WEB, MsgKind::Response, 110, 1));
        log.push(rec(22, WEB, APP, MsgKind::Request, 112, 3));
        log.push(rec(25, APP, WEB, MsgKind::Response, 111, 2));
        log.push(rec(28, APP, WEB, MsgKind::Response, 112, 3));
        log.push(rec(30, WEB, CLIENT, MsgKind::Response, 10, 1));
        log.push(rec(32, WEB, CLIENT, MsgKind::Response, 11, 2));
        log.push(rec(34, WEB, CLIENT, MsgKind::Response, 12, 3));
        // Plus an orphan response (front truncation) and an orphan call.
        log.push(rec(40, APP, WEB, MsgKind::Response, 999, 9));
        log.push(rec(45, WEB, APP, MsgKind::Request, 998, 9));
        for h in ALL_HEURISTICS {
            let fast = Reconstruction::run(&log, h);
            let spec = reference::run(&log, h);
            assert_eq!(fast.spans, spec.spans, "{h:?}");
            assert_eq!(fast.txns, spec.txns, "{h:?}");
        }
    }

    /// Records naming nodes absent from the node table (foreign taps) are
    /// treated as server traffic by both implementations.
    #[test]
    fn unknown_nodes_match_reference() {
        let mut log = TraceLog::new(nodes());
        let ghost = NodeId(7);
        log.push(rec(10, CLIENT, WEB, MsgKind::Request, 10, 1));
        log.push(rec(12, ghost, APP, MsgKind::Request, 200, 5));
        log.push(rec(15, WEB, ghost, MsgKind::Request, 201, 1));
        log.push(rec(20, APP, ghost, MsgKind::Response, 200, 5));
        log.push(rec(25, ghost, WEB, MsgKind::Response, 201, 1));
        log.push(rec(30, WEB, CLIENT, MsgKind::Response, 10, 1));
        for h in ALL_HEURISTICS {
            let fast = Reconstruction::run(&log, h);
            let spec = reference::run(&log, h);
            assert_eq!(fast.spans, spec.spans, "{h:?}");
            assert_eq!(fast.txns, spec.txns, "{h:?}");
        }
    }
}
