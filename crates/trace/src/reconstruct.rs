//! Black-box transaction reconstruction (the SysViz role).
//!
//! SysViz is a *black-box* tracer: interaction messages carry no global
//! transaction identifier, so the trace of each transaction must be
//! reconstructed from timing and nesting constraints alone (paper §II-C; the
//! authors report >99% accuracy on a 4-tier application under high
//! concurrency).
//!
//! The structural facts available to a black-box reconstructor:
//!
//! * A downstream call observed on server `P → S` must belong to a request
//!   that is currently **active** on `P` (its thread is blocked on the call —
//!   calls are synchronous in n-tier middleware).
//! * A request that already has an **outstanding** downstream call cannot
//!   issue another one — its thread is blocked. This hard constraint prunes
//!   most candidates under high concurrency.
//! * The **class signature** visible in message payloads (URL pattern /
//!   query template) must be consistent along a transaction: a parent of
//!   class *c* only issues class-*c* calls. (SysViz learns such
//!   URL-to-query-template associations from its transaction models.)
//! * The parent server `P` is *known* from the message's source address; the
//!   ambiguity is only **which** of the requests active on `P` issued the
//!   call.
//! * Requests on one TCP connection are serial, so request/response pairing
//!   per connection is exact.
//!
//! After pruning, remaining ties are broken by a [`Heuristic`]: recency (a
//! thread that just received a response or just arrived is the most likely
//! next caller), FIFO (oldest active request first), or a profile-guided
//! mode that learns per-class fan-out counts from unambiguous
//! (single-candidate) situations and uses them to rule out parents that
//! already issued their full complement of calls. [`Accuracy`] scores any
//! reconstruction against simulator ground truth.

use std::collections::HashMap;

use fgbd_des::SimTime;

use crate::record::{ClassId, ConnId, MsgKind, NodeId, NodeKind, TraceLog, TxnId};

/// Parent-attribution strategy for downstream calls (applied after the hard
/// blocked/class pruning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Attribute to the candidate whose last observed event (arrival, issued
    /// call, or received child response) is **oldest**: under processor
    /// sharing it has had the most time to finish its CPU segment and issue
    /// the next call. The default, and empirically the most accurate.
    LongestQuiescent,
    /// Attribute to the candidate whose last observed event is most recent.
    /// A baseline for the ablation benchmarks.
    MostRecent,
    /// Attribute to the oldest active request (FIFO by arrival). A naive
    /// baseline.
    Fifo,
    /// [`Heuristic::LongestQuiescent`], additionally filtered by learned
    /// per-class fan-out counts: parents that already issued as many calls
    /// as their class was ever observed to issue (in unambiguous cases) are
    /// ruled out.
    ProfileGuided,
}

/// One reconstructed per-server span, with its attributed parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecSpan {
    /// Server the request visited.
    pub server: NodeId,
    /// Class signature.
    pub class: ClassId,
    /// Request-message capture time.
    pub arrival: SimTime,
    /// Response-message capture time; `None` if still open at capture end.
    pub departure: Option<SimTime>,
    /// Connection the request travelled on.
    pub conn: ConnId,
    /// Index of the attributed parent span, `None` for transaction roots.
    pub parent: Option<usize>,
    /// Index of this span's transaction root.
    pub root: usize,
    /// Number of downstream calls attributed to this span.
    pub calls_issued: u32,
    /// Ground truth transaction id (copied through for validation; never
    /// consulted during attribution).
    pub truth: Option<TxnId>,
}

/// One reconstructed transaction: a root client request and every span
/// attributed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Index of the root span.
    pub root: usize,
    /// All member spans (including the root), in creation order.
    pub spans: Vec<usize>,
    /// `true` if every member span saw its response before capture end.
    pub complete: bool,
}

/// The result of black-box reconstruction over a capture.
#[derive(Debug, Clone, Default)]
pub struct Reconstruction {
    /// Every reconstructed span.
    pub spans: Vec<RecSpan>,
    /// Transactions, one per client request observed.
    pub txns: Vec<Txn>,
}

impl Reconstruction {
    /// Reconstructs transactions from a capture using `heuristic`.
    ///
    /// Only observable fields are consulted; ground truth is copied through
    /// for later validation but never influences attribution (verified by
    /// the `blinded_log_gives_identical_edges` test).
    pub fn run(log: &TraceLog, heuristic: Heuristic) -> Reconstruction {
        let client: Vec<NodeId> = log
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Client)
            .map(|n| n.id)
            .collect();
        let is_client = |id: NodeId| client.contains(&id);

        let mut spans: Vec<RecSpan> = Vec::new();
        let mut last_event: Vec<SimTime> = Vec::new();
        // Spans blocked on an outstanding downstream call (synchronous
        // middleware: such spans cannot issue another call).
        let mut blocked: Vec<bool> = Vec::new();
        // Open requests per (server, conn), FIFO.
        let mut open: HashMap<(NodeId, ConnId), Vec<usize>> = HashMap::new();
        // Active span indices per server.
        let mut active: HashMap<NodeId, Vec<usize>> = HashMap::new();
        // Learned fan-out profile: (server, class) -> (max calls, samples)
        // from unambiguous parents.
        let mut profile: HashMap<(NodeId, ClassId), (u32, u64)> = HashMap::new();
        // Marks spans whose entire life had exactly one candidate ambiguity
        // (so their call count is trustworthy for the profile).
        let mut unambiguous: Vec<bool> = Vec::new();
        let mut txn_of_root: HashMap<usize, usize> = HashMap::new();
        let mut txns: Vec<Txn> = Vec::new();

        for rec in &log.records {
            match rec.kind {
                MsgKind::Request => {
                    let server = rec.dst;
                    let idx = spans.len();
                    let (parent, root) = if is_client(rec.src) {
                        (None, idx)
                    } else {
                        let all = active.get(&rec.src).map_or(&[][..], Vec::as_slice);
                        // Hard constraint: blocked spans cannot call.
                        let unblocked: Vec<usize> =
                            all.iter().copied().filter(|&i| !blocked[i]).collect();
                        // Soft constraint: class signatures are consistent
                        // along a transaction; relax if it empties the set.
                        let class_match: Vec<usize> = unblocked
                            .iter()
                            .copied()
                            .filter(|&i| spans[i].class == rec.class)
                            .collect();
                        let cands: &[usize] = if !class_match.is_empty() {
                            &class_match
                        } else if !unblocked.is_empty() {
                            &unblocked
                        } else {
                            all
                        };
                        let chosen = choose_parent(cands, &spans, &last_event, &profile, heuristic);
                        match chosen {
                            Some(p) => {
                                if cands.len() > 1 {
                                    // This parent's call count is now
                                    // heuristic-dependent; don't learn from it.
                                    unambiguous[p] = false;
                                }
                                blocked[p] = true;
                                (Some(p), spans[p].root)
                            }
                            // Orphan call (capture truncation): treat as its
                            // own root so analysis can continue.
                            None => (None, idx),
                        }
                    };
                    spans.push(RecSpan {
                        server,
                        class: rec.class,
                        arrival: rec.at,
                        departure: None,
                        conn: rec.conn,
                        parent,
                        root,
                        calls_issued: 0,
                        truth: rec.truth,
                    });
                    last_event.push(rec.at);
                    blocked.push(false);
                    unambiguous.push(true);
                    if let Some(p) = parent {
                        spans[p].calls_issued += 1;
                        last_event[p] = rec.at;
                    }
                    open.entry((server, rec.conn)).or_default().push(idx);
                    active.entry(server).or_default().push(idx);
                    // Register the transaction when a root appears.
                    if parent.is_none() && root == idx {
                        let t = txns.len();
                        txns.push(Txn {
                            root: idx,
                            spans: vec![idx],
                            complete: false,
                        });
                        txn_of_root.insert(idx, t);
                    } else {
                        let t = txn_of_root[&root];
                        txns[t].spans.push(idx);
                    }
                }
                MsgKind::Response => {
                    let server = rec.src;
                    let Some(idx) = open
                        .get_mut(&(server, rec.conn))
                        .filter(|v| !v.is_empty())
                        .map(|v| v.remove(0))
                    else {
                        // Response with no matching request: front-truncated
                        // capture; skip.
                        continue;
                    };
                    spans[idx].departure = Some(rec.at);
                    if let Some(v) = active.get_mut(&server) {
                        v.retain(|&i| i != idx);
                    }
                    if let Some(p) = spans[idx].parent {
                        last_event[p] = rec.at;
                        blocked[p] = false;
                    }
                    // Feed the fan-out profile from unambiguous spans.
                    if unambiguous[idx] && spans[idx].calls_issued > 0 {
                        let e = profile.entry((server, spans[idx].class)).or_insert((0, 0));
                        e.0 = e.0.max(spans[idx].calls_issued);
                        e.1 += 1;
                    }
                }
            }
        }

        for txn in &mut txns {
            txn.complete = txn.spans.iter().all(|&i| spans[i].departure.is_some());
        }

        Reconstruction { spans, txns }
    }

    /// Number of complete transactions.
    pub fn complete_txns(&self) -> usize {
        self.txns.iter().filter(|t| t.complete).count()
    }

    /// Indices of the direct children of span `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(i))
            .map(|(j, _)| j)
            .collect()
    }
}

fn choose_parent(
    cands: &[usize],
    spans: &[RecSpan],
    last_event: &[SimTime],
    profile: &HashMap<(NodeId, ClassId), (u32, u64)>,
    heuristic: Heuristic,
) -> Option<usize> {
    if cands.is_empty() {
        return None;
    }
    if cands.len() == 1 {
        return Some(cands[0]);
    }
    match heuristic {
        Heuristic::LongestQuiescent => longest_quiescent(cands, last_event),
        Heuristic::MostRecent => cands.iter().copied().max_by_key(|&i| (last_event[i], i)),
        Heuristic::Fifo => cands.iter().copied().min_by_key(|&i| (spans[i].arrival, i)),
        Heuristic::ProfileGuided => {
            // Keep candidates that have not yet exhausted their learned
            // fan-out cap; fall back to all candidates if none qualify.
            let cap = |i: usize| -> Option<u32> {
                let (max, n) = profile.get(&(spans[i].server, spans[i].class))?;
                if *n < 8 {
                    return None; // too few samples to trust
                }
                Some(*max)
            };
            let eligible: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| cap(i).is_none_or(|b| spans[i].calls_issued < b))
                .collect();
            if eligible.is_empty() {
                longest_quiescent(cands, last_event)
            } else {
                longest_quiescent(&eligible, last_event)
            }
        }
    }
}

fn longest_quiescent(cands: &[usize], last_event: &[SimTime]) -> Option<usize> {
    cands.iter().copied().min_by_key(|&i| (last_event[i], i))
}

/// Reconstruction quality relative to ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Fraction of non-root spans attributed to a parent of the correct
    /// transaction.
    pub edge_accuracy: f64,
    /// Fraction of complete ground-truth transactions whose reconstructed
    /// span set matches exactly.
    pub txn_accuracy: f64,
    /// Number of non-root spans scored.
    pub edges: usize,
    /// Number of ground-truth transactions scored.
    pub txns: usize,
}

impl Accuracy {
    /// Scores `rec` against the ground-truth annotations it carries.
    ///
    /// Spans without ground truth (blinded captures) are skipped; call this
    /// on a reconstruction of the *annotated* log.
    pub fn evaluate(rec: &Reconstruction) -> Accuracy {
        let mut edges = 0usize;
        let mut correct_edges = 0usize;
        for s in &rec.spans {
            let (Some(p), Some(truth)) = (s.parent, s.truth) else {
                continue;
            };
            edges += 1;
            if rec.spans[p].truth == Some(truth) {
                correct_edges += 1;
            }
        }

        // Ground-truth span multiset per txn id (only spans that closed).
        let mut truth_count: HashMap<TxnId, usize> = HashMap::new();
        for s in &rec.spans {
            if let (Some(t), Some(_)) = (s.truth, s.departure) {
                *truth_count.entry(t).or_default() += 1;
            }
        }
        let mut txns = 0usize;
        let mut correct_txns = 0usize;
        for txn in &rec.txns {
            if !txn.complete {
                continue;
            }
            let Some(root_truth) = rec.spans[txn.root].truth else {
                continue;
            };
            txns += 1;
            let all_match = txn
                .spans
                .iter()
                .all(|&i| rec.spans[i].truth == Some(root_truth));
            if all_match && truth_count.get(&root_truth) == Some(&txn.spans.len()) {
                correct_txns += 1;
            }
        }

        Accuracy {
            edge_accuracy: if edges == 0 {
                1.0
            } else {
                correct_edges as f64 / edges as f64
            },
            txn_accuracy: if txns == 0 {
                1.0
            } else {
                correct_txns as f64 / txns as f64
            },
            edges,
            txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MsgRecord, NodeMeta};

    const CLIENT: NodeId = NodeId(0);
    const WEB: NodeId = NodeId(1);
    const APP: NodeId = NodeId(2);

    fn nodes() -> Vec<NodeMeta> {
        vec![
            NodeMeta {
                id: CLIENT,
                name: "client".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: WEB,
                name: "web".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
            NodeMeta {
                id: APP,
                name: "app".into(),
                kind: NodeKind::Server,
                tier: Some(1),
            },
        ]
    }

    fn rec(at: u64, src: NodeId, dst: NodeId, kind: MsgKind, conn: u32, truth: u64) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at),
            src,
            dst,
            kind,
            conn: ConnId(conn),
            class: ClassId(1),
            bytes: 64,
            truth: Some(TxnId(truth)),
        }
    }

    /// Two fully serial transactions: unambiguous regardless of heuristic.
    fn serial_log() -> TraceLog {
        let mut log = TraceLog::new(nodes());
        for (base, truth, conn) in [(0u64, 1u64, 10u32), (1000, 2, 11)] {
            log.push(rec(base + 10, CLIENT, WEB, MsgKind::Request, conn, truth));
            log.push(rec(
                base + 20,
                WEB,
                APP,
                MsgKind::Request,
                100 + conn,
                truth,
            ));
            log.push(rec(
                base + 50,
                APP,
                WEB,
                MsgKind::Response,
                100 + conn,
                truth,
            ));
            log.push(rec(base + 60, WEB, CLIENT, MsgKind::Response, conn, truth));
        }
        log
    }

    #[test]
    fn serial_transactions_reconstruct_perfectly() {
        for h in [
            Heuristic::LongestQuiescent,
            Heuristic::MostRecent,
            Heuristic::Fifo,
            Heuristic::ProfileGuided,
        ] {
            let rec = Reconstruction::run(&serial_log(), h);
            assert_eq!(rec.txns.len(), 2);
            assert_eq!(rec.complete_txns(), 2);
            let acc = Accuracy::evaluate(&rec);
            assert_eq!(acc.edge_accuracy, 1.0, "heuristic {h:?}");
            assert_eq!(acc.txn_accuracy, 1.0, "heuristic {h:?}");
            assert_eq!(acc.edges, 2);
        }
    }

    /// A blocked span cannot be attributed a second call, no matter the
    /// heuristic: while txn 1's app call is outstanding, txn 2's call can
    /// only belong to txn 2.
    #[test]
    fn blocked_constraint_resolves_interleaved_calls() {
        let mut log = TraceLog::new(nodes());
        log.push(rec(10, CLIENT, WEB, MsgKind::Request, 10, 1));
        log.push(rec(12, WEB, APP, MsgKind::Request, 110, 1)); // txn1 now blocked
        log.push(rec(30, CLIENT, WEB, MsgKind::Request, 11, 2));
        log.push(rec(32, WEB, APP, MsgKind::Request, 111, 2)); // only txn2 can call
        log.push(rec(60, APP, WEB, MsgKind::Response, 110, 1));
        log.push(rec(70, APP, WEB, MsgKind::Response, 111, 2));
        log.push(rec(80, WEB, CLIENT, MsgKind::Response, 10, 1));
        log.push(rec(90, WEB, CLIENT, MsgKind::Response, 11, 2));
        for h in [
            Heuristic::LongestQuiescent,
            Heuristic::MostRecent,
            Heuristic::Fifo,
        ] {
            let r = Reconstruction::run(&log, h);
            let acc = Accuracy::evaluate(&r);
            assert_eq!(acc.edge_accuracy, 1.0, "{h:?}");
            assert_eq!(acc.txn_accuracy, 1.0, "{h:?}");
        }
    }

    /// When two unblocked same-class spans are candidates, the one whose
    /// last event is oldest has had the time to finish its CPU segment and
    /// issue the call — LongestQuiescent resolves this, MostRecent does not.
    #[test]
    fn longest_quiescent_beats_most_recent_on_second_calls() {
        let mut log = TraceLog::new(nodes());
        // Txn 1 arrives, issues call 1 immediately, gets its response at 20,
        // then computes for 20us before issuing call 2 at t=40.
        log.push(rec(0, CLIENT, WEB, MsgKind::Request, 10, 1));
        log.push(rec(2, WEB, APP, MsgKind::Request, 110, 1));
        log.push(rec(20, APP, WEB, MsgKind::Response, 110, 1));
        // Txn 2 arrives at 30 (its last event is newer than txn 1's).
        log.push(rec(30, CLIENT, WEB, MsgKind::Request, 11, 2));
        // Txn 1 issues its second call at t=40.
        log.push(rec(40, WEB, APP, MsgKind::Request, 111, 1));
        log.push(rec(55, APP, WEB, MsgKind::Response, 111, 1));
        log.push(rec(60, WEB, CLIENT, MsgKind::Response, 10, 1));
        // Txn 2 issues its call only after txn 1 finished.
        log.push(rec(65, WEB, APP, MsgKind::Request, 112, 2));
        log.push(rec(75, APP, WEB, MsgKind::Response, 112, 2));
        log.push(rec(80, WEB, CLIENT, MsgKind::Response, 11, 2));
        let good = Accuracy::evaluate(&Reconstruction::run(&log, Heuristic::LongestQuiescent));
        assert_eq!(good.edge_accuracy, 1.0);
        let bad = Accuracy::evaluate(&Reconstruction::run(&log, Heuristic::MostRecent));
        assert!(bad.edge_accuracy < 1.0);
    }

    #[test]
    fn blinded_log_gives_identical_edges() {
        let log = serial_log();
        let a = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        let b = Reconstruction::run(&log.blinded(), Heuristic::LongestQuiescent);
        let edges_a: Vec<Option<usize>> = a.spans.iter().map(|s| s.parent).collect();
        let edges_b: Vec<Option<usize>> = b.spans.iter().map(|s| s.parent).collect();
        assert_eq!(edges_a, edges_b);
        // Blinded spans carry no truth.
        assert!(b.spans.iter().all(|s| s.truth.is_none()));
    }

    #[test]
    fn incomplete_txn_is_flagged() {
        let mut log = serial_log();
        // A root whose response never arrives.
        log.push(rec(5000, CLIENT, WEB, MsgKind::Request, 12, 3));
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        assert_eq!(r.txns.len(), 3);
        assert_eq!(r.complete_txns(), 2);
    }

    #[test]
    fn orphan_downstream_call_becomes_root() {
        let mut log = TraceLog::new(nodes());
        // An app call with no active web span (front truncation).
        log.push(rec(10, WEB, APP, MsgKind::Request, 100, 9));
        log.push(rec(20, APP, WEB, MsgKind::Response, 100, 9));
        let r = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        assert_eq!(r.txns.len(), 1);
        assert!(r.spans[0].parent.is_none());
    }

    #[test]
    fn children_lists_direct_descendants() {
        let r = Reconstruction::run(&serial_log(), Heuristic::LongestQuiescent);
        assert_eq!(r.children(0), vec![1]);
        assert!(r.children(1).is_empty());
    }
}
