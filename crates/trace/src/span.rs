//! Per-server request spans: the arrival/departure timestamp pairs that the
//! fine-grained load/throughput analysis consumes (paper §III-A/B).
//!
//! A *span* is one request's residence at one server: from the instant its
//! request message reaches the server to the instant its response message
//! leaves. Spans are extracted from the raw message log by pairing requests
//! with responses on the same TCP connection — requests on one connection are
//! serviced serially, so pairing is FIFO per `(server, conn)`.

use std::collections::HashMap;

use fgbd_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::reconstruct::{LogIndex, NONE};
use crate::record::{ClassId, ConnId, MsgKind, NodeId, TraceLog, TxnId};

/// One request's residence interval at one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The server the request visited.
    pub server: NodeId,
    /// Class signature of the request.
    pub class: ClassId,
    /// When the request message arrived at the server.
    pub arrival: SimTime,
    /// When the response message left the server.
    pub departure: SimTime,
    /// The connection the request travelled on.
    pub conn: ConnId,
    /// Ground truth (propagated from annotated records; `None` when
    /// extracted from a blinded capture).
    pub truth: Option<TxnId>,
}

impl Span {
    /// Residence time at the server (queueing + service).
    pub fn residence(&self) -> SimDuration {
        self.departure - self.arrival
    }

    /// `true` if the span overlaps the half-open window `[from, to)`.
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.arrival < to && self.departure > from
    }
}

/// Spans grouped by server, each list sorted by arrival time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpanSet {
    by_server: HashMap<NodeId, Vec<Span>>,
    /// Requests whose response never appeared (still in flight at capture
    /// end, or lost); per server.
    pub unmatched: HashMap<NodeId, usize>,
}

impl SpanSet {
    /// Extracts spans from a capture by FIFO request/response pairing per
    /// `(server, connection)`.
    ///
    /// Responses with no outstanding request on their connection are counted
    /// in [`SpanSet::unmatched`] for the *server* side (they indicate capture
    /// truncation at the front), as are requests left unanswered at the end.
    ///
    /// This is the dense fast path: one [`LogIndex`] interning pass maps
    /// every record to its `(server, connection)` slot, so the pairing loop
    /// runs on flat arrays (per-slot FIFO of open request indices threaded
    /// through one `next` table) instead of re-hashing `(NodeId, ConnId)`
    /// keys per record, and per-server output is preallocated from a
    /// response-count pre-pass. Property-tested bit-identical to
    /// [`reference::extract`], the original `HashMap`-keyed implementation.
    pub fn extract(log: &TraceLog) -> SpanSet {
        fgbd_obsv::span!("extract_spans");
        assert!(
            log.records.len() < NONE as usize,
            "capture too large for u32 record indices"
        );
        let ix = LogIndex::build(log);
        // Pre-pass: responses per server = matched spans + front-truncated
        // responses — an exact preallocation bound for each output bucket.
        let mut resp_count = vec![0u32; ix.n_nodes];
        for rec in &log.records {
            if rec.kind == MsgKind::Response {
                resp_count[ix.node(rec.span_node())] += 1;
            }
        }
        let mut by_slot: Vec<Vec<Span>> = resp_count
            .iter()
            .map(|&n| Vec::with_capacity(n as usize))
            .collect();
        let mut slot_node = vec![NodeId(u16::MAX); ix.n_nodes];
        let mut unmatched_slot = vec![0usize; ix.n_nodes];
        // Per-(server, conn)-slot FIFO of open request record indices,
        // singly linked through `next`.
        let mut head = vec![NONE; ix.n_conns];
        let mut tail = vec![NONE; ix.n_conns];
        let mut next = vec![NONE; log.records.len()];
        let mut matched = 0u64;
        for (i, rec) in log.records.iter().enumerate() {
            let conn = ix.rec_conn[i] as usize;
            match rec.kind {
                MsgKind::Request => {
                    let t = tail[conn];
                    if t == NONE {
                        head[conn] = i as u32;
                    } else {
                        next[t as usize] = i as u32;
                    }
                    tail[conn] = i as u32;
                }
                MsgKind::Response => {
                    let server = rec.span_node();
                    let slot = ix.node(server);
                    slot_node[slot] = server;
                    let h = head[conn];
                    if h == NONE {
                        unmatched_slot[slot] += 1;
                    } else {
                        let req = &log.records[h as usize];
                        head[conn] = next[h as usize];
                        if head[conn] == NONE {
                            tail[conn] = NONE;
                        }
                        matched += 1;
                        by_slot[slot].push(Span {
                            server,
                            class: req.class,
                            arrival: req.at,
                            departure: rec.at,
                            conn: rec.conn,
                            truth: req.truth,
                        });
                    }
                }
            }
        }
        // Requests still open at capture end.
        for &first in head.iter().take(ix.n_conns) {
            let mut cur = first;
            while cur != NONE {
                let rec = &log.records[cur as usize];
                let server = rec.span_node();
                let slot = ix.node(server);
                slot_node[slot] = server;
                unmatched_slot[slot] += 1;
                cur = next[cur as usize];
            }
        }
        let mut by_server: HashMap<NodeId, Vec<Span>> = HashMap::with_capacity(ix.n_nodes);
        for mut bucket in by_slot {
            if !bucket.is_empty() {
                bucket.sort_by_key(|s| (s.arrival, s.departure));
                by_server.insert(bucket[0].server, bucket);
            }
        }
        let mut unmatched: HashMap<NodeId, usize> = HashMap::new();
        for (slot, &n) in unmatched_slot.iter().enumerate() {
            if n > 0 {
                unmatched.insert(slot_node[slot], n);
            }
        }
        let set = SpanSet {
            by_server,
            unmatched,
        };
        fgbd_obsv::counter!("trace.extract_reuse_hits", matched);
        fgbd_obsv::counter!("extract.spans", set.len() as u64);
        set
    }

    /// Assembles a `SpanSet` from already-extracted parts — the merge step
    /// of the streaming extractor (`crate::stream`) lands here after
    /// restoring the canonical per-server `(arrival, departure)` order.
    pub(crate) fn from_parts(
        by_server: HashMap<NodeId, Vec<Span>>,
        unmatched: HashMap<NodeId, usize>,
    ) -> SpanSet {
        SpanSet {
            by_server,
            unmatched,
        }
    }

    /// Spans observed at `server`, sorted by arrival.
    pub fn server(&self, server: NodeId) -> &[Span] {
        self.by_server.get(&server).map_or(&[], Vec::as_slice)
    }

    /// Servers that have at least one span.
    pub fn servers(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.by_server.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The spans of several servers merged into one arrival-sorted list —
    /// a *tier-level* view (e.g. both Tomcats as one logical server). The
    /// per-span `server` field is preserved so class/service lookups stay
    /// correct.
    pub fn merged(&self, servers: &[NodeId]) -> Vec<Span> {
        let mut out: Vec<Span> = servers
            .iter()
            .flat_map(|&n| self.server(n).iter().copied())
            .collect();
        out.sort_by_key(|s| (s.arrival, s.departure));
        out
    }

    /// Total spans across all servers.
    pub fn len(&self) -> usize {
        self.by_server.values().map(Vec::len).sum()
    }

    /// `true` if no spans were extracted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub mod reference {
    //! The original `HashMap`-keyed span extractor, kept verbatim as the
    //! executable specification the dense fast path is property-tested
    //! bit-identical to (the same role `reconstruct::reference` plays for
    //! reconstruction), and as the baseline of the `extract_spans` bench.

    use std::collections::{HashMap, VecDeque};

    use super::{Span, SpanSet};
    use crate::record::{ConnId, MsgKind, MsgRecord, NodeId, TraceLog};

    /// Extracts spans by FIFO request/response pairing per
    /// `(server, connection)`; see [`SpanSet::extract`].
    pub fn extract(log: &TraceLog) -> SpanSet {
        let mut open: HashMap<(NodeId, ConnId), VecDeque<MsgRecord>> = HashMap::new();
        let mut by_server: HashMap<NodeId, Vec<Span>> = HashMap::new();
        let mut unmatched: HashMap<NodeId, usize> = HashMap::new();
        for rec in &log.records {
            let server = rec.span_node();
            match rec.kind {
                MsgKind::Request => {
                    open.entry((server, rec.conn)).or_default().push_back(*rec);
                }
                MsgKind::Response => {
                    match open
                        .get_mut(&(server, rec.conn))
                        .and_then(VecDeque::pop_front)
                    {
                        Some(req) => {
                            by_server.entry(server).or_default().push(Span {
                                server,
                                class: req.class,
                                arrival: req.at,
                                departure: rec.at,
                                conn: rec.conn,
                                truth: req.truth,
                            });
                        }
                        None => *unmatched.entry(server).or_default() += 1,
                    }
                }
            }
        }
        for ((server, _), q) in open {
            if !q.is_empty() {
                *unmatched.entry(server).or_default() += q.len();
            }
        }
        let mut set = SpanSet {
            by_server,
            unmatched,
        };
        for spans in set.by_server.values_mut() {
            spans.sort_by_key(|s| (s.arrival, s.departure));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MsgRecord, NodeKind, NodeMeta};

    fn node(id: u16, name: &str, kind: NodeKind) -> NodeMeta {
        NodeMeta {
            id: NodeId(id),
            name: name.into(),
            kind,
            tier: None,
        }
    }

    fn rec(at: u64, src: u16, dst: u16, kind: MsgKind, conn: u32, truth: u64) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at),
            src: NodeId(src),
            dst: NodeId(dst),
            kind,
            conn: ConnId(conn),
            class: ClassId(3),
            bytes: 64,
            truth: Some(TxnId(truth)),
        }
    }

    fn demo_log() -> TraceLog {
        let mut log = TraceLog::new(vec![
            node(0, "client", NodeKind::Client),
            node(1, "web", NodeKind::Server),
        ]);
        // Two overlapping requests on different connections.
        log.push(rec(100, 0, 1, MsgKind::Request, 10, 1));
        log.push(rec(150, 0, 1, MsgKind::Request, 11, 2));
        log.push(rec(300, 1, 0, MsgKind::Response, 10, 1));
        log.push(rec(500, 1, 0, MsgKind::Response, 11, 2));
        log
    }

    #[test]
    fn pairs_by_connection() {
        let set = SpanSet::extract(&demo_log());
        let spans = set.server(NodeId(1));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].arrival, SimTime::from_micros(100));
        assert_eq!(spans[0].departure, SimTime::from_micros(300));
        assert_eq!(spans[0].truth, Some(TxnId(1)));
        assert_eq!(spans[1].residence(), SimDuration::from_micros(350));
        assert!(set.unmatched.is_empty());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn serial_reuse_of_one_connection_pairs_fifo() {
        let mut log = TraceLog::new(vec![
            node(0, "client", NodeKind::Client),
            node(1, "web", NodeKind::Server),
        ]);
        log.push(rec(10, 0, 1, MsgKind::Request, 5, 1));
        log.push(rec(20, 1, 0, MsgKind::Response, 5, 1));
        log.push(rec(30, 0, 1, MsgKind::Request, 5, 2));
        log.push(rec(45, 1, 0, MsgKind::Response, 5, 2));
        let set = SpanSet::extract(&log);
        let spans = set.server(NodeId(1));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].truth, Some(TxnId(1)));
        assert_eq!(spans[1].truth, Some(TxnId(2)));
    }

    #[test]
    fn truncated_capture_counts_unmatched() {
        let mut log = demo_log();
        // Request with no response (in flight at capture end).
        log.push(rec(600, 0, 1, MsgKind::Request, 12, 3));
        // Response with no request (lost front of capture) — use a fresh log
        // to keep ordering valid.
        let set = SpanSet::extract(&log);
        assert_eq!(set.unmatched.get(&NodeId(1)), Some(&1));

        let mut log2 = TraceLog::new(vec![node(1, "web", NodeKind::Server)]);
        log2.push(rec(5, 1, 0, MsgKind::Response, 9, 4));
        let set2 = SpanSet::extract(&log2);
        assert_eq!(set2.unmatched.get(&NodeId(1)), Some(&1));
        assert!(set2.is_empty());
    }

    #[test]
    fn merged_combines_and_sorts() {
        let mut log = TraceLog::new(vec![
            node(0, "client", NodeKind::Client),
            node(1, "app-1", NodeKind::Server),
            node(2, "app-2", NodeKind::Server),
        ]);
        log.push(rec(10, 0, 2, MsgKind::Request, 20, 1));
        log.push(rec(15, 0, 1, MsgKind::Request, 10, 2));
        log.push(rec(40, 1, 0, MsgKind::Response, 10, 2));
        log.push(rec(50, 2, 0, MsgKind::Response, 20, 1));
        let set = SpanSet::extract(&log);
        let tier = set.merged(&[NodeId(1), NodeId(2)]);
        assert_eq!(tier.len(), 2);
        assert!(tier[0].arrival <= tier[1].arrival);
        assert_eq!(tier[0].server, NodeId(2)); // earliest arrival first
        assert_eq!(tier[1].server, NodeId(1));
        // Unknown servers contribute nothing.
        assert!(set.merged(&[NodeId(9)]).is_empty());
    }

    #[test]
    fn overlap_predicate_is_half_open() {
        let s = Span {
            server: NodeId(1),
            class: ClassId(0),
            arrival: SimTime::from_micros(100),
            departure: SimTime::from_micros(200),
            conn: ConnId(0),
            truth: None,
        };
        assert!(s.overlaps(SimTime::from_micros(150), SimTime::from_micros(160)));
        assert!(s.overlaps(SimTime::from_micros(0), SimTime::from_micros(101)));
        assert!(!s.overlaps(SimTime::from_micros(200), SimTime::from_micros(300)));
        assert!(!s.overlaps(SimTime::from_micros(0), SimTime::from_micros(100)));
    }
}
