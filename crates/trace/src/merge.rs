//! Deterministic merging of per-shard captures into one tap-ordered log.
//!
//! Population-sharded simulation (see `fgbd_ntier::shard`) runs K
//! independent replicas of the traced topology, each producing its own
//! time-ordered [`TraceLog`] with shard-local connection ids and
//! ground-truth transaction ids. This module folds those captures into a
//! single log as one physical tap would have seen them:
//!
//! * **Id namespacing** — connection ids and truth transaction ids are
//!   tagged with the shard index in their high bits, so flows from
//!   different shards can never alias. Pairing and reconstruction then
//!   work unchanged on the merged log.
//! * **Tap ordering** — records are k-way merged by `(timestamp, shard)`,
//!   preserving each shard's internal order. The result is a pure
//!   function of the shard logs: no dependence on which worker thread
//!   finished first.
//!
//! The node tables must be identical across shards (replicas of one
//! topology); the merged log keeps a single copy, so per-server analysis
//! aggregates all replicas of a logical server.

use std::path::Path;

use crate::capture::CaptureError;
use crate::record::{ConnId, TraceLog, TxnId};

/// Bit position of the shard tag within a merged [`ConnId`]; shard-local
/// connection ids must stay below `1 << SHARD_CONN_SHIFT`.
pub const SHARD_CONN_SHIFT: u32 = 28;

/// Bit position of the shard tag within a merged truth [`TxnId`].
pub const SHARD_TXN_SHIFT: u32 = 56;

/// Highest shard count the id namespacing supports.
pub const MAX_SIM_SHARDS: usize = (1 << (32 - SHARD_CONN_SHIFT)) - 1;

/// Merges per-shard captures into one tap-ordered, id-namespaced log.
///
/// Returns an empty log for an empty input. For a single shard the
/// records pass through untouched — shard 0's tag is zero bits — so a
/// one-shard merge is byte-identical to no merge at all.
///
/// # Panics
///
/// Panics if the shard count exceeds [`MAX_SIM_SHARDS`], the node tables
/// disagree, or any shard-local id overflows its namespace.
pub fn merge_shard_logs(shards: Vec<TraceLog>) -> TraceLog {
    fgbd_obsv::span!("sim_merge");
    assert!(
        shards.len() <= MAX_SIM_SHARDS,
        "at most {MAX_SIM_SHARDS} shards fit the conn-id namespace"
    );
    let Some(first) = shards.first() else {
        return TraceLog::default();
    };
    assert!(
        shards.iter().all(|s| s.nodes == first.nodes),
        "shard captures must share one node table"
    );

    let mut merged = TraceLog::new(first.nodes.clone());
    merged
        .records
        .reserve(shards.iter().map(|s| s.records.len()).sum());

    // K is tiny (≤ 15), so a linear scan over the shard cursors beats a
    // heap; ties on timestamp break toward the lower shard index.
    let mut cursors = vec![0usize; shards.len()];
    loop {
        let mut best: Option<(usize, fgbd_des::SimTime)> = None;
        for (shard, log) in shards.iter().enumerate() {
            if let Some(rec) = log.records.get(cursors[shard]) {
                if best.is_none_or(|(_, t)| rec.at < t) {
                    best = Some((shard, rec.at));
                }
            }
        }
        let Some((shard, _)) = best else { break };
        let mut rec = shards[shard].records[cursors[shard]];
        cursors[shard] += 1;
        assert!(
            rec.conn.0 < (1 << SHARD_CONN_SHIFT),
            "shard-local conn id {} overflows the namespace",
            rec.conn.0
        );
        rec.conn = ConnId(rec.conn.0 | (shard as u32) << SHARD_CONN_SHIFT);
        if let Some(t) = rec.truth {
            assert!(
                t.0 < (1 << SHARD_TXN_SHIFT),
                "shard-local txn id {} overflows the namespace",
                t.0
            );
            rec.truth = Some(TxnId(t.0 | (shard as u64) << SHARD_TXN_SHIFT));
        }
        merged.push(rec);
    }
    fgbd_obsv::counter!("trace.merged_shard_records", merged.records.len() as u64);
    merged
}

/// Reads per-shard capture files — flat `FGBDCAP1` and chunked `FGBDCAP2`
/// inputs mix freely, each sniffed by magic — and merges them with
/// [`merge_shard_logs`]. Chunked inputs decode with the parallel reader.
///
/// # Errors
///
/// Propagates the first [`CaptureError`] from any input file.
///
/// # Panics
///
/// Panics on the same invariant violations as [`merge_shard_logs`].
pub fn merge_capture_files<P: AsRef<Path>>(paths: &[P]) -> Result<TraceLog, CaptureError> {
    let shards = paths
        .iter()
        .map(|p| crate::capture::read_capture_file(p.as_ref()))
        .collect::<Result<Vec<TraceLog>, CaptureError>>()?;
    Ok(merge_shard_logs(shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ClassId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta};
    use fgbd_des::SimTime;

    fn nodes() -> Vec<NodeMeta> {
        vec![
            NodeMeta {
                id: NodeId(0),
                name: "clients".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: NodeId(1),
                name: "web".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
        ]
    }

    fn rec(at_us: u64, conn: u32, txn: u64) -> MsgRecord {
        MsgRecord {
            at: SimTime::from_micros(at_us),
            src: NodeId(0),
            dst: NodeId(1),
            kind: MsgKind::Request,
            conn: ConnId(conn),
            class: ClassId(0),
            bytes: 64,
            truth: Some(TxnId(txn)),
        }
    }

    fn log_of(records: Vec<MsgRecord>) -> TraceLog {
        let mut log = TraceLog::new(nodes());
        for r in records {
            log.push(r);
        }
        log
    }

    #[test]
    fn single_shard_merge_is_identity() {
        let log = log_of(vec![rec(1, 5, 9), rec(2, 5, 9)]);
        let merged = merge_shard_logs(vec![log.clone()]);
        assert_eq!(merged.records, log.records);
        assert_eq!(merged.nodes, log.nodes);
    }

    #[test]
    fn merge_orders_by_time_with_shard_tie_break() {
        let a = log_of(vec![rec(10, 1, 1), rec(30, 1, 1)]);
        let b = log_of(vec![rec(10, 1, 1), rec(20, 1, 1)]);
        let merged = merge_shard_logs(vec![a, b]);
        let ats: Vec<u64> = merged.records.iter().map(|r| r.at.as_micros()).collect();
        assert_eq!(ats, vec![10, 10, 20, 30]);
        // The 10µs tie goes to shard 0 first.
        assert_eq!(merged.records[0].conn, ConnId(1));
        assert_eq!(merged.records[1].conn, ConnId(1 | 1 << SHARD_CONN_SHIFT));
    }

    #[test]
    fn ids_are_namespaced_per_shard() {
        let a = log_of(vec![rec(1, 7, 3)]);
        let b = log_of(vec![rec(2, 7, 3)]);
        let merged = merge_shard_logs(vec![a, b]);
        assert_eq!(merged.records[0].conn, ConnId(7));
        assert_eq!(merged.records[0].truth, Some(TxnId(3)));
        assert_eq!(merged.records[1].conn, ConnId(7 | 1 << SHARD_CONN_SHIFT));
        assert_eq!(
            merged.records[1].truth,
            Some(TxnId(3 | 1 << SHARD_TXN_SHIFT))
        );
    }

    #[test]
    fn empty_input_gives_empty_log() {
        let merged = merge_shard_logs(Vec::new());
        assert!(merged.nodes.is_empty() && merged.records.is_empty());
    }

    #[test]
    fn merge_capture_files_mixes_formats() {
        let a = log_of(vec![rec(10, 1, 1), rec(30, 1, 2)]);
        let b = log_of(vec![rec(20, 2, 3)]);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let pa = dir.join(format!("fgbd_merge_v1_{pid}.fgbdcap"));
        let pb = dir.join(format!("fgbd_merge_v2_{pid}.fgbdcap"));
        crate::capture::write_capture(std::fs::File::create(&pa).unwrap(), &a).unwrap();
        crate::capture2::write_capture2(std::fs::File::create(&pb).unwrap(), &b).unwrap();
        let merged = merge_capture_files(&[&pa, &pb]).unwrap();
        let _ = std::fs::remove_file(&pa);
        let _ = std::fs::remove_file(&pb);
        let expected = merge_shard_logs(vec![a, b]);
        assert_eq!(merged.records, expected.records);
        assert_eq!(merged.nodes, expected.nodes);
    }

    #[test]
    #[should_panic(expected = "node table")]
    fn mismatched_node_tables_are_rejected() {
        let a = log_of(vec![rec(1, 1, 1)]);
        let b = TraceLog::new(vec![]);
        merge_shard_logs(vec![a, b]);
    }
}
