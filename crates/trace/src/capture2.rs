//! `FGBDCAP2`: the chunked columnar capture format.
//!
//! `FGBDCAP1` (see [`crate::capture`]) is a flat stream of 31-byte records —
//! simple, but every read is sequential and every byte is paid even for
//! columns that barely change (`src`/`dst`/`kind` cycle through a handful of
//! values; timestamps are near-monotone micros). `FGBDCAP2` regroups the
//! stream into fixed-size chunks of column-major data so captures are
//! smaller on disk **and** readable in parallel or by time range:
//!
//! ```text
//! magic   [u8;8] = b"FGBDCAP2"
//! node table     (identical encoding to FGBDCAP1, see capture::write_node_table)
//! chunk*         tag u8 = 0x01
//!                record_count u32, min_at u64, max_at u64,
//!                byte_len u32 (payload), checksum u64 (folded xor-multiply, see checksum64)
//!                payload: columns, in order
//!                  at     varint deltas from min_at (first delta = 0)
//!                  src    dict column (see below)
//!                  dst    dict column
//!                  kind   dict column (0 = request, 1 = response)
//!                  conn   dict column
//!                  class  dict column
//!                  bytes  dict column
//!                  truth  presence bitmap (ceil(n/8) bytes, LSB-first) then
//!                         zigzag varint deltas between present values
//!
//! dict column    tag u8 = 0x00: dict_len varint, dict values varint each,
//!                then per-record dictionary indices bit-packed LSB-first at
//!                the minimum width for dict_len (0 bits when constant);
//!                tag u8 = 0x01 (> 4096 distinct values): per-record varints
//! footer         tag u8 = 0x00
//!                n_chunks u32
//!                per chunk: offset u64 (of its tag byte), record_count u32,
//!                           min_at u64, max_at u64
//! trailer        index_offset u64 (of the footer tag byte)
//!                magic [u8;8] = b"FGBDIDX2"
//! ```
//!
//! The footer index is what buys random access: a reader maps (or reads)
//! the file, jumps to the last 16 bytes, finds the index, and can then
//! decode any subset of chunks — all of them fan-out across threads
//! ([`read_capture2_parallel`]), or only those overlapping a time window
//! ([`read_capture2_range`]). Chunks validate independently (checksum +
//! internal ordering), so corruption is reported per chunk
//! ([`CaptureError::Chunk`]) instead of as a file-sized shrug.
//!
//! Writers stream through [`ChunkedWriter`]: memory is bounded by one
//! chunk (default 64 Ki records) regardless of capture size, which is what
//! lets million-user runs write captures without materializing a
//! [`TraceLog`].

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};

use fgbd_des::SimTime;

use crate::capture::{
    read_node_table, read_u32, read_u64, read_u8, write_node_table, CaptureError, MAGIC,
};
use crate::record::{ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeMeta, TraceLog, TxnId};

/// File magic for the chunked columnar format.
pub const MAGIC2: &[u8; 8] = b"FGBDCAP2";
/// Trailer magic; its presence (at EOF - 8) is how readers know the footer
/// index survived — a truncated capture loses it first.
pub const INDEX_MAGIC: &[u8; 8] = b"FGBDIDX2";

const TAG_INDEX: u8 = 0x00;
const TAG_CHUNK: u8 = 0x01;
/// tag + record_count + min_at + max_at + byte_len + checksum.
const CHUNK_HEADER_LEN: usize = 1 + 4 + 8 + 8 + 4 + 8;
/// index_offset + INDEX_MAGIC.
const TRAILER_LEN: usize = 8 + 8;
const NO_TRUTH: u64 = u64::MAX;

/// Default records per chunk (64 Ki): big enough that per-chunk headers and
/// index entries are noise, small enough that a 200k-record capture still
/// splits across 4 threads.
pub const DEFAULT_CHUNK_RECORDS: usize = 64 * 1024;

// --- env-driven knobs -----------------------------------------------------

/// Capture format selected by `FGBD_CAPTURE_FORMAT` (`1` = flat `FGBDCAP1`,
/// `2` = chunked `FGBDCAP2`). Defaults to 1: the flat format stays the
/// reference encoding and the round-trip oracle.
pub fn format_from_env() -> u32 {
    match std::env::var("FGBD_CAPTURE_FORMAT").ok().as_deref() {
        Some("2") => 2,
        _ => 1,
    }
}

/// Decode threads selected by `FGBD_CAPTURE_THREADS`, defaulting to
/// `min(4, available_parallelism)`. The decoded log is identical at every
/// value; this only trades wall-clock for cores.
pub fn threads_from_env() -> usize {
    std::env::var("FGBD_CAPTURE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
                .min(4)
        })
}

/// Records per chunk selected by `FGBD_CAPTURE_CHUNK` (writer-side only;
/// readers take whatever the file says). Defaults to
/// [`DEFAULT_CHUNK_RECORDS`].
pub fn chunk_from_env() -> usize {
    std::env::var("FGBD_CAPTURE_CHUNK")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_CHUNK_RECORDS)
}

// --- primitive encodings ---------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Chunk checksum: FNV-style xor-multiply folded over 8-byte words (the
/// tail is zero-padded into one final word alongside the length, so
/// truncation and extension both perturb the digest). Word-at-a-time keeps
/// verification off the decode critical path — a byte-wise FNV-1a costs
/// more than the columnar decode it protects.
fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h = (h ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    (h ^ bytes.len() as u64).wrapping_mul(PRIME)
}

/// Cursor over a chunk payload slice; every failure names the chunk.
struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    chunk: u32,
}

impl<'a> PayloadReader<'a> {
    #[inline]
    fn varint(&mut self) -> Result<u64, CaptureError> {
        // One-byte fast path: most timestamp deltas, RLE values, and run
        // lengths fit in 7 bits, and the decode loop lives or dies here.
        if let Some(&byte) = self.buf.get(self.pos) {
            if byte < 0x80 {
                self.pos += 1;
                return Ok(u64::from(byte));
            }
        }
        self.varint_slow()
    }

    #[cold]
    fn varint_slow(&mut self) -> Result<u64, CaptureError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        while shift < 64 {
            let byte = *self.buf.get(self.pos).ok_or(CaptureError::Chunk {
                index: self.chunk,
                what: "column overrun",
            })?;
            self.pos += 1;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
        Err(CaptureError::Chunk {
            index: self.chunk,
            what: "varint too long",
        })
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CaptureError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or(CaptureError::Chunk {
            index: self.chunk,
            what: "column overrun",
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

/// Per-column encoding tags, and the dictionary-size ceiling past which a
/// column falls back to plain varints (a dictionary only pays while it is
/// small enough that indices are much narrower than values).
const COL_DICT: u8 = 0x00;
const COL_PLAIN: u8 = 0x01;
const DICT_MAX_ENTRIES: usize = 4096;

/// Bits per bit-packed dictionary index (0 when the column is constant).
fn dict_width(len: usize) -> u32 {
    debug_assert!(len >= 1);
    64 - ((len - 1) as u64).leading_zeros()
}

/// Encodes one low-cardinality column: a first-occurrence-ordered
/// dictionary of distinct values, then every record's dictionary index
/// bit-packed at the minimum width (LSB-first). A constant column costs
/// zero bits per record; a column that blows past [`DICT_MAX_ENTRIES`]
/// distinct values is written as plain per-record varints instead.
fn put_column(out: &mut Vec<u8>, values: impl Iterator<Item = u64> + Clone) {
    // One pass builds the dictionary AND the per-record index buffer, so
    // packing below needs no second round of hash lookups.
    let mut dict: Vec<u64> = Vec::new();
    let mut map = fgbd_des::hash::FxHashMap::default();
    let mut idxs: Vec<u32> = Vec::with_capacity(values.size_hint().0);
    for v in values.clone() {
        let next = dict.len() as u32;
        let idx = *map.entry(v).or_insert(next);
        if idx == next {
            if dict.len() == DICT_MAX_ENTRIES {
                out.push(COL_PLAIN);
                for v in values {
                    put_varint(out, v);
                }
                return;
            }
            dict.push(v);
        }
        idxs.push(idx);
    }
    out.push(COL_DICT);
    put_varint(out, dict.len() as u64);
    for &v in &dict {
        put_varint(out, v);
    }
    let width = match dict.len() {
        0 => return, // empty column (never produced for a non-empty chunk)
        len => dict_width(len),
    };
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &idx in &idxs {
        acc |= u64::from(idx) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

/// Decodes one column straight into the record slice. Dictionary values are
/// validated against `max` once each (naming `out_of_range` on failure);
/// the per-record path is then a branch-light bit extract + table lookup,
/// with `set` storing the already-validated value.
fn read_column(
    r: &mut PayloadReader<'_>,
    records: &mut [MsgRecord],
    max: u64,
    out_of_range: &'static str,
    mut set: impl FnMut(&mut MsgRecord, u64),
) -> Result<(), CaptureError> {
    let n = records.len();
    let chunk = r.chunk;
    let bad = |what: &'static str| CaptureError::Chunk { index: chunk, what };
    match r.bytes(1)?[0] {
        COL_PLAIN => {
            for rec in records.iter_mut() {
                let v = r.varint()?;
                if v > max {
                    return Err(bad(out_of_range));
                }
                set(rec, v);
            }
        }
        COL_DICT => {
            let dict_len = r.varint()? as usize;
            if dict_len > DICT_MAX_ENTRIES || (dict_len == 0 && n > 0) {
                return Err(bad("bad dictionary"));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let v = r.varint()?;
                if v > max {
                    return Err(bad(out_of_range));
                }
                dict.push(v);
            }
            if n == 0 {
                return Ok(());
            }
            let width = dict_width(dict_len);
            if width == 0 {
                let v = dict[0];
                for rec in records.iter_mut() {
                    set(rec, v);
                }
                return Ok(());
            }
            let packed = r.bytes((n as u64 * u64::from(width)).div_ceil(8) as usize)?;
            let mask = (1u64 << width) - 1;
            let mut acc = 0u64;
            let mut nbits = 0u32;
            let mut pos = 0usize;
            for rec in records.iter_mut() {
                // `pos` cannot overrun: the loop pulls exactly the bytes
                // whose bits it consumes, and `packed` holds all n·width.
                while nbits < width {
                    acc |= u64::from(packed[pos]) << nbits;
                    pos += 1;
                    nbits += 8;
                }
                let idx = (acc & mask) as usize;
                acc >>= width;
                nbits -= width;
                let v = *dict.get(idx).ok_or(bad("bad dictionary index"))?;
                set(rec, v);
            }
        }
        _ => return Err(bad("unknown column encoding")),
    }
    Ok(())
}

/// Skips one encoded column without materializing it. Dictionary columns
/// skip their packed index block in O(dictionary) — the payoff of column
/// projection — while plain columns still walk their varints (no length
/// prefix to jump by). The bytes consumed are exactly what
/// [`read_column`] would consume, so the end-of-chunk trailing check
/// holds under any projection.
fn skip_column(r: &mut PayloadReader<'_>, n: usize) -> Result<(), CaptureError> {
    let chunk = r.chunk;
    let bad = |what: &'static str| CaptureError::Chunk { index: chunk, what };
    match r.bytes(1)?[0] {
        COL_PLAIN => {
            for _ in 0..n {
                r.varint()?;
            }
        }
        COL_DICT => {
            let dict_len = r.varint()? as usize;
            if dict_len > DICT_MAX_ENTRIES || (dict_len == 0 && n > 0) {
                return Err(bad("bad dictionary"));
            }
            for _ in 0..dict_len {
                r.varint()?;
            }
            if n == 0 || dict_len == 0 {
                return Ok(());
            }
            let width = dict_width(dict_len);
            if width > 0 {
                r.bytes((n as u64 * u64::from(width)).div_ceil(8) as usize)?;
            }
        }
        _ => return Err(bad("unknown column encoding")),
    }
    Ok(())
}

/// Which columns a chunk decode materializes. Timestamps are always
/// decoded (they create the records); every other column can be skipped,
/// leaving its field at the [`MsgRecord`] default. Skipping is *legal*
/// for a consumer exactly when it never reads the field — see the
/// "Zero-copy analysis" section of DESIGN.md for the per-consumer table.
/// The chunk checksum always covers the full payload, so corruption is
/// detected (and attributed per chunk) even in skipped columns;
/// projection only forgoes the skipped columns' semantic range checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    /// Decode `src` (message source node).
    pub src: bool,
    /// Decode `dst` (message destination node).
    pub dst: bool,
    /// Decode `kind` (request/response).
    pub kind: bool,
    /// Decode `conn` (connection id — FIFO pairing key).
    pub conn: bool,
    /// Decode `class` (request class — service-time lookup key).
    pub class: bool,
    /// Decode `bytes` (message size).
    pub bytes: bool,
    /// Decode `truth` (ground-truth transaction annotations).
    pub truth: bool,
}

impl Projection {
    /// Decode everything — the reference projection; bit-identical to the
    /// pre-projection decoder.
    pub const ALL: Projection = Projection {
        src: true,
        dst: true,
        kind: true,
        conn: true,
        class: true,
        bytes: true,
        truth: true,
    };

    /// What detection needs: span pairing reads `(src, dst, kind, conn)`
    /// and service lookup reads `class`; `bytes` and the ground-truth
    /// column are never consulted by the black-box detector.
    pub const DETECT: Projection = Projection {
        bytes: false,
        truth: false,
        ..Projection::ALL
    };
}

// --- chunk encode / decode ---------------------------------------------------

fn encode_chunk_payload(records: &[MsgRecord], min_at: u64) -> Vec<u8> {
    // ~12 B/record is typical for simulator traffic; reserve generously to
    // avoid re-allocation in the writer hot path.
    let mut out = Vec::with_capacity(records.len() * 16);
    let mut prev = min_at;
    for r in records {
        let at = r.at.as_micros();
        put_varint(&mut out, at - prev);
        prev = at;
    }
    put_column(&mut out, records.iter().map(|r| u64::from(r.src.0)));
    put_column(&mut out, records.iter().map(|r| u64::from(r.dst.0)));
    put_column(
        &mut out,
        records.iter().map(|r| match r.kind {
            MsgKind::Request => 0u64,
            MsgKind::Response => 1u64,
        }),
    );
    put_column(&mut out, records.iter().map(|r| u64::from(r.conn.0)));
    put_column(&mut out, records.iter().map(|r| u64::from(r.class.0)));
    put_column(&mut out, records.iter().map(|r| u64::from(r.bytes)));
    // Truth column: bitmap of which records carry ground truth, then
    // zigzag deltas between consecutive present values (txn ids from one
    // simulator stream are near-sequential, so deltas are tiny).
    let mut bitmap = vec![0u8; records.len().div_ceil(8)];
    for (i, r) in records.iter().enumerate() {
        if r.truth.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    let mut prev_truth: u64 = 0;
    for r in records {
        if let Some(t) = r.truth {
            put_varint(&mut out, zigzag(t.0.wrapping_sub(prev_truth) as i64));
            prev_truth = t.0;
        }
    }
    out
}

/// Decodes one chunk payload, appending its records to `out` (so sequential
/// readers build the final log with zero stitch copies; `out` may hold
/// partially-decoded records after an error). `index` is only for error
/// attribution.
fn decode_chunk_payload(
    payload: &[u8],
    index: u32,
    record_count: u32,
    min_at: u64,
    max_at: u64,
    out: &mut Vec<MsgRecord>,
) -> Result<(), CaptureError> {
    decode_chunk_projected(
        payload,
        index,
        record_count,
        min_at,
        max_at,
        Projection::ALL,
        out,
    )
}

/// [`decode_chunk_payload`] with column projection: skipped columns are
/// walked (and still covered by the already-verified checksum) but never
/// materialized, leaving their record fields at the defaults.
fn decode_chunk_projected(
    payload: &[u8],
    index: u32,
    record_count: u32,
    min_at: u64,
    max_at: u64,
    proj: Projection,
    out: &mut Vec<MsgRecord>,
) -> Result<(), CaptureError> {
    let n = record_count as usize;
    let mut r = PayloadReader {
        buf: payload,
        pos: 0,
        chunk: index,
    };
    let bad = |what: &'static str| CaptureError::Chunk { index, what };

    // The timestamp column materializes the records (every later column
    // fills fields in place — no intermediate column vectors).
    let start = out.len();
    out.reserve(n);
    let mut prev = min_at;
    for _ in 0..n {
        prev = prev
            .checked_add(r.varint()?)
            .ok_or(bad("timestamp overflow"))?;
        out.push(MsgRecord {
            at: SimTime::from_micros(prev),
            src: NodeId(0),
            dst: NodeId(0),
            kind: MsgKind::Request,
            conn: ConnId(0),
            class: ClassId(0),
            bytes: 0,
            truth: None,
        });
    }
    let records = &mut out[start..];
    if n > 0 && (records[0].at.as_micros() != min_at || prev != max_at) {
        return Err(bad("timestamp bounds mismatch"));
    }
    if proj.src {
        read_column(
            &mut r,
            records,
            u64::from(u16::MAX),
            "src out of range",
            |rec, v| {
                rec.src = NodeId(v as u16);
            },
        )?;
    } else {
        skip_column(&mut r, n)?;
    }
    if proj.dst {
        read_column(
            &mut r,
            records,
            u64::from(u16::MAX),
            "dst out of range",
            |rec, v| {
                rec.dst = NodeId(v as u16);
            },
        )?;
    } else {
        skip_column(&mut r, n)?;
    }
    if proj.kind {
        read_column(&mut r, records, 1, "unknown message kind", |rec, v| {
            rec.kind = if v == 0 {
                MsgKind::Request
            } else {
                MsgKind::Response
            };
        })?;
    } else {
        skip_column(&mut r, n)?;
    }
    if proj.conn {
        read_column(
            &mut r,
            records,
            u64::from(u32::MAX),
            "conn out of range",
            |rec, v| {
                rec.conn = ConnId(v as u32);
            },
        )?;
    } else {
        skip_column(&mut r, n)?;
    }
    if proj.class {
        read_column(
            &mut r,
            records,
            u64::from(u16::MAX),
            "class out of range",
            |rec, v| {
                rec.class = ClassId(v as u16);
            },
        )?;
    } else {
        skip_column(&mut r, n)?;
    }
    if proj.bytes {
        read_column(
            &mut r,
            records,
            u64::from(u32::MAX),
            "bytes out of range",
            |rec, v| {
                rec.bytes = v as u32;
            },
        )?;
    } else {
        skip_column(&mut r, n)?;
    }
    let bitmap = r.bytes(n.div_ceil(8))?;
    if proj.truth {
        let mut prev_truth: u64 = 0;
        for (i, rec) in records.iter_mut().enumerate() {
            if bitmap[i / 8] >> (i % 8) & 1 == 1 {
                prev_truth = prev_truth.wrapping_add(unzigzag(r.varint()?) as u64);
                if prev_truth == NO_TRUTH {
                    return Err(bad("reserved truth value"));
                }
                rec.truth = Some(TxnId(prev_truth));
            }
        }
    } else {
        // Bits at positions >= n are padding the full decode never reads;
        // mask them out of the last byte before counting how many truth
        // varints follow.
        let mut present: usize = 0;
        for (byte_i, &b) in bitmap.iter().enumerate() {
            let mut b = b;
            if byte_i == n / 8 {
                b &= ((1u16 << (n % 8)) - 1) as u8;
            }
            present += b.count_ones() as usize;
        }
        for _ in 0..present {
            r.varint()?;
        }
    }
    if r.pos != payload.len() {
        return Err(bad("trailing bytes in chunk"));
    }
    Ok(())
}

// --- writer -----------------------------------------------------------------

/// One footer-index entry; also the unit the range/parallel readers prune
/// and fan out over.
#[derive(Debug, Clone, Copy)]
struct ChunkInfo {
    offset: u64,
    record_count: u32,
    min_at: u64,
    max_at: u64,
}

/// Streaming `FGBDCAP2` writer: buffers at most one chunk of records, so a
/// capture of any length writes in flat memory. Create with the node table,
/// [`push`](ChunkedWriter::push) records in time order, then
/// [`finish`](ChunkedWriter::finish) to emit the footer index — a capture
/// without its footer reads as truncated.
pub struct ChunkedWriter<W: Write> {
    w: W,
    /// Bytes written so far == offset of the next byte; the footer index
    /// stores these, so the writer never needs `Seek`.
    offset: u64,
    buf: Vec<MsgRecord>,
    chunk_records: usize,
    index: Vec<ChunkInfo>,
    last_at: SimTime,
}

impl<W: Write> ChunkedWriter<W> {
    /// Starts a capture with the default chunk size (or `FGBD_CAPTURE_CHUNK`).
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Io`] on underlying write failures.
    pub fn new(w: W, nodes: &[NodeMeta]) -> Result<Self, CaptureError> {
        Self::with_chunk_records(w, nodes, chunk_from_env())
    }

    /// Starts a capture with an explicit records-per-chunk bound.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Io`] on underlying write failures.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn with_chunk_records(
        mut w: W,
        nodes: &[NodeMeta],
        chunk_records: usize,
    ) -> Result<Self, CaptureError> {
        assert!(chunk_records > 0, "chunk size must be positive");
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC2);
        write_node_table(&mut header, nodes)?;
        w.write_all(&header)?;
        Ok(ChunkedWriter {
            w,
            offset: header.len() as u64,
            buf: Vec::with_capacity(chunk_records),
            chunk_records,
            index: Vec::new(),
            last_at: SimTime::ZERO,
        })
    }

    /// Appends one record, flushing a chunk when the buffer fills.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Io`] on write failures and
    /// [`CaptureError::Malformed`] if `rec` precedes the previous record —
    /// chunk pruning relies on the per-chunk `[min_at, max_at]` headers
    /// actually bounding their records.
    pub fn push(&mut self, rec: MsgRecord) -> Result<(), CaptureError> {
        if rec.at < self.last_at {
            return Err(CaptureError::Malformed("records out of order"));
        }
        self.last_at = rec.at;
        self.buf.push(rec);
        if self.buf.len() == self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), CaptureError> {
        let min_at = self.buf[0].at.as_micros();
        let max_at = self.buf[self.buf.len() - 1].at.as_micros();
        let payload = encode_chunk_payload(&self.buf, min_at);
        self.index.push(ChunkInfo {
            offset: self.offset,
            record_count: self.buf.len() as u32,
            min_at,
            max_at,
        });
        self.w.write_all(&[TAG_CHUNK])?;
        self.w.write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.w.write_all(&min_at.to_le_bytes())?;
        self.w.write_all(&max_at.to_le_bytes())?;
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&checksum64(&payload).to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.offset += (CHUNK_HEADER_LEN + payload.len()) as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the trailing partial chunk and writes the footer index,
    /// returning the inner writer.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Io`] on underlying write failures.
    pub fn finish(mut self) -> Result<W, CaptureError> {
        if !self.buf.is_empty() {
            self.flush_chunk()?;
        }
        let index_offset = self.offset;
        self.w.write_all(&[TAG_INDEX])?;
        self.w.write_all(&(self.index.len() as u32).to_le_bytes())?;
        for c in &self.index {
            self.w.write_all(&c.offset.to_le_bytes())?;
            self.w.write_all(&c.record_count.to_le_bytes())?;
            self.w.write_all(&c.min_at.to_le_bytes())?;
            self.w.write_all(&c.max_at.to_le_bytes())?;
        }
        self.w.write_all(&index_offset.to_le_bytes())?;
        self.w.write_all(INDEX_MAGIC)?;
        Ok(self.w)
    }
}

/// Writes `log` in `FGBDCAP2` form — the chunked counterpart of
/// [`crate::capture::write_capture`].
///
/// # Errors
///
/// Returns [`CaptureError::Io`] on underlying write failures.
pub fn write_capture2<W: Write>(w: W, log: &TraceLog) -> Result<(), CaptureError> {
    let mut cw = ChunkedWriter::new(w, &log.nodes)?;
    for &rec in &log.records {
        cw.push(rec)?;
    }
    cw.finish()?;
    Ok(())
}

// --- sequential (streaming) reader -------------------------------------------

/// Reads one chunk header + payload from a byte stream, appending the
/// decoded records to `out`; `false` means the footer tag was hit (its
/// body has NOT been consumed) and nothing was appended.
fn read_stream_chunk<R: Read>(
    r: &mut R,
    index: u32,
    prev_max: &mut u64,
    out: &mut Vec<MsgRecord>,
) -> Result<bool, CaptureError> {
    match read_u8(r)? {
        TAG_INDEX => return Ok(false),
        TAG_CHUNK => {}
        _ => return Err(CaptureError::Malformed("unknown block tag")),
    }
    let record_count = read_u32(r)?;
    let min_at = read_u64(r)?;
    let max_at = read_u64(r)?;
    let byte_len = read_u32(r)? as usize;
    let checksum = read_u64(r)?;
    if record_count == 0 || min_at > max_at {
        return Err(CaptureError::Chunk {
            index,
            what: "bad chunk header",
        });
    }
    if index > 0 && min_at < *prev_max {
        return Err(CaptureError::Chunk {
            index,
            what: "chunk out of order",
        });
    }
    *prev_max = max_at;
    let mut payload = vec![0u8; byte_len];
    r.read_exact(&mut payload)
        .map_err(|_| CaptureError::Chunk {
            index,
            what: "truncated chunk payload",
        })?;
    if checksum64(&payload) != checksum {
        return Err(CaptureError::Chunk {
            index,
            what: "checksum mismatch",
        });
    }
    decode_chunk_payload(&payload, index, record_count, min_at, max_at, out)?;
    Ok(true)
}

/// Consumes and validates the footer body (the tag byte has already been
/// read) against the number of chunks actually decoded.
fn read_stream_footer<R: Read>(r: &mut R, chunks_seen: u32) -> Result<(), CaptureError> {
    let n_chunks = read_u32(r)?;
    if n_chunks != chunks_seen {
        return Err(CaptureError::Malformed("chunk index count mismatch"));
    }
    for _ in 0..n_chunks {
        read_u64(r)?;
        read_u32(r)?;
        read_u64(r)?;
        read_u64(r)?;
    }
    read_u64(r)?; // index_offset — only the random-access path needs it
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != INDEX_MAGIC {
        return Err(CaptureError::Malformed("bad index magic"));
    }
    Ok(())
}

/// Sequential `FGBDCAP2` reader for streams: decodes chunk by chunk,
/// forwarding every record to `tap` in capture order. Called by
/// [`crate::capture::read_capture_tapped`] once it has sniffed [`MAGIC2`]
/// (so `r` is positioned just past the magic).
///
/// # Errors
///
/// Returns [`CaptureError::Chunk`] naming the failing chunk for per-chunk
/// damage and [`CaptureError::Malformed`] for structural damage (missing
/// footer, truncation between chunks).
pub fn read_capture2_tapped_after_magic<R: Read>(
    mut r: R,
    mut tap: impl FnMut(MsgRecord),
) -> Result<TraceLog, CaptureError> {
    let nodes = read_node_table(&mut r)?;
    let mut log = TraceLog::new(nodes);
    let mut chunk = 0u32;
    let mut prev_max = 0u64;
    loop {
        let start = log.records.len();
        if read_stream_chunk(&mut r, chunk, &mut prev_max, &mut log.records)? {
            for &rec in &log.records[start..] {
                tap(rec);
            }
            chunk += 1;
        } else {
            read_stream_footer(&mut r, chunk)?;
            return Ok(log);
        }
    }
}

// --- random-access readers (slice-based: fs::read or mmap both fit) ----------

/// The parsed skeleton of an in-memory capture: node table + chunk index.
struct CaptureIndex {
    nodes: Vec<NodeMeta>,
    chunks: Vec<ChunkInfo>,
}

fn parse_index(bytes: &[u8]) -> Result<CaptureIndex, CaptureError> {
    if bytes.len() < 8 {
        return Err(CaptureError::Malformed("truncated input"));
    }
    if &bytes[..8] != MAGIC2 {
        let mut m = [0u8; 8];
        m.copy_from_slice(&bytes[..8]);
        return Err(CaptureError::BadMagic(m));
    }
    let mut cursor = &bytes[8..];
    let nodes = read_node_table(&mut cursor)?;
    if bytes.len() < TRAILER_LEN || &bytes[bytes.len() - 8..] != INDEX_MAGIC {
        return Err(CaptureError::Malformed("missing chunk index"));
    }
    let index_offset = u64::from_le_bytes(
        bytes[bytes.len() - TRAILER_LEN..bytes.len() - 8]
            .try_into()
            .unwrap(),
    );
    let footer = bytes
        .get(index_offset as usize..bytes.len() - TRAILER_LEN)
        .ok_or(CaptureError::Malformed("bad index offset"))?;
    let mut f = footer;
    if read_u8(&mut f)? != TAG_INDEX {
        return Err(CaptureError::Malformed("bad index offset"));
    }
    let n_chunks = read_u32(&mut f)? as usize;
    if n_chunks.checked_mul(28).is_none_or(|need| need != f.len()) {
        return Err(CaptureError::Malformed("chunk index count mismatch"));
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut prev_max = 0u64;
    for i in 0..n_chunks {
        let c = ChunkInfo {
            offset: read_u64(&mut f)?,
            record_count: read_u32(&mut f)?,
            min_at: read_u64(&mut f)?,
            max_at: read_u64(&mut f)?,
        };
        if c.min_at > c.max_at || (i > 0 && c.min_at < prev_max) {
            return Err(CaptureError::Chunk {
                index: i as u32,
                what: "chunk out of order",
            });
        }
        prev_max = c.max_at;
        chunks.push(c);
    }
    Ok(CaptureIndex { nodes, chunks })
}

/// Decodes the chunk `info` describes directly from the capture slice into
/// `out`, verifying its header against the index entry and its checksum.
fn decode_indexed_chunk(
    bytes: &[u8],
    index: u32,
    info: ChunkInfo,
    out: &mut Vec<MsgRecord>,
) -> Result<(), CaptureError> {
    decode_indexed_chunk_projected(bytes, index, info, Projection::ALL, out)
}

/// [`decode_indexed_chunk`] with column projection.
fn decode_indexed_chunk_projected(
    bytes: &[u8],
    index: u32,
    info: ChunkInfo,
    proj: Projection,
    out: &mut Vec<MsgRecord>,
) -> Result<(), CaptureError> {
    let bad = |what: &'static str| CaptureError::Chunk { index, what };
    let start = info.offset as usize;
    let header = bytes
        .get(start..start + CHUNK_HEADER_LEN)
        .ok_or(bad("chunk offset out of range"))?;
    if header[0] != TAG_CHUNK {
        return Err(bad("chunk offset out of range"));
    }
    let record_count = u32::from_le_bytes(header[1..5].try_into().unwrap());
    let min_at = u64::from_le_bytes(header[5..13].try_into().unwrap());
    let max_at = u64::from_le_bytes(header[13..21].try_into().unwrap());
    let byte_len = u32::from_le_bytes(header[21..25].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[25..33].try_into().unwrap());
    if record_count != info.record_count || min_at != info.min_at || max_at != info.max_at {
        return Err(bad("header disagrees with index"));
    }
    let payload = bytes
        .get(start + CHUNK_HEADER_LEN..start + CHUNK_HEADER_LEN + byte_len)
        .ok_or(bad("truncated chunk payload"))?;
    if checksum64(payload) != checksum {
        return Err(bad("checksum mismatch"));
    }
    decode_chunk_projected(payload, index, record_count, min_at, max_at, proj, out)
}

/// Effective decode parallelism on a host with `host_cores` usable cores.
///
/// Below two cores the workers cannot overlap: the parallel path's thread
/// spawns and per-chunk reassembly copies are pure overhead on top of a
/// serialized decode, which showed up as `chunked_read_*_t4` benching
/// *slower* than `_t1` on a single-core box. Fall back to the in-place
/// sequential decode there (the same reasoning as the streaming tap's zero
/// spin budget on single-core hosts); the decoded bytes are identical
/// either way.
fn effective_decode_threads(requested: usize, host_cores: usize) -> usize {
    if host_cores < 2 {
        1
    } else {
        requested
    }
}

/// Fans chunk decoding out over the selected chunks and appends the results
/// to `out` in chunk order — deterministic at any thread count. The
/// single-thread path decodes straight into `out` (no per-chunk buffers or
/// stitch copies); the parallel path pays one copy per chunk to reassemble.
/// Hosts with fewer than two cores always take the sequential path (see
/// [`effective_decode_threads`]).
fn decode_chunks_parallel(
    bytes: &[u8],
    selected: &[(u32, ChunkInfo)],
    threads: usize,
    out: &mut Vec<MsgRecord>,
) -> Result<(), CaptureError> {
    out.reserve(selected.iter().map(|(_, c)| c.record_count as usize).sum());
    let host = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let threads = effective_decode_threads(threads, host).clamp(1, selected.len().max(1));
    if threads <= 1 || selected.len() <= 1 {
        for &(i, info) in selected {
            decode_indexed_chunk(bytes, i, info, out)?;
        }
        return Ok(());
    }
    let mut slots = decode_slots(bytes, selected, threads, Projection::ALL);
    for slot in slots.drain(..) {
        out.extend(slot.expect("every chunk slot claimed")?);
    }
    Ok(())
}

/// Work-stealing fan-out over `selected`: each worker claims the next
/// un-decoded chunk and records (slot, result); the returned vector is
/// ordered by slot, so thread scheduling never reorders output. Shared by
/// the batch reader (which flattens the slots into one record vector) and
/// the [`ChunkCursor`] decode-ahead path (which queues them chunk-wise).
fn decode_slots(
    bytes: &[u8],
    selected: &[(u32, ChunkInfo)],
    threads: usize,
    proj: Projection,
) -> Vec<Option<Result<Vec<MsgRecord>, CaptureError>>> {
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<Vec<MsgRecord>, CaptureError>>> =
        (0..selected.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(i, info)) = selected.get(slot) else {
                            return mine;
                        };
                        let mut buf = Vec::new();
                        let result = decode_indexed_chunk_projected(bytes, i, info, proj, &mut buf);
                        mine.push((slot, result.map(|()| buf)));
                    }
                })
            })
            .collect();
        for h in handles {
            for (slot, result) in h.join().expect("chunk decode worker panicked") {
                slots[slot] = Some(result);
            }
        }
    });
    slots
}

/// Reads an in-memory `FGBDCAP2` capture, decoding chunks across `threads`
/// worker threads. Accepts any `&[u8]` — `fs::read` output today, a memory
/// map when one is available — and produces a [`TraceLog`] identical to the
/// sequential reader's at every thread count.
///
/// # Errors
///
/// Returns [`CaptureError::BadMagic`] for foreign inputs,
/// [`CaptureError::Malformed`] for structural damage (lost footer,
/// truncation), and [`CaptureError::Chunk`] naming the failing chunk.
pub fn read_capture2_parallel(bytes: &[u8], threads: usize) -> Result<TraceLog, CaptureError> {
    let idx = parse_index(bytes)?;
    let selected: Vec<(u32, ChunkInfo)> = idx
        .chunks
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u32, c))
        .collect();
    let mut log = TraceLog::new(idx.nodes);
    decode_chunks_parallel(bytes, &selected, threads, &mut log.records)?;
    Ok(log)
}

/// Reads only the records with `from <= at <= to` (inclusive bounds, in
/// microsecond capture time) from an in-memory `FGBDCAP2` capture. Chunks
/// wholly outside the window are never touched — the point of the per-chunk
/// `[min_at, max_at]` index — and surviving chunks decode across `threads`.
///
/// # Errors
///
/// Same as [`read_capture2_parallel`]; damage confined to pruned chunks is
/// *not* reported, by design.
pub fn read_capture2_range(
    bytes: &[u8],
    threads: usize,
    from: SimTime,
    to: SimTime,
) -> Result<TraceLog, CaptureError> {
    let idx = parse_index(bytes)?;
    let (lo, hi) = (from.as_micros(), to.as_micros());
    let selected: Vec<(u32, ChunkInfo)> = idx
        .chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| c.max_at >= lo && c.min_at <= hi)
        .map(|(i, &c)| (i as u32, c))
        .collect();
    let mut log = TraceLog::new(idx.nodes);
    decode_chunks_parallel(bytes, &selected, threads, &mut log.records)?;
    log.records.retain(|r| {
        let at = r.at.as_micros();
        at >= lo && at <= hi
    });
    Ok(log)
}

// --- lazy chunk cursor -------------------------------------------------------

/// Lazy, zero-copy cursor over an in-memory `FGBDCAP2` capture.
///
/// Borrows the capture bytes (a heap buffer or an [`mmapio::Mapping`]
/// dereference — see `crate::mmapio`), parses only the footer index up
/// front, and decodes chunks on demand into a caller-supplied buffer, so
/// peak memory is one chunk (times the decode-ahead depth under
/// [`with_threads`](Self::with_threads)) regardless of capture size.
///
/// Three forms of work avoidance compose:
///
/// - **Column projection** ([`with_projection`](Self::with_projection)):
///   skipped columns are walked but never materialized; the per-chunk
///   checksum still covers them, so corruption attribution is unaffected.
/// - **Time-range pushdown** ([`with_time_range`](Self::with_time_range)):
///   chunks wholly outside the window are pruned from the footer index
///   `{min_at, max_at}` entries before any payload byte is touched.
///   Pruning is chunk-granular: surviving chunks may carry records
///   outside the window — filter per record if exact bounds matter.
/// - **Server pushdown** ([`with_server`](Self::with_server)): chunks
///   whose `src` *and* `dst` dictionaries provably exclude a node are
///   skipped after a header-only probe (timestamp walk + dictionary
///   scan, no column materialization). The probe is conservative: plain
///   encodings, damaged chunks, and dictionary hits all keep the chunk.
///
/// Decode order is always chunk order — with `threads > 1` a work-stealing
/// batch decodes ahead and results are re-queued by slot, so output is
/// deterministic at any thread count, same as [`read_capture2_parallel`].
pub struct ChunkCursor<'a> {
    bytes: &'a [u8],
    nodes: Vec<NodeMeta>,
    selected: Vec<(u32, ChunkInfo)>,
    /// Next selected chunk to *decode* (may run ahead of `yielded`).
    next: usize,
    /// Selected chunks already handed to the caller.
    yielded: usize,
    projection: Projection,
    threads: usize,
    ahead: VecDeque<Result<Vec<MsgRecord>, CaptureError>>,
}

impl<'a> ChunkCursor<'a> {
    /// Opens a cursor over `bytes`, parsing the node table and footer
    /// index (the only eager work). All chunks are selected, the
    /// projection is [`Projection::ALL`], and decode is sequential until
    /// the builders say otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::BadMagic`] for foreign inputs (including
    /// `FGBDCAP1` — the cursor is `FGBDCAP2`-only; batch-read flat
    /// captures instead) and [`CaptureError::Malformed`] for a damaged
    /// header or footer.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CaptureError> {
        let idx = parse_index(bytes)?;
        let selected = idx
            .chunks
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u32, c))
            .collect();
        Ok(ChunkCursor {
            bytes,
            nodes: idx.nodes,
            selected,
            next: 0,
            yielded: 0,
            projection: Projection::ALL,
            threads: 1,
            ahead: VecDeque::new(),
        })
    }

    /// Sets which columns [`next_chunk`](Self::next_chunk) materializes.
    pub fn with_projection(mut self, proj: Projection) -> Self {
        self.projection = proj;
        self
    }

    /// Prunes chunks with no overlap with `from..=to` (inclusive bounds in
    /// microsecond capture time) from the walk, using only the footer
    /// index. Surviving chunks decode whole — records are *not* filtered.
    pub fn with_time_range(mut self, from: SimTime, to: SimTime) -> Self {
        let (lo, hi) = (from.as_micros(), to.as_micros());
        self.selected
            .retain(|(_, c)| c.max_at >= lo && c.min_at <= hi);
        self
    }

    /// Prunes chunks that provably never mention `node` as source or
    /// destination, by probing the `src`/`dst` dictionary headers.
    /// Conservative: a chunk only drops when both columns are
    /// dictionary-encoded, intact, and exclude the node.
    pub fn with_server(mut self, node: NodeId) -> Self {
        let bytes = self.bytes;
        self.selected
            .retain(|&(_, c)| chunk_may_touch(bytes, c, node.0));
        self
    }

    /// Decodes up to `threads` chunks ahead with the work-stealing
    /// fan-out; results are still yielded in chunk order. Values below 2
    /// (and any value on a <2-core host — see [`effective_decode_threads`])
    /// keep the sequential in-place path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let host = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        self.threads = effective_decode_threads(threads.max(1), host);
        self
    }

    /// The capture's node table.
    pub fn nodes(&self) -> &[NodeMeta] {
        &self.nodes
    }

    /// Total records across the *selected* chunks (after pushdown), from
    /// the footer index alone.
    pub fn total_records(&self) -> u64 {
        self.selected
            .iter()
            .map(|(_, c)| u64::from(c.record_count))
            .sum()
    }

    /// Number of chunks the walk will visit (after pushdown).
    pub fn chunk_count(&self) -> usize {
        self.selected.len()
    }

    /// `(first, last)` record timestamps across the selected chunks, in
    /// microsecond capture time; `None` when nothing survived selection.
    pub fn time_bounds(&self) -> Option<(u64, u64)> {
        let first = self.selected.first()?.1.min_at;
        let last = self.selected.last()?.1.max_at;
        Some((first, last))
    }

    /// Byte offset before which the cursor will never read again: the
    /// start of the next un-yielded chunk, or the capture length once the
    /// walk is done. Feed this to [`mmapio::Mapping::release_until`] to
    /// keep resident memory flat while scanning a mapped capture.
    pub fn consumed_bytes(&self) -> usize {
        match self.selected.get(self.yielded) {
            Some(&(_, info)) => info.offset as usize,
            None => self.bytes.len(),
        }
    }

    /// Decodes the next selected chunk into `out` (clearing it first).
    /// Returns `Ok(false)` when the walk is complete.
    ///
    /// # Errors
    ///
    /// [`CaptureError::Chunk`] naming the failing chunk, exactly as the
    /// batch readers attribute it; the cursor then resumes with the next
    /// chunk if polled again.
    pub fn next_chunk(&mut self, out: &mut Vec<MsgRecord>) -> Result<bool, CaptureError> {
        out.clear();
        if self.ahead.is_empty() && self.next < self.selected.len() {
            if self.threads <= 1 {
                let (i, info) = self.selected[self.next];
                self.next += 1;
                self.yielded += 1;
                decode_indexed_chunk_projected(self.bytes, i, info, self.projection, out)?;
                return Ok(true);
            }
            self.decode_ahead();
        }
        match self.ahead.pop_front() {
            Some(res) => {
                self.yielded += 1;
                *out = res?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Decodes the next batch of (at most `threads`) chunks in parallel
    /// into the `ahead` queue, preserving chunk order.
    fn decode_ahead(&mut self) {
        let end = (self.next + self.threads).min(self.selected.len());
        let batch = &self.selected[self.next..end];
        let workers = self.threads.min(batch.len()).max(1);
        let mut slots = decode_slots(self.bytes, batch, workers, self.projection);
        for slot in slots.drain(..) {
            self.ahead
                .push_back(slot.expect("every chunk slot claimed"));
        }
        self.next = end;
    }
}

impl std::fmt::Debug for ChunkCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCursor")
            .field("capture_bytes", &self.bytes.len())
            .field("chunks", &self.selected.len())
            .field("yielded", &self.yielded)
            .field("projection", &self.projection)
            .field("threads", &self.threads)
            .finish()
    }
}

/// Best-effort probe: can chunk `info` mention `node` as src or dst?
/// `true` means "maybe" — only a chunk whose src *and* dst columns are
/// intact dictionaries excluding `node` answers `false`. Damage is left
/// for the real decode to attribute.
fn chunk_may_touch(bytes: &[u8], info: ChunkInfo, node: u16) -> bool {
    let start = info.offset as usize;
    let Some(header) = bytes.get(start..start + CHUNK_HEADER_LEN) else {
        return true;
    };
    if header[0] != TAG_CHUNK {
        return true;
    }
    let record_count = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    let byte_len = u32::from_le_bytes(header[21..25].try_into().unwrap()) as usize;
    let Some(payload) = bytes.get(start + CHUNK_HEADER_LEN..start + CHUNK_HEADER_LEN + byte_len)
    else {
        return true;
    };
    let mut r = PayloadReader {
        buf: payload,
        pos: 0,
        chunk: 0,
    };
    // Walk the timestamp column to reach the src column.
    for _ in 0..record_count {
        if r.varint().is_err() {
            return true;
        }
    }
    for _ in 0..2 {
        match probe_dict_column(&mut r, record_count, u64::from(node)) {
            Some(true) => return true, // dictionary mentions the node
            Some(false) => {}          // provably absent; check next column
            None => return true,       // unprobeable (plain/damaged)
        }
    }
    false
}

/// Probes one column header: `Some(true)` when its dictionary contains
/// `value`, `Some(false)` when it provably does not (cursor advanced past
/// the column), `None` when the column cannot be probed.
fn probe_dict_column(r: &mut PayloadReader<'_>, n: usize, value: u64) -> Option<bool> {
    if r.bytes(1).ok()?[0] != COL_DICT {
        return None;
    }
    let dict_len = r.varint().ok()? as usize;
    if dict_len > DICT_MAX_ENTRIES || (dict_len == 0 && n > 0) {
        return None;
    }
    let mut found = false;
    for _ in 0..dict_len {
        if r.varint().ok()? == value {
            found = true;
        }
    }
    if found {
        return Some(true);
    }
    if n > 0 && dict_len > 0 {
        let width = dict_width(dict_len);
        if width > 0 {
            r.bytes((n as u64 * u64::from(width)).div_ceil(8) as usize)
                .ok()?;
        }
    }
    Some(false)
}

// --- dual-format chunk iterator ----------------------------------------------

/// Streams a capture of either format as chunks of records, so consumers
/// (e.g. `compare_captures --raw`) can diff or scan multi-GB captures in
/// flat memory. `FGBDCAP2` yields its native chunks; `FGBDCAP1` is re-cut
/// into [`DEFAULT_CHUNK_RECORDS`]-sized chunks on the fly.
pub struct CaptureChunks<R: Read> {
    r: R,
    nodes: Vec<NodeMeta>,
    state: ChunksState,
}

enum ChunksState {
    /// FGBDCAP1: records remaining, previous timestamp (order check).
    Flat { remaining: u64, prev: SimTime },
    /// FGBDCAP2: next chunk index, previous chunk's max timestamp.
    Chunked { next: u32, prev_max: u64 },
    /// Footer consumed or error yielded; iteration is over.
    Done,
}

impl<R: Read> CaptureChunks<R> {
    /// Opens a capture stream of either format, consuming its header.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::BadMagic`] for foreign inputs and
    /// [`CaptureError::Malformed`] for truncated headers.
    pub fn open(mut r: R) -> Result<Self, CaptureError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let state = if &magic == MAGIC2 {
            ChunksState::Chunked {
                next: 0,
                prev_max: 0,
            }
        } else if &magic == MAGIC {
            ChunksState::Flat {
                remaining: 0, // patched below, after the node table
                prev: SimTime::ZERO,
            }
        } else {
            return Err(CaptureError::BadMagic(magic));
        };
        let nodes = read_node_table(&mut r)?;
        let mut me = CaptureChunks { r, nodes, state };
        if let ChunksState::Flat { remaining, .. } = &mut me.state {
            *remaining = read_u64(&mut me.r)?;
        }
        Ok(me)
    }

    /// The capture's node table (decoded eagerly by [`open`](Self::open)).
    pub fn nodes(&self) -> &[NodeMeta] {
        &self.nodes
    }

    fn next_flat(
        &mut self,
        remaining: u64,
        mut prev: SimTime,
    ) -> Result<Vec<MsgRecord>, CaptureError> {
        let take = remaining.min(DEFAULT_CHUNK_RECORDS as u64);
        let mut out = Vec::with_capacity(take as usize);
        for _ in 0..take {
            let rec = crate::capture::read_record_v1(&mut self.r, prev)?;
            prev = rec.at;
            out.push(rec);
        }
        self.state = if remaining == take {
            ChunksState::Done
        } else {
            ChunksState::Flat {
                remaining: remaining - take,
                prev,
            }
        };
        Ok(out)
    }
}

impl<R: Read> Iterator for CaptureChunks<R> {
    type Item = Result<Vec<MsgRecord>, CaptureError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.state {
            ChunksState::Done => None,
            ChunksState::Flat { remaining, prev } => {
                if remaining == 0 {
                    self.state = ChunksState::Done;
                    return None;
                }
                Some(self.next_flat(remaining, prev).inspect_err(|_| {
                    self.state = ChunksState::Done;
                }))
            }
            ChunksState::Chunked { next, mut prev_max } => {
                let mut records = Vec::new();
                let step = read_stream_chunk(&mut self.r, next, &mut prev_max, &mut records)
                    .and_then(|got_chunk| {
                        if got_chunk {
                            Ok(true)
                        } else {
                            read_stream_footer(&mut self.r, next).map(|()| false)
                        }
                    });
                match step {
                    Ok(true) => {
                        self.state = ChunksState::Chunked {
                            next: next + 1,
                            prev_max,
                        };
                        Some(Ok(records))
                    }
                    Ok(false) => {
                        self.state = ChunksState::Done;
                        None
                    }
                    Err(e) => {
                        self.state = ChunksState::Done;
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NodeKind;

    fn nodes() -> Vec<NodeMeta> {
        vec![
            NodeMeta {
                id: NodeId(0),
                name: "client".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: NodeId(1),
                name: "web-1".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
        ]
    }

    fn sample_log(n: u64) -> TraceLog {
        let mut log = TraceLog::new(nodes());
        for i in 0..n {
            log.push(MsgRecord {
                at: SimTime::from_micros(100 + i * 7),
                src: NodeId((i % 2) as u16),
                dst: NodeId(((i + 1) % 2) as u16),
                kind: if i % 2 == 0 {
                    MsgKind::Request
                } else {
                    MsgKind::Response
                },
                conn: ConnId((i % 5) as u32),
                class: ClassId((i % 3) as u16),
                bytes: 256 + (i % 4) as u32 * 100,
                truth: if i % 7 == 0 { None } else { Some(TxnId(i / 2)) },
            });
        }
        log
    }

    fn encode(log: &TraceLog, chunk: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::with_chunk_records(&mut out, &log.nodes, chunk).unwrap();
        for &r in &log.records {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn round_trips_sequential_and_parallel() {
        let log = sample_log(1000);
        let bytes = encode(&log, 64);
        let seq = crate::capture::read_capture(bytes.as_slice()).unwrap();
        assert_eq!(seq.nodes, log.nodes);
        assert_eq!(seq.records, log.records);
        for threads in [1, 2, 4, 7] {
            let par = read_capture2_parallel(&bytes, threads).unwrap();
            assert_eq!(par.nodes, log.nodes);
            assert_eq!(par.records, log.records);
        }
    }

    #[test]
    fn low_core_hosts_fall_back_to_sequential_decode() {
        // Below two cores the parallel path is pure overhead: any request
        // collapses to the sequential decode.
        assert_eq!(effective_decode_threads(1, 1), 1);
        assert_eq!(effective_decode_threads(4, 1), 1);
        assert_eq!(effective_decode_threads(7, 0), 1);
        // At two or more cores the caller's request stands.
        assert_eq!(effective_decode_threads(4, 2), 4);
        assert_eq!(effective_decode_threads(7, 8), 7);
        assert_eq!(effective_decode_threads(1, 8), 1);
    }

    #[test]
    fn empty_capture_round_trips() {
        let log = TraceLog::new(nodes());
        let bytes = encode(&log, 8);
        assert!(read_capture2_parallel(&bytes, 4)
            .unwrap()
            .records
            .is_empty());
        let seq = crate::capture::read_capture(bytes.as_slice()).unwrap();
        assert_eq!(seq.nodes, log.nodes);
        assert!(seq.records.is_empty());
    }

    #[test]
    fn corrupt_payload_names_the_chunk() {
        let log = sample_log(300);
        let mut bytes = encode(&log, 100);
        // Flip a byte inside the second chunk's payload: find it via the
        // index the reader itself uses.
        let idx = parse_index(&bytes).unwrap();
        let victim = idx.chunks[1].offset as usize + CHUNK_HEADER_LEN + 3;
        bytes[victim] ^= 0xFF;
        match read_capture2_parallel(&bytes, 2) {
            Err(CaptureError::Chunk { index: 1, what }) => {
                assert_eq!(what, "checksum mismatch");
            }
            other => panic!("expected chunk-1 checksum error, got {other:?}"),
        }
        // The sequential reader attributes it identically.
        match crate::capture::read_capture(bytes.as_slice()) {
            Err(CaptureError::Chunk { index: 1, .. }) => {}
            other => panic!("expected chunk-1 error, got {other:?}"),
        }
    }

    fn drain_cursor(mut cur: ChunkCursor<'_>) -> Vec<MsgRecord> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while cur.next_chunk(&mut buf).unwrap() {
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn cursor_matches_batch_reader_at_any_thread_count() {
        let log = sample_log(1000);
        let bytes = encode(&log, 64);
        for threads in [1, 2, 4, 7] {
            let cur = ChunkCursor::new(&bytes).unwrap().with_threads(threads);
            assert_eq!(cur.total_records(), 1000);
            assert_eq!(cur.time_bounds(), Some((100, 100 + 999 * 7)));
            assert_eq!(cur.nodes(), &log.nodes[..]);
            assert_eq!(drain_cursor(cur), log.records);
        }
    }

    #[test]
    fn cursor_consumed_bytes_is_monotone_and_ends_at_len() {
        let log = sample_log(500);
        let bytes = encode(&log, 64);
        let mut cur = ChunkCursor::new(&bytes).unwrap();
        let mut buf = Vec::new();
        let mut prev = cur.consumed_bytes();
        while cur.next_chunk(&mut buf).unwrap() {
            let now = cur.consumed_bytes();
            assert!(now >= prev, "watermark went backwards: {prev} -> {now}");
            prev = now;
        }
        assert_eq!(cur.consumed_bytes(), bytes.len());
    }

    #[test]
    fn cursor_projection_skips_exactly_the_unrequested_columns() {
        let log = sample_log(500);
        let bytes = encode(&log, 64);
        let cur = ChunkCursor::new(&bytes)
            .unwrap()
            .with_projection(Projection::DETECT);
        let recs = drain_cursor(cur);
        assert_eq!(recs.len(), log.records.len());
        for (got, want) in recs.iter().zip(&log.records) {
            assert_eq!(got.at, want.at);
            assert_eq!(got.src, want.src);
            assert_eq!(got.dst, want.dst);
            assert_eq!(got.kind, want.kind);
            assert_eq!(got.conn, want.conn);
            assert_eq!(got.class, want.class);
            // Skipped columns stay at the record defaults.
            assert_eq!(got.bytes, 0);
            assert_eq!(got.truth, None);
        }
    }

    #[test]
    fn cursor_time_range_pushdown_prunes_whole_chunks() {
        let log = sample_log(1000); // at = 100 + i*7, chunks of 100 records
        let bytes = encode(&log, 100);
        let full = ChunkCursor::new(&bytes).unwrap();
        assert_eq!(full.chunk_count(), 10);
        let (from, to) = (
            SimTime::from_micros(100 + 250 * 7),
            SimTime::from_micros(100 + 450 * 7),
        );
        let cur = ChunkCursor::new(&bytes).unwrap().with_time_range(from, to);
        // Records 250..=450 live in chunks 2, 3, 4.
        assert_eq!(cur.chunk_count(), 3);
        let recs = drain_cursor(cur);
        assert_eq!(recs, log.records[200..500]);
        // Chunk-granular: the survivors decode whole, superset of the window.
        assert!(recs.first().unwrap().at < from && recs.last().unwrap().at > to);
    }

    #[test]
    fn cursor_server_pushdown_drops_only_provably_absent_chunks() {
        let mut all = nodes();
        all.push(NodeMeta {
            id: NodeId(2),
            name: "app-1".into(),
            kind: NodeKind::Server,
            tier: Some(1),
        });
        let mut log = TraceLog::new(all);
        for i in 0..400u64 {
            let far = if i < 200 { NodeId(1) } else { NodeId(2) };
            log.push(MsgRecord {
                at: SimTime::from_micros(100 + i * 7),
                src: if i % 2 == 0 { NodeId(0) } else { far },
                dst: if i % 2 == 0 { far } else { NodeId(0) },
                kind: if i % 2 == 0 {
                    MsgKind::Request
                } else {
                    MsgKind::Response
                },
                conn: ConnId((i % 5) as u32),
                class: ClassId((i % 3) as u16),
                bytes: 256,
                truth: None,
            });
        }
        let bytes = encode(&log, 100);
        // Node 2 appears only in the last two of four chunks.
        let cur = ChunkCursor::new(&bytes).unwrap().with_server(NodeId(2));
        assert_eq!(cur.chunk_count(), 2);
        let recs = drain_cursor(cur);
        assert_eq!(recs, log.records[200..]);
        // A node in every chunk prunes nothing; an unknown node prunes all.
        assert_eq!(
            ChunkCursor::new(&bytes)
                .unwrap()
                .with_server(NodeId(0))
                .chunk_count(),
            4
        );
        assert_eq!(
            ChunkCursor::new(&bytes)
                .unwrap()
                .with_server(NodeId(9))
                .chunk_count(),
            0
        );
    }

    #[test]
    fn cursor_attributes_corruption_and_resumes() {
        let log = sample_log(300);
        let mut bytes = encode(&log, 100);
        let idx = parse_index(&bytes).unwrap();
        let victim = idx.chunks[1].offset as usize + CHUNK_HEADER_LEN + 3;
        bytes[victim] ^= 0xFF;
        // Projection does not weaken detection: the checksum covers the
        // whole payload, skipped columns included.
        let project = |r: &MsgRecord, proj: Projection| MsgRecord {
            bytes: if proj.bytes { r.bytes } else { 0 },
            truth: if proj.truth { r.truth } else { None },
            ..*r
        };
        for proj in [Projection::ALL, Projection::DETECT] {
            let expect = |range: std::ops::Range<usize>| -> Vec<MsgRecord> {
                log.records[range]
                    .iter()
                    .map(|r| project(r, proj))
                    .collect()
            };
            let mut cur = ChunkCursor::new(&bytes).unwrap().with_projection(proj);
            let mut buf = Vec::new();
            assert!(cur.next_chunk(&mut buf).unwrap());
            assert_eq!(buf, expect(0..100));
            match cur.next_chunk(&mut buf) {
                Err(CaptureError::Chunk { index: 1, what }) => {
                    assert_eq!(what, "checksum mismatch");
                }
                other => panic!("expected chunk-1 checksum error, got {other:?}"),
            }
            // The cursor can keep walking past the damaged chunk.
            assert!(cur.next_chunk(&mut buf).unwrap());
            assert_eq!(buf, expect(200..300));
            assert!(!cur.next_chunk(&mut buf).unwrap());
        }
    }

    #[test]
    fn cursor_handles_an_empty_capture() {
        let log = TraceLog::new(nodes());
        let bytes = encode(&log, 8);
        let mut cur = ChunkCursor::new(&bytes).unwrap();
        assert_eq!(cur.total_records(), 0);
        assert_eq!(cur.chunk_count(), 0);
        assert_eq!(cur.time_bounds(), None);
        assert_eq!(cur.consumed_bytes(), bytes.len());
        let mut buf = Vec::new();
        assert!(!cur.next_chunk(&mut buf).unwrap());
    }

    #[test]
    fn truncation_is_detected() {
        let log = sample_log(300);
        let bytes = encode(&log, 100);
        // Losing the trailer costs random access...
        let cut = &bytes[..bytes.len() - TRAILER_LEN];
        assert!(matches!(
            read_capture2_parallel(cut, 2),
            Err(CaptureError::Malformed("missing chunk index"))
        ));
        // ...and mid-chunk truncation is named by the sequential reader.
        let idx = parse_index(&bytes).unwrap();
        let mid = idx.chunks[2].offset as usize + CHUNK_HEADER_LEN + 1;
        match crate::capture::read_capture(&bytes[..mid]) {
            Err(CaptureError::Chunk { index: 2, what }) => {
                assert_eq!(what, "truncated chunk payload");
            }
            other => panic!("expected chunk-2 truncation, got {other:?}"),
        }
    }

    #[test]
    fn range_read_matches_full_read_filter() {
        let log = sample_log(500);
        let bytes = encode(&log, 64);
        let (from, to) = (SimTime::from_micros(800), SimTime::from_micros(2500));
        let pruned = read_capture2_range(&bytes, 3, from, to).unwrap();
        let oracle: Vec<MsgRecord> = log
            .records
            .iter()
            .copied()
            .filter(|r| r.at >= from && r.at <= to)
            .collect();
        assert!(!oracle.is_empty());
        assert_eq!(pruned.records, oracle);
    }

    #[test]
    fn chunk_iterator_reads_both_formats() {
        let log = sample_log(200);
        let v2 = encode(&log, 64);
        let mut v1 = Vec::new();
        crate::capture::write_capture(&mut v1, &log).unwrap();
        for bytes in [v1, v2] {
            let it = CaptureChunks::open(bytes.as_slice()).unwrap();
            assert_eq!(it.nodes(), log.nodes.as_slice());
            let records: Vec<MsgRecord> = it.flat_map(|c| c.unwrap()).collect();
            assert_eq!(records, log.records);
        }
    }

    #[test]
    fn writer_rejects_out_of_order_records() {
        let mut w = ChunkedWriter::with_chunk_records(Vec::new(), &nodes(), 8).unwrap();
        let mut rec = sample_log(1).records[0];
        w.push(rec).unwrap();
        rec.at = SimTime::ZERO;
        assert!(matches!(
            w.push(rec),
            Err(CaptureError::Malformed("records out of order"))
        ));
    }

    #[test]
    fn chunked_is_smaller_than_flat() {
        let log = sample_log(10_000);
        let mut v1 = Vec::new();
        crate::capture::write_capture(&mut v1, &log).unwrap();
        let v2 = encode(&log, DEFAULT_CHUNK_RECORDS);
        assert!(
            (v2.len() as f64) <= 0.7 * (v1.len() as f64),
            "chunked {} bytes vs flat {} bytes",
            v2.len(),
            v1.len()
        );
    }
}
