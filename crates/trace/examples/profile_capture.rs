//! Quick wall-clock comparison of the two capture decoders on the bench
//! fixture — handy when tuning `capture2` without a full Criterion run:
//!
//! ```bash
//! cargo run -p fgbd-trace --release --example profile_capture
//! ```

use std::time::Instant;

use fgbd_des::SimTime;
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, TraceLog, TxnId,
};

fn fixture() -> TraceLog {
    let mut log = TraceLog::new(vec![
        NodeMeta {
            id: NodeId(0),
            name: "clients".into(),
            kind: NodeKind::Client,
            tier: None,
        },
        NodeMeta {
            id: NodeId(1),
            name: "web-1".into(),
            kind: NodeKind::Server,
            tier: Some(0),
        },
    ]);
    for i in 0..200_000u64 {
        log.push(MsgRecord {
            at: SimTime::from_micros(i * 3),
            src: NodeId((i % 2) as u16),
            dst: NodeId(((i + 1) % 2) as u16),
            kind: if i % 2 == 0 {
                MsgKind::Request
            } else {
                MsgKind::Response
            },
            conn: ConnId((i % 512) as u32),
            class: ClassId((i % 24) as u16),
            bytes: 512,
            truth: Some(TxnId(i / 2)),
        });
    }
    log
}

fn time(label: &str, iters: u32, mut f: impl FnMut()) {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    println!(
        "{label:<24} {:>8.2} ms/iter",
        t.elapsed().as_secs_f64() * 1000.0 / f64::from(iters)
    );
}

fn main() {
    let log = fixture();
    let mut flat = Vec::new();
    fgbd_trace::capture::write_capture(&mut flat, &log).unwrap();
    let mut chunked = Vec::new();
    fgbd_trace::write_capture2(&mut chunked, &log).unwrap();
    let chunk_records: usize = std::env::var("PROFILE_CHUNK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if chunk_records > 0 {
        let mut buf = Vec::new();
        let mut w =
            fgbd_trace::ChunkedWriter::with_chunk_records(&mut buf, &log.nodes, chunk_records)
                .unwrap();
        for r in &log.records {
            w.push(*r).unwrap();
        }
        w.finish().unwrap();
        chunked = buf;
        println!("(re-encoded at {chunk_records} records/chunk)");
    }
    println!(
        "flat {} B, chunked {} B ({:.2}x)",
        flat.len(),
        chunked.len(),
        chunked.len() as f64 / flat.len() as f64
    );
    for _ in 0..3 {
        time("flat read", 20, || {
            std::hint::black_box(fgbd_trace::capture::read_capture(flat.as_slice()).unwrap());
        });
        time("flat write", 20, || {
            let mut buf = Vec::with_capacity(flat.len());
            fgbd_trace::capture::write_capture(&mut buf, std::hint::black_box(&log)).unwrap();
            std::hint::black_box(buf);
        });
        time("chunked read t1", 20, || {
            std::hint::black_box(fgbd_trace::read_capture2_parallel(&chunked, 1).unwrap());
        });
        time("chunked write", 20, || {
            let mut buf = Vec::with_capacity(chunked.len());
            fgbd_trace::write_capture2(&mut buf, std::hint::black_box(&log)).unwrap();
            std::hint::black_box(buf);
        });
    }
}
