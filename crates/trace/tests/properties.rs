//! Property-based tests for span extraction and black-box reconstruction.

use fgbd_des::SimTime;
use fgbd_trace::capture::{read_capture, write_capture, CaptureError};
use fgbd_trace::capture2::{
    read_capture2_parallel, read_capture2_range, ChunkCursor, ChunkedWriter,
};
use fgbd_trace::mmapio::Mapping;
use fgbd_trace::reconstruct::{reference, Accuracy, Heuristic, Reconstruction};
use fgbd_trace::stream::extract_streamed;
use fgbd_trace::Projection;
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, SpanSet, StreamConfig,
    TraceLog, TxnId,
};
use proptest::prelude::*;

const CLIENT: NodeId = NodeId(0);
const WEB: NodeId = NodeId(1);
const APP: NodeId = NodeId(2);
const DB: NodeId = NodeId(3);

const ALL_HEURISTICS: [Heuristic; 4] = [
    Heuristic::LongestQuiescent,
    Heuristic::MostRecent,
    Heuristic::Fifo,
    Heuristic::ProfileGuided,
];

fn nodes() -> Vec<NodeMeta> {
    vec![
        NodeMeta {
            id: CLIENT,
            name: "client".into(),
            kind: NodeKind::Client,
            tier: None,
        },
        NodeMeta {
            id: WEB,
            name: "web".into(),
            kind: NodeKind::Server,
            tier: Some(0),
        },
        NodeMeta {
            id: APP,
            name: "app".into(),
            kind: NodeKind::Server,
            tier: Some(1),
        },
    ]
}

/// Builds a log of fully serial transactions (one at a time) from random
/// shape parameters: per txn, a web span containing `calls` app spans.
fn serial_log(shapes: &[(u8, u16)]) -> TraceLog {
    let mut log = TraceLog::new(nodes());
    let mut t = 0u64;
    for (i, &(calls, class)) in shapes.iter().enumerate() {
        let txn = TxnId(i as u64);
        let conn = ConnId(10);
        let mk = |at: u64, src: NodeId, dst: NodeId, kind: MsgKind, conn: ConnId, class: u16| {
            MsgRecord {
                at: SimTime::from_micros(at),
                src,
                dst,
                kind,
                conn,
                class: ClassId(class),
                bytes: 100,
                truth: Some(txn),
            }
        };
        log.push(mk(t, CLIENT, WEB, MsgKind::Request, conn, class));
        t += 5;
        for _ in 0..calls {
            let cc = ConnId(100);
            log.push(mk(t, WEB, APP, MsgKind::Request, cc, class));
            t += 7;
            log.push(mk(t, APP, WEB, MsgKind::Response, cc, class));
            t += 3;
        }
        log.push(mk(t, WEB, CLIENT, MsgKind::Response, conn, class));
        t += 11;
    }
    log
}

proptest! {
    /// Span extraction conserves messages: every request/response pair
    /// becomes exactly one span; span count equals response count.
    #[test]
    fn extraction_conserves_pairs(shapes in prop::collection::vec((0u8..6, 0u16..4), 1..30)) {
        let log = serial_log(&shapes);
        let spans = SpanSet::extract(&log);
        let responses = log
            .records
            .iter()
            .filter(|r| r.kind == MsgKind::Response)
            .count();
        prop_assert_eq!(spans.len(), responses);
        prop_assert!(spans.unmatched.is_empty());
        // Every span is causally ordered and attributed to a server node.
        for node in spans.servers() {
            for s in spans.server(node) {
                prop_assert!(s.departure > s.arrival);
            }
        }
    }

    /// Serial transactions reconstruct perfectly under every heuristic.
    #[test]
    fn serial_reconstruction_is_exact(shapes in prop::collection::vec((0u8..6, 0u16..4), 1..25)) {
        let log = serial_log(&shapes);
        for h in [
            Heuristic::LongestQuiescent,
            Heuristic::MostRecent,
            Heuristic::Fifo,
            Heuristic::ProfileGuided,
        ] {
            let rec = Reconstruction::run(&log, h);
            prop_assert_eq!(rec.txns.len(), shapes.len());
            let acc = Accuracy::evaluate(&rec);
            prop_assert_eq!(acc.edge_accuracy, 1.0);
            prop_assert_eq!(acc.txn_accuracy, 1.0);
        }
    }

    /// Reconstruction decisions are identical on the blinded capture —
    /// ground truth can never leak into attribution.
    #[test]
    fn attribution_is_truth_blind(shapes in prop::collection::vec((0u8..5, 0u16..3), 1..15)) {
        let log = serial_log(&shapes);
        let a = Reconstruction::run(&log, Heuristic::ProfileGuided);
        let b = Reconstruction::run(&log.blinded(), Heuristic::ProfileGuided);
        let pa: Vec<Option<usize>> = a.spans.iter().map(|s| s.parent).collect();
        let pb: Vec<Option<usize>> = b.spans.iter().map(|s| s.parent).collect();
        prop_assert_eq!(pa, pb);
    }

    /// Every reconstructed span's root is a fixed point of the parent
    /// chain, and txn membership is consistent.
    #[test]
    fn parent_chains_terminate_at_roots(shapes in prop::collection::vec((0u8..6, 0u16..4), 1..20)) {
        let log = serial_log(&shapes);
        let rec = Reconstruction::run(&log, Heuristic::LongestQuiescent);
        for (i, s) in rec.spans.iter().enumerate() {
            // Walk the chain to a root.
            let mut cur = i;
            let mut hops = 0;
            while let Some(p) = rec.spans[cur].parent {
                cur = p;
                hops += 1;
                prop_assert!(hops <= rec.spans.len(), "parent cycle at span {}", i);
            }
            prop_assert_eq!(cur, s.root);
        }
        for (t, txn) in rec.txns.iter().enumerate() {
            let _ = t;
            for &m in &txn.spans {
                prop_assert_eq!(rec.spans[m].root, txn.root);
            }
        }
    }
}

fn nodes4() -> Vec<NodeMeta> {
    let mut n = nodes();
    n.push(NodeMeta {
        id: DB,
        name: "db".into(),
        kind: NodeKind::Server,
        tier: Some(2),
    });
    n
}

/// Builds a log of *interleaved* multi-tier transactions from random shape
/// parameters: per txn `(calls, class, start, spacing)`, a web span issuing
/// `calls` app calls (odd classes also fan out app→db), all overlapping in
/// time and sharing small connection pools, then truncated at both ends —
/// concurrency, FIFO conn reuse, orphan calls, and orphan responses in one
/// generator.
/// Encodes a log in the chunked columnar format (`FGBDCAP2`) with an
/// explicit records-per-chunk bound, returning the raw bytes.
fn chunked_bytes(log: &TraceLog, chunk_records: usize) -> Vec<u8> {
    let mut w = ChunkedWriter::with_chunk_records(Vec::new(), &log.nodes, chunk_records)
        .expect("open chunked writer");
    for &r in &log.records {
        w.push(r).expect("push record");
    }
    w.finish().expect("finish chunked capture")
}

fn interleaved_log(shapes: &[(u8, u16, u64, u64)], drop_head: usize, drop_tail: usize) -> TraceLog {
    let mk = |at: u64, src: NodeId, dst: NodeId, kind: MsgKind, conn: u32, class: u16, txn: u64| {
        MsgRecord {
            at: SimTime::from_micros(at),
            src,
            dst,
            kind,
            conn: ConnId(conn),
            class: ClassId(class),
            bytes: 100,
            truth: Some(TxnId(txn)),
        }
    };
    let mut evs: Vec<MsgRecord> = Vec::new();
    for (i, &(calls, class, start, spacing)) in shapes.iter().enumerate() {
        let txn = i as u64;
        let cc = (i % 4) as u32;
        evs.push(mk(start, CLIENT, WEB, MsgKind::Request, cc, class, txn));
        let mut t = start + 2;
        for k in 0..u64::from(calls) {
            let ac = 100 + ((i as u64 + k) % 5) as u32;
            evs.push(mk(t, WEB, APP, MsgKind::Request, ac, class, txn));
            if class % 2 == 1 {
                let dc = 200 + ((i as u64 + k) % 3) as u32;
                evs.push(mk(t + 1, APP, DB, MsgKind::Request, dc, class, txn));
                evs.push(mk(
                    t + spacing - 1,
                    DB,
                    APP,
                    MsgKind::Response,
                    dc,
                    class,
                    txn,
                ));
            }
            evs.push(mk(t + spacing, APP, WEB, MsgKind::Response, ac, class, txn));
            t += spacing + 2;
        }
        evs.push(mk(t + 3, WEB, CLIENT, MsgKind::Response, cc, class, txn));
    }
    evs.sort_by_key(|r| r.at);
    let lo = drop_head.min(evs.len());
    let hi = evs.len().saturating_sub(drop_tail).max(lo);
    let mut log = TraceLog::new(nodes4());
    for r in &evs[lo..hi] {
        log.push(*r);
    }
    log
}

proptest! {
    /// The oracle for the dense-index fast path: on randomized interleaved
    /// multi-tier logs — varying concurrency, shared connections, truncated
    /// captures with orphan calls and orphan responses —
    /// [`Reconstruction::run`] produces span-for-span, txn-for-txn identical
    /// output to [`reference::run`] under all four heuristics.
    #[test]
    fn reconstruct_fast_matches_reference(
        shapes in prop::collection::vec((0u8..5, 0u16..4, 0u64..400, 2u64..10), 1..25),
        drops in (0usize..6, 0usize..6),
    ) {
        let log = interleaved_log(&shapes, drops.0, drops.1);
        for h in ALL_HEURISTICS {
            let fast = Reconstruction::run(&log, h);
            let spec = reference::run(&log, h);
            prop_assert_eq!(&fast.spans, &spec.spans);
            prop_assert_eq!(&fast.txns, &spec.txns);
        }
    }

    /// Same oracle on adversarial "record soup": arbitrary src/dst pairs
    /// (including node ids absent from the node table), arbitrary
    /// request/response interleavings, and colliding connection ids. The
    /// fast path must agree with the reference even on captures with no
    /// transactional structure at all.
    #[test]
    fn reconstruct_fast_matches_reference_on_record_soup(
        soup in prop::collection::vec(
            (0u64..6, 0u16..36, prop::bool::ANY, 0u32..6, 0u16..3),
            1..80,
        ),
    ) {
        let mut log = TraceLog::new(nodes());
        let mut t = 0u64;
        for &(dt, srcdst, is_resp, conn, class) in &soup {
            t += dt;
            log.push(MsgRecord {
                at: SimTime::from_micros(t),
                src: NodeId(srcdst % 6),
                dst: NodeId(srcdst / 6),
                kind: if is_resp { MsgKind::Response } else { MsgKind::Request },
                conn: ConnId(conn),
                class: ClassId(class),
                bytes: 10,
                truth: None,
            });
        }
        for h in ALL_HEURISTICS {
            let fast = Reconstruction::run(&log, h);
            let spec = reference::run(&log, h);
            prop_assert_eq!(&fast.spans, &spec.spans);
            prop_assert_eq!(&fast.txns, &spec.txns);
        }
    }
}

proptest! {
    /// Capture serialization is a lossless roundtrip for arbitrary logs.
    #[test]
    fn capture_roundtrip(shapes in prop::collection::vec((0u8..6, 0u16..4), 0..25)) {
        let log = serial_log(&shapes);
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        let back = read_capture(buf.as_slice()).expect("read");
        prop_assert_eq!(back.nodes, log.nodes);
        prop_assert_eq!(back.records, log.records);
    }

    /// Any truncation of a valid capture is rejected, never mis-decoded.
    #[test]
    fn capture_truncation_always_detected(
        shapes in prop::collection::vec((0u8..4, 0u16..3), 1..10),
        frac in 0.0f64..1.0,
    ) {
        let log = serial_log(&shapes);
        let mut buf = Vec::new();
        write_capture(&mut buf, &log).expect("write");
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(read_capture(&buf[..cut]).is_err());
    }

    /// The dense span extractor ([`SpanSet::extract`]) produces output
    /// identical to the `HashMap`-keyed reference on adversarial record
    /// soup: arbitrary interleavings, unknown node ids, colliding
    /// connections, and truncation at both ends.
    #[test]
    fn extract_fast_matches_reference(
        soup in prop::collection::vec(
            (0u64..6, 0u16..36, prop::bool::ANY, 0u32..6, 0u16..3),
            1..120,
        ),
    ) {
        let mut log = TraceLog::new(nodes());
        let mut t = 0u64;
        for &(dt, srcdst, is_resp, conn, class) in &soup {
            t += dt;
            log.push(MsgRecord {
                at: SimTime::from_micros(t),
                src: NodeId(srcdst % 6),
                dst: NodeId(srcdst / 6),
                kind: if is_resp { MsgKind::Response } else { MsgKind::Request },
                conn: ConnId(conn),
                class: ClassId(class),
                bytes: 10,
                truth: if is_resp { None } else { Some(TxnId(t)) },
            });
        }
        let fast = SpanSet::extract(&log);
        let spec = fgbd_trace::span::reference::extract(&log);
        prop_assert_eq!(fast.servers(), spec.servers());
        for s in fast.servers() {
            prop_assert_eq!(fast.server(s), spec.server(s));
        }
        prop_assert_eq!(&fast.unmatched, &spec.unmatched);
        prop_assert_eq!(fast.len(), spec.len());
    }

    /// The sharded streaming extractor agrees with the `HashMap`-keyed
    /// reference on adversarial record soup for *every* pipeline shape:
    /// arbitrary chunk boundaries (chunks of 1 put every record on its own
    /// channel trip), shard counts 1–8, and channel capacities down to a
    /// single in-flight chunk. This is the determinism contract of
    /// `crates/trace/src/stream.rs` — the merge key `(arrival, departure,
    /// seq)` must reproduce the batch order no matter how records were
    /// scattered.
    #[test]
    fn streamed_matches_reference_for_any_pipeline_shape(
        soup in prop::collection::vec(
            (0u64..6, 0u16..36, prop::bool::ANY, 0u32..6, 0u16..3),
            1..100,
        ),
        chunk in 1usize..64,
        shards in 1usize..9,
        capacity in 1usize..5,
    ) {
        let mut log = TraceLog::new(nodes());
        let mut t = 0u64;
        for &(dt, srcdst, is_resp, conn, class) in &soup {
            t += dt;
            log.push(MsgRecord {
                at: SimTime::from_micros(t),
                src: NodeId(srcdst % 6),
                dst: NodeId(srcdst / 6),
                kind: if is_resp { MsgKind::Response } else { MsgKind::Request },
                conn: ConnId(conn),
                class: ClassId(class),
                bytes: 10,
                truth: if is_resp { None } else { Some(TxnId(t)) },
            });
        }
        let cfg = StreamConfig::from_values(shards, chunk, capacity)
            .expect("shards > 0");
        let streamed = extract_streamed(&log, &cfg);
        let spec = fgbd_trace::span::reference::extract(&log);
        prop_assert_eq!(streamed.servers(), spec.servers());
        for s in streamed.servers() {
            prop_assert_eq!(streamed.server(s), spec.server(s));
        }
        prop_assert_eq!(&streamed.unmatched, &spec.unmatched);
        prop_assert_eq!(streamed.len(), spec.len());
    }

    /// The chunked columnar format (`FGBDCAP2`) is bit-identical to the
    /// flat reference path: decode(chunked(log)) == decode(flat(log)) for
    /// every chunk size and thread count, and re-encoding the chunked
    /// decode as `FGBDCAP1` reproduces the flat bytes exactly.
    #[test]
    fn chunked_capture_matches_flat_roundtrip(
        shapes in prop::collection::vec((0u8..5, 0u16..4, 0u64..400, 2u64..10), 0..20),
        chunk in 1usize..48,
        threads in 1usize..5,
    ) {
        let log = interleaved_log(&shapes, 0, 0);
        let mut flat = Vec::new();
        write_capture(&mut flat, &log).expect("write flat");
        let oracle = read_capture(flat.as_slice()).expect("read flat");

        let chunked = chunked_bytes(&log, chunk);
        // The shared entry point sniffs the magic and decodes either format.
        let seq = read_capture(chunked.as_slice()).expect("read chunked");
        let par = read_capture2_parallel(&chunked, threads).expect("read chunked parallel");
        prop_assert_eq!(&seq.nodes, &oracle.nodes);
        prop_assert_eq!(&seq.records, &oracle.records);
        prop_assert_eq!(&par.nodes, &oracle.nodes);
        prop_assert_eq!(&par.records, &oracle.records);

        let mut again = Vec::new();
        write_capture(&mut again, &par).expect("re-encode flat");
        prop_assert_eq!(again, flat);
    }

    /// Any truncation of a chunked capture is rejected by both readers,
    /// never silently mis-decoded.
    #[test]
    fn chunked_truncation_always_detected(
        shapes in prop::collection::vec((0u8..4, 0u16..3, 0u64..200, 2u64..8), 1..8),
        chunk in 1usize..16,
        frac in 0.0f64..1.0,
    ) {
        let log = interleaved_log(&shapes, 0, 0);
        let buf = chunked_bytes(&log, chunk);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(read_capture(&buf[..cut]).is_err());
        prop_assert!(read_capture2_parallel(&buf[..cut], 2).is_err());
    }

    /// Any single-byte corruption in the chunk region is detected, and a
    /// flip inside a chunk *payload* is attributed to exactly that chunk
    /// by index — the per-chunk checksum contract.
    #[test]
    fn chunked_corruption_names_the_chunk(
        shapes in prop::collection::vec((0u8..4, 0u16..3, 0u64..200, 2u64..8), 2..8),
        chunk in 1usize..8,
        pick in (0usize..1 << 16, 0usize..1 << 16),
    ) {
        let log = interleaved_log(&shapes, 0, 0);
        let mut buf = chunked_bytes(&log, chunk);
        // Walk the public footer layout to the chunk table: trailer is
        // `index_offset u64 + magic`, footer body is `tag u8 + n u32 +
        // n × {offset u64, count u32, min u64, max u64}`.
        let trailer = buf.len() - 16;
        let index_offset =
            u64::from_le_bytes(buf[trailer..trailer + 8].try_into().unwrap()) as usize;
        let n_chunks =
            u32::from_le_bytes(buf[index_offset + 1..index_offset + 5].try_into().unwrap())
                as usize;
        prop_assert!(n_chunks >= 1);
        let victim = pick.0 % n_chunks;
        let entry = index_offset + 5 + victim * 28;
        let chunk_off =
            u64::from_le_bytes(buf[entry..entry + 8].try_into().unwrap()) as usize;
        let byte_len =
            u32::from_le_bytes(buf[chunk_off + 21..chunk_off + 25].try_into().unwrap())
                as usize;
        let flip = chunk_off + 33 + pick.1 % byte_len;
        buf[flip] ^= 0x5A;
        match read_capture2_parallel(&buf, 2) {
            Err(CaptureError::Chunk { index, .. }) => {
                prop_assert_eq!(index as usize, victim);
            }
            Err(other) => prop_assert!(false, "expected chunk {} error, got {}", victim, other),
            Ok(_) => prop_assert!(false, "payload corruption went undetected"),
        }
        prop_assert!(read_capture(buf.as_slice()).is_err());
    }

    /// Time-range-pruned reads equal a full read plus filter — pruning by
    /// the chunk index never adds or drops a record at the boundaries.
    #[test]
    fn chunked_range_read_matches_filtered_full_read(
        shapes in prop::collection::vec((0u8..5, 0u16..4, 0u64..400, 2u64..10), 1..15),
        chunk in 1usize..32,
        bounds in (0u64..3_000, 0u64..3_000),
    ) {
        let log = interleaved_log(&shapes, 0, 0);
        let buf = chunked_bytes(&log, chunk);
        let (from, to) = (
            SimTime::from_micros(bounds.0.min(bounds.1)),
            SimTime::from_micros(bounds.0.max(bounds.1)),
        );
        let pruned = read_capture2_range(&buf, 2, from, to).expect("range read");
        let oracle: Vec<MsgRecord> = log
            .records
            .iter()
            .copied()
            .filter(|r| r.at >= from && r.at <= to)
            .collect();
        prop_assert_eq!(pruned.records, oracle);
    }

    /// The lazy chunk cursor is a pure restriction of the full decode:
    /// under any projection, any chunk size (empty captures, single-chunk
    /// captures, and trailing partial chunks included), and any time
    /// range, the records it yields are a contiguous run of the fully
    /// decoded records (with unprojected columns zeroed) that covers
    /// every record inside the range — chunk-granular pushdown may only
    /// widen, never narrow or reorder.
    #[test]
    fn cursor_projected_range_decode_is_a_restriction_of_the_full_decode(
        shapes in prop::collection::vec((0u8..5, 0u16..4, 0u64..400, 2u64..10), 0..15),
        chunk in 1usize..48,
        threads in 1usize..4,
        project in prop::bool::ANY,
        bounds in (0u64..3_000, 0u64..3_000),
    ) {
        let log = interleaved_log(&shapes, 0, 0);
        let buf = chunked_bytes(&log, chunk);
        let proj = if project { Projection::DETECT } else { Projection::ALL };
        let (lo, hi) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let (from, to) = (SimTime::from_micros(lo), SimTime::from_micros(hi));

        let mut cursor = ChunkCursor::new(&buf)
            .expect("open cursor")
            .with_projection(proj)
            .with_threads(threads)
            .with_time_range(from, to);
        let mut drained = Vec::new();
        let mut buf_chunk = Vec::new();
        while cursor.next_chunk(&mut buf_chunk).expect("decode chunk") {
            drained.extend_from_slice(&buf_chunk);
        }

        let projected: Vec<MsgRecord> = log
            .records
            .iter()
            .map(|r| MsgRecord {
                bytes: if proj.bytes { r.bytes } else { 0 },
                truth: if proj.truth { r.truth } else { None },
                ..*r
            })
            .collect();
        // Contiguous run of the full projected decode…
        prop_assert!(
            drained.is_empty()
                || projected
                    .windows(drained.len())
                    .any(|w| w == drained.as_slice()),
            "cursor output is not a contiguous run of the full decode"
        );
        // …that misses nothing inside the requested range.
        let inside = |r: &MsgRecord| r.at >= from && r.at <= to;
        prop_assert_eq!(
            drained.iter().filter(|r| inside(r)).count(),
            projected.iter().filter(|r| inside(r)).count()
        );
    }

    /// Single-byte chunk-payload corruption survives the mmap path: a
    /// cursor over a [`Mapping`] of the damaged file names exactly the
    /// flipped chunk (under full and projected decode alike — the
    /// checksum covers skipped columns too) and resumes with every other
    /// chunk decoded intact.
    #[test]
    fn cursor_over_a_mapping_attributes_corruption_and_resumes(
        shapes in prop::collection::vec((0u8..4, 0u16..3, 0u64..200, 2u64..8), 2..8),
        chunk in 1usize..8,
        pick in (0usize..1 << 16, 0usize..1 << 16),
        project in prop::bool::ANY,
    ) {
        let log = interleaved_log(&shapes, 0, 0);
        let mut buf = chunked_bytes(&log, chunk);
        // Same footer walk as `chunked_corruption_names_the_chunk`.
        let trailer = buf.len() - 16;
        let index_offset =
            u64::from_le_bytes(buf[trailer..trailer + 8].try_into().unwrap()) as usize;
        let n_chunks =
            u32::from_le_bytes(buf[index_offset + 1..index_offset + 5].try_into().unwrap())
                as usize;
        prop_assert!(n_chunks >= 1);
        let victim = pick.0 % n_chunks;
        let entry = index_offset + 5 + victim * 28;
        let chunk_off =
            u64::from_le_bytes(buf[entry..entry + 8].try_into().unwrap()) as usize;
        let byte_len =
            u32::from_le_bytes(buf[chunk_off + 21..chunk_off + 25].try_into().unwrap())
                as usize;
        buf[chunk_off + 33 + pick.1 % byte_len] ^= 0x5A;

        // Through a real file and a real mapping, like `analyze_capture`
        // under FGBD_CAPTURE_MMAP=1.
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "fgbd_prop_cursor_{}_{}.fgbdcap",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        std::fs::write(&path, &buf).expect("write capture file");
        let map = Mapping::open(&path).expect("map capture file");

        let proj = if project { Projection::DETECT } else { Projection::ALL };
        let mut cursor = ChunkCursor::new(&map)
            .expect("open cursor")
            .with_projection(proj);
        let mut good = 0usize;
        let mut bad = Vec::new();
        let mut out = Vec::new();
        for i in 0..n_chunks {
            match cursor.next_chunk(&mut out) {
                Ok(true) => good += 1,
                Ok(false) => {
                    prop_assert!(false, "cursor ended early at chunk {}", i);
                }
                Err(CaptureError::Chunk { index, .. }) => bad.push(index as usize),
                Err(other) => {
                    prop_assert!(false, "expected chunk error, got {}", other);
                }
            }
        }
        prop_assert!(!cursor.next_chunk(&mut out).expect("clean end"));
        drop(cursor);
        drop(map);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(bad, vec![victim]);
        prop_assert!(good > 0 || n_chunks == 1);
    }

    /// Slicing by time then extracting spans equals extracting then
    /// filtering by span arrival (for spans fully inside the slice).
    #[test]
    fn time_slice_consistency(shapes in prop::collection::vec((0u8..4, 0u16..3), 1..15)) {
        let log = serial_log(&shapes);
        let Some(last) = log.records.last().map(|r| r.at) else {
            return Ok(());
        };
        let mid = SimTime::from_micros(last.as_micros() / 2);
        let sliced = log.slice_time(SimTime::ZERO, mid);
        prop_assert!(sliced.records.iter().all(|r| r.at < mid));
        prop_assert!(sliced.records.len() <= log.records.len());
        // Node slicing partitions sanely: web-touching + app-only covers all.
        let web = log.slice_node(WEB);
        let all_touch_web = web.records.iter().all(|r| r.src == WEB || r.dst == WEB);
        prop_assert!(all_touch_web);
    }
}
