//! # fgbd-bench — Criterion benchmarks
//!
//! Performance benchmarks for the `fgbd` reproduction, plus ablation
//! benches for the design choices called out in `DESIGN.md`:
//!
//! * `benches/analysis.rs` — the detector pipeline (load/throughput series,
//!   N\* estimation, plateau modes) on synthetic captures.
//! * `benches/simulator.rs` — n-tier simulator event rate across workloads
//!   and scenarios.
//! * `benches/ablations.rs` — normalized vs straightforward throughput,
//!   interval-length sensitivity, reconstruction heuristics, and the
//!   sampling-overhead model.
//! * `benches/figures.rs` — reduced-scale end-to-end figure pipelines.
//! * `benches/parallel_sim.rs` — sequential reference vs population-sharded
//!   lockstep fleets across worker counts.
//!
//! This crate exposes shared helpers for the bench targets.

use fgbd_des::SimDuration;
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::result::RunResult;
use fgbd_ntier::system::NTierSystem;

/// A short (benchmark-scale) run of the paper topology: 10 simulated
/// seconds after a 2-second warm-up.
pub fn short_run(users: u32, jdk: Jdk, speedstep: bool, capture: bool) -> RunResult {
    let mut cfg = SystemConfig::paper_1l2s1l2s(users, jdk, speedstep, 42);
    cfg.warmup = SimDuration::from_secs(2);
    cfg.duration = SimDuration::from_secs(10);
    cfg.capture = capture;
    NTierSystem::run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_produces_traffic() {
        let res = short_run(500, Jdk::Jdk16, false, true);
        assert!(res.throughput() > 20.0);
        assert!(!res.log.records.is_empty());
    }
}
