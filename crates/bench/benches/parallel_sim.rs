//! Criterion benchmarks of the population-sharded parallel simulator:
//! sequential reference vs K-pod lockstep fleets at varying worker
//! counts. The shard count changes the model (K pods of N/K users), so
//! the honest comparison holds the pod count fixed and scales workers —
//! `shards4_workers1` vs `shards4_workers4` is the parallel speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fgbd_des::SimDuration;
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::shard::{run_sharded, ShardPlan};
use fgbd_ntier::system::NTierSystem;

const USERS: u32 = 4_000;

fn bench_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_1l2s1l2s(USERS, Jdk::Jdk16, false, 42);
    cfg.warmup = SimDuration::from_secs(2);
    cfg.duration = SimDuration::from_secs(10);
    cfg.capture = true;
    cfg
}

fn bench_parallel_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sim");
    group.sample_size(10);

    group.bench_function("sequential_reference", |b| {
        b.iter(|| black_box(NTierSystem::run(bench_cfg())));
    });

    for shards in [2usize, 4] {
        for workers in [1usize, shards] {
            let plan = ShardPlan { shards, workers };
            group.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), format!("workers{workers}")),
                &plan,
                |b, plan| {
                    b.iter(|| black_box(run_sharded(bench_cfg(), plan)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sim);
criterion_main!(benches);
