//! Reduced-scale end-to-end figure pipelines: each bench runs the full
//! simulate → capture → calibrate → detect chain that the corresponding
//! `fgbd-repro` binary runs at full scale, so regressions in any stage show
//! up as wall-clock changes here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgbd_bench::short_run;
use fgbd_core::detect::{analyze_server, DetectorConfig};
use fgbd_core::plateau::{find_plateaus, PlateauConfig};
use fgbd_core::series::Window;
use fgbd_des::SimDuration;
use fgbd_ntier::config::Jdk;
use fgbd_trace::reconstruct::{Heuristic, Reconstruction};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::SpanSet;

fn detect_pipeline(users: u32, jdk: Jdk, speedstep: bool, server: &str) -> usize {
    let run = short_run(users, jdk, speedstep, true);
    let spans = SpanSet::extract(&run.log);
    let node = run.node_of(server).expect("server exists");
    let rec = Reconstruction::run(&run.log, Heuristic::ProfileGuided);
    let services = ServiceTimeTable::approximate(&rec, 0.15);
    let wu = services
        .work_unit(node, SimDuration::from_micros(100))
        .unwrap_or(SimDuration::from_micros(100));
    let window = Window::new(run.warmup_end, run.horizon, SimDuration::from_millis(50));
    let report = analyze_server(
        spans.server(node),
        node,
        window,
        &services,
        wu,
        &DetectorConfig::default(),
    );
    let congested: Vec<f64> = report.congested_samples().iter().map(|&(_, t)| t).collect();
    report.congested_intervals() + find_plateaus(&congested, &PlateauConfig::default()).len()
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipelines");
    group.sample_size(10);
    group.bench_function("fig09_gc_tomcat_small", |b| {
        b.iter(|| black_box(detect_pipeline(2_000, Jdk::Jdk15, false, "tomcat-1")));
    });
    group.bench_function("fig12_speedstep_mysql_small", |b| {
        b.iter(|| black_box(detect_pipeline(2_000, Jdk::Jdk16, true, "mysql-1")));
    });
    group.bench_function("fig13_pinned_p0_mysql_small", |b| {
        b.iter(|| black_box(detect_pipeline(2_000, Jdk::Jdk16, false, "mysql-1")));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
