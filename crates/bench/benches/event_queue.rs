//! Microbenchmarks of the future-event list: the timing-wheel
//! [`EventQueue`] against the `BinaryHeap` [`reference::HeapQueue`] under
//! the classic *hold* model (steady state: each operation pops the earliest
//! event and schedules a successor), at small and large pending-set sizes.
//! The DES pops and pushes once per simulated event across millions of
//! events per run, so per-op cost here is the `simulate` manifest stage.
//! Each bench warms its queue with `2×` the pending-set size in hold
//! operations before measuring, so the wheel's one-time fill cascades
//! (and the heap's initial sift pattern) don't pollute the steady-state
//! per-op cost being compared.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgbd_des::queue::reference::HeapQueue;
use fgbd_des::{Dice, EventQueue, SimDuration, SimTime};

/// Pending-set size for the large hold benches (the acceptance bar: the
/// wheel must be ≥2× the heap here).
const LARGE: usize = 100_000;
const SMALL: usize = 1_000;

/// Random future offset mimicking the n-tier event mix: mostly short
/// think/service delays, occasionally a long timer.
fn offset(dice: &mut Dice) -> SimDuration {
    let us = if dice.chance(0.05) {
        1 + dice.index(5_000_000) as u64
    } else {
        1 + dice.index(20_000) as u64
    };
    SimDuration::from_micros(us)
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(criterion::Throughput::Elements(1));

    group.bench_function("wheel_hold_100k", |b| {
        let mut dice = Dice::seed(42);
        let mut q = EventQueue::with_capacity(LARGE);
        let mut now = SimTime::ZERO;
        for i in 0..LARGE as u64 {
            q.schedule(now + offset(&mut dice), i);
        }
        for _ in 0..2 * LARGE {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
        }
        b.iter(|| {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
            black_box(t);
        });
    });

    group.bench_function("heap_hold_100k", |b| {
        let mut dice = Dice::seed(42);
        let mut q = HeapQueue::with_capacity(LARGE);
        let mut now = SimTime::ZERO;
        for i in 0..LARGE as u64 {
            q.schedule(now + offset(&mut dice), i);
        }
        for _ in 0..2 * LARGE {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
        }
        b.iter(|| {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
            black_box(t);
        });
    });

    group.bench_function("wheel_hold_1k", |b| {
        let mut dice = Dice::seed(42);
        let mut q = EventQueue::with_capacity(SMALL);
        let mut now = SimTime::ZERO;
        for i in 0..SMALL as u64 {
            q.schedule(now + offset(&mut dice), i);
        }
        for _ in 0..2 * SMALL {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
        }
        b.iter(|| {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
            black_box(t);
        });
    });

    group.bench_function("heap_hold_1k", |b| {
        let mut dice = Dice::seed(42);
        let mut q = HeapQueue::with_capacity(SMALL);
        let mut now = SimTime::ZERO;
        for i in 0..SMALL as u64 {
            q.schedule(now + offset(&mut dice), i);
        }
        for _ in 0..2 * SMALL {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
        }
        b.iter(|| {
            let (t, e) = q.pop().expect("hold queue never drains");
            now = t;
            q.schedule(now + offset(&mut dice), e);
            black_box(t);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
