//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//! throughput normalization (§III-B), interval length (§III-D), the
//! reconstruction heuristics, and the monitoring-overhead trade-off (§I).
//! These measure *compute cost*; the corresponding *quality* comparisons
//! live in the test suites and figure harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fgbd_bench::short_run;
use fgbd_core::nstar::{self, NStarConfig};
use fgbd_core::series::{LoadSeries, ThroughputSeries, Window};
use fgbd_des::SimDuration;
use fgbd_metrics::sampler::{sampling_overhead_frac, UtilizationSeries};
use fgbd_ntier::config::Jdk;
use fgbd_trace::reconstruct::{Heuristic, Reconstruction};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::SpanSet;

fn bench_normalization(c: &mut Criterion) {
    let run = short_run(2_000, Jdk::Jdk16, false, true);
    let spans = SpanSet::extract(&run.log);
    let node = run.node_of("mysql-1").expect("mysql exists");
    let rec = Reconstruction::run(&run.log, Heuristic::ProfileGuided);
    let services = ServiceTimeTable::approximate(&rec, 0.15);
    let window = Window::new(run.warmup_end, run.horizon, SimDuration::from_millis(50));
    let mut group = c.benchmark_group("ablation_normalization");
    // Straightforward counting = the same series with an empty table (every
    // span falls back to the capped-residence path).
    let empty = ServiceTimeTable::new();
    group.bench_function("straightforward_counts", |b| {
        b.iter(|| {
            ThroughputSeries::from_spans(
                black_box(spans.server(node)),
                window,
                &empty,
                SimDuration::from_micros(100),
            )
        });
    });
    group.bench_function("normalized_work_units", |b| {
        b.iter(|| {
            ThroughputSeries::from_spans(
                black_box(spans.server(node)),
                window,
                &services,
                SimDuration::from_micros(100),
            )
        });
    });
    group.finish();
}

fn bench_interval_length(c: &mut Criterion) {
    let run = short_run(2_000, Jdk::Jdk16, false, true);
    let spans = SpanSet::extract(&run.log);
    let node = run.node_of("tomcat-1").expect("tomcat exists");
    let mut group = c.benchmark_group("ablation_interval_length");
    for ms in [20u64, 50, 1_000] {
        let window = Window::new(run.warmup_end, run.horizon, SimDuration::from_millis(ms));
        group.bench_with_input(BenchmarkId::new("load_series", ms), &window, |b, &w| {
            b.iter(|| LoadSeries::from_spans(black_box(spans.server(node)), w));
        });
    }
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let run = short_run(1_000, Jdk::Jdk16, false, true);
    let mut group = c.benchmark_group("ablation_reconstruction");
    group.sample_size(10);
    for (name, h) in [
        ("longest_quiescent", Heuristic::LongestQuiescent),
        ("most_recent", Heuristic::MostRecent),
        ("fifo", Heuristic::Fifo),
        ("profile_guided", Heuristic::ProfileGuided),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| Reconstruction::run(black_box(&run.log), h));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let run = short_run(2_000, Jdk::Jdk16, false, false);
    let idx = run.server_index("tomcat-1").expect("tomcat exists");
    let cumulative: Vec<_> = run.cpu_busy[idx]
        .iter()
        .map(|s| (s.at, s.busy_core_seconds))
        .collect();
    let mut group = c.benchmark_group("ablation_sampling");
    for ms in [20u64, 100, 1_000] {
        // Also report the modeled monitor overhead at this period: the
        // paper's reason sampling cannot simply be made finer.
        let overhead = sampling_overhead_frac(SimDuration::from_millis(ms));
        group.bench_with_input(
            BenchmarkId::new(format!("sample_p{:.0}pct_overhead", overhead * 100.0), ms),
            &ms,
            |b, &ms| {
                b.iter(|| {
                    UtilizationSeries::sample(
                        black_box(&cumulative),
                        1,
                        SimDuration::from_millis(ms),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_nstar_estimators(c: &mut Criterion) {
    // The three congestion-point estimators on identical noisy data.
    let n = 8_000;
    let mut loads = Vec::with_capacity(n);
    let mut tputs = Vec::with_capacity(n);
    for i in 0..n {
        let ld = 40.0 * ((i * 2_654_435_761usize) % 1_000) as f64 / 1_000.0 + 0.05;
        let tp = if ld < 9.0 { 420.0 * ld } else { 3_780.0 };
        let wiggle = (((i * 48_271) % 200) as f64 / 200.0 - 0.5) * 0.12;
        loads.push(ld);
        tputs.push(tp * (1.0 + wiggle));
    }
    let cfg = NStarConfig::default();
    let mut group = c.benchmark_group("ablation_nstar_estimators");
    group.bench_function("paper_intervention", |b| {
        b.iter(|| nstar::estimate(black_box(&loads), black_box(&tputs), &cfg));
    });
    group.bench_function("two_segment_lsq", |b| {
        b.iter(|| nstar::estimate_two_segment(black_box(&loads), black_box(&tputs), &cfg));
    });
    group.bench_function("median_bins", |b| {
        b.iter(|| nstar::estimate_median(black_box(&loads), black_box(&tputs), &cfg));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_normalization,
    bench_interval_length,
    bench_reconstruction,
    bench_sampling,
    bench_nstar_estimators
);
criterion_main!(benches);
