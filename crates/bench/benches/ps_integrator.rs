//! Microbenchmarks of the PS integrator hot path: the per-class
//! FIFO-lane/cached-tournament implementation against the heap plus
//! lazy-deletion [`reference::PsIntegrator`], under the hold pattern the
//! simulator drives — every event probes `next_completion`, completions
//! drain through a reusable caller-owned buffer, and arrivals append with
//! a request-class lane hint. A freeze-churn variant breaks lane
//! monotonicity on schedule so the spill-heap path is measured too, not
//! just the monotone append fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgbd_des::ps::reference::PsIntegrator as RefPs;
use fgbd_des::{Dice, JobId, PsIntegrator, SimDuration, SimTime};

/// Concurrent jobs held in service — the order of magnitude a bottleneck
/// tier sees at saturation.
const POP: u64 = 64;
const LANES: usize = 4;

fn demand(dice: &mut Dice) -> f64 {
    dice.uniform_in(0.5, 20.0)
}

fn bench_ps_integrator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_integrator");
    group.throughput(criterion::Throughput::Elements(1));

    group.bench_function("lanes_hold_64", |b| {
        let mut dice = Dice::seed(42);
        let mut ps = PsIntegrator::with_lanes(1_000.0, 2, LANES);
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut buf = Vec::with_capacity(POP as usize);
        for _ in 0..POP {
            ps.insert_lane(
                now,
                JobId(next_id),
                demand(&mut dice),
                (next_id % LANES as u64) as usize,
            );
            next_id += 1;
        }
        b.iter(|| {
            let due = ps
                .next_completion(now)
                .expect("hold population never drains");
            now = due;
            ps.pop_due_into(now, &mut buf);
            for _ in 0..buf.len() {
                ps.insert_lane(
                    now,
                    JobId(next_id),
                    demand(&mut dice),
                    (next_id % LANES as u64) as usize,
                );
                next_id += 1;
            }
            black_box(buf.len());
        });
    });

    group.bench_function("reference_hold_64", |b| {
        let mut dice = Dice::seed(42);
        let mut ps = RefPs::new(1_000.0, 2);
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut buf = Vec::with_capacity(POP as usize);
        for _ in 0..POP {
            ps.insert(now, JobId(next_id), demand(&mut dice));
            next_id += 1;
        }
        b.iter(|| {
            let due = ps
                .next_completion(now)
                .expect("hold population never drains");
            now = due;
            ps.pop_due_into(now, &mut buf);
            for _ in 0..buf.len() {
                ps.insert(now, JobId(next_id), demand(&mut dice));
                next_id += 1;
            }
            black_box(buf.len());
        });
    });

    // The reschedule probe alone: the simulator calls `next_completion`
    // once per event, and most probes change nothing — the lane
    // integrator answers from its cached tournament winner (a field
    // read), the reference from a heap peek plus a liveness hash probe.
    group.bench_function("lanes_probe_64", |b| {
        let mut dice = Dice::seed(42);
        let mut ps = PsIntegrator::with_lanes(1_000.0, 2, LANES);
        for i in 0..POP {
            ps.insert_lane(
                SimTime::ZERO,
                JobId(i),
                demand(&mut dice),
                (i % LANES as u64) as usize,
            );
        }
        let now = SimTime::from_millis(1);
        b.iter(|| black_box(ps.next_completion(now)));
    });

    group.bench_function("reference_probe_64", |b| {
        let mut dice = Dice::seed(42);
        let mut ps = RefPs::new(1_000.0, 2);
        for i in 0..POP {
            ps.insert(SimTime::ZERO, JobId(i), demand(&mut dice));
        }
        let now = SimTime::from_millis(1);
        b.iter(|| black_box(ps.next_completion(now)));
    });

    // GC-shaped churn: a freeze spanning arrivals stalls the attained
    // accumulator, so same-lane appends go non-monotone and spill. This
    // holds the integrator to its worst case instead of the monotone
    // fast path.
    group.bench_function("lanes_hold_freeze_churn", |b| {
        let mut dice = Dice::seed(42);
        let mut ps = PsIntegrator::with_lanes(1_000.0, 2, LANES);
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut buf = Vec::with_capacity(POP as usize);
        let mut tick = 0u64;
        // Extra jobs admitted during freezes; later completions skip
        // reinsertion until the debt is repaid, keeping the population
        // bounded at POP..POP+4 across arbitrarily many iterations.
        let mut debt = 0usize;
        for _ in 0..POP {
            ps.insert_lane(
                now,
                JobId(next_id),
                demand(&mut dice),
                (next_id % LANES as u64) as usize,
            );
            next_id += 1;
        }
        b.iter(|| {
            tick += 1;
            if tick.is_multiple_of(16) && debt == 0 {
                // Freeze across a handful of arrivals, then thaw: the
                // stalled accumulator makes these appends non-monotone.
                ps.set_frozen(now, true);
                for _ in 0..4 {
                    now += SimDuration::from_micros(50);
                    ps.insert_lane(
                        now,
                        JobId(next_id),
                        demand(&mut dice),
                        (next_id % LANES as u64) as usize,
                    );
                    next_id += 1;
                    debt += 1;
                }
                ps.set_frozen(now, false);
            }
            let due = ps
                .next_completion(now)
                .expect("hold population never drains");
            now = due;
            ps.pop_due_into(now, &mut buf);
            let repaid = buf.len().min(debt);
            debt -= repaid;
            for _ in 0..buf.len() - repaid {
                ps.insert_lane(
                    now,
                    JobId(next_id),
                    demand(&mut dice),
                    (next_id % LANES as u64) as usize,
                );
                next_id += 1;
            }
            black_box(buf.len());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ps_integrator);
criterion_main!(benches);
