//! Criterion benchmarks of the streaming span pipeline: batch
//! `SpanSet::extract` over a fully materialized log vs the sharded online
//! extractor fed chunk-by-chunk through the bounded channel
//! (`stream::extract_streamed`). The streamed numbers include the full
//! channel round-trip — chunking, the router scatter, worker join, and the
//! canonical-order merge — so the delta over batch is the pipeline's true
//! overhead (or win, once the producer side overlaps with a real DES run).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgbd_des::{Dice, SimTime};
use fgbd_trace::stream::{self, StreamConfig};
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, SpanSet, TraceLog, TxnId,
};

const CLIENT: NodeId = NodeId(0);

/// A time-ordered request/response soup across three server tiers with up
/// to 96 transactions in flight, each on its own connection — enough
/// concurrency that the per-shard FIFO maps stay warm and the merge has
/// real interleaving to undo.
fn synthetic_log(txns: u64, seed: u64) -> TraceLog {
    let mut nodes = vec![NodeMeta {
        id: CLIENT,
        name: "clients".into(),
        kind: NodeKind::Client,
        tier: None,
    }];
    for (i, name) in ["web-1", "app-1", "db-1"].iter().enumerate() {
        nodes.push(NodeMeta {
            id: NodeId(i as u16 + 1),
            name: (*name).into(),
            kind: NodeKind::Server,
            tier: Some(i as u8),
        });
    }
    let mut dice = Dice::seed(seed);
    let mut log = TraceLog::new(nodes);
    // Open transactions: (txn id — also the conn id — and the server
    // handling it).
    let mut active: Vec<(u64, NodeId)> = Vec::new();
    let mut next = 0u64;
    let mut t = 0u64;
    while next < txns || !active.is_empty() {
        t += 1 + dice.index(3) as u64;
        let at = SimTime::from_micros(t);
        if next < txns && active.len() < 96 && (active.is_empty() || dice.chance(0.5)) {
            let server = NodeId(1 + dice.index(3) as u16);
            log.push(MsgRecord {
                at,
                src: CLIENT,
                dst: server,
                kind: MsgKind::Request,
                conn: ConnId(next as u32),
                class: ClassId((next % 16) as u16),
                bytes: 200,
                truth: Some(TxnId(next)),
            });
            active.push((next, server));
            next += 1;
        } else {
            let i = dice.index(active.len());
            let (id, server) = active.swap_remove(i);
            log.push(MsgRecord {
                at,
                src: server,
                dst: CLIENT,
                kind: MsgKind::Response,
                conn: ConnId(id as u32),
                class: ClassId((id % 16) as u16),
                bytes: 600,
                truth: Some(TxnId(id)),
            });
        }
    }
    log
}

/// Batch extraction vs the streamed pipeline at shard counts 1, 2, 4 —
/// the `stream_extract` manifest stage in miniature. `scripts/bench.sh`
/// folds this group into `BENCH_analysis.json` as `streaming_pipeline/*`.
fn bench_streaming_pipeline(c: &mut Criterion) {
    let log = synthetic_log(100_000, 29);
    let mut group = c.benchmark_group("streaming_pipeline");
    group.throughput(criterion::Throughput::Elements(log.records.len() as u64));
    group.bench_function("batch_extract", |b| {
        b.iter(|| SpanSet::extract(black_box(&log)));
    });
    for shards in [1usize, 2, 4] {
        let cfg =
            StreamConfig::from_values(shards, stream::DEFAULT_CHUNK, stream::DEFAULT_CAPACITY)
                .expect("non-zero shard count");
        group.bench_function(format!("streamed_shards_{shards}"), |b| {
            b.iter(|| stream::extract_streamed(black_box(&log), &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_pipeline);
criterion_main!(benches);
