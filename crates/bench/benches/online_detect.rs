//! Criterion benchmarks of the streaming detector (`fgbd_core::online`):
//! per-record push throughput with and without live-window refits, against
//! the batch detector run over the same materialized capture. The push
//! numbers are the per-record cost a live tap adds to the simulation
//! thread; the batch number is what the offline pipeline pays after the
//! fact for the identical result.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgbd_core::detect::{analyze_server, DetectorConfig};
use fgbd_core::online::{OnlineConfig, OnlineDetector};
use fgbd_core::series::Window;
use fgbd_des::{Dice, SimDuration, SimTime};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, SpanSet, TraceLog,
};

const CLIENT: NodeId = NodeId(0);
const SERVER: NodeId = NodeId(1);
const WORK_UNIT_US: u64 = 700;
const INTERVAL_US: u64 = 50_000;

/// A time-ordered single-server record soup with up to 64 requests in
/// flight across 16 reused connections — enough concurrency to keep the
/// FIFO pairing maps and the interval accumulators warm.
fn synthetic_records(pairs: u64, seed: u64) -> Vec<MsgRecord> {
    let mut dice = Dice::seed(seed);
    let mut recs = Vec::with_capacity(pairs as usize * 2);
    let mut active: Vec<MsgRecord> = Vec::new();
    let mut next = 0u64;
    let mut t = 0u64;
    while next < pairs || !active.is_empty() {
        t += 1 + dice.index(40) as u64;
        let at = SimTime::from_micros(t);
        if next < pairs && active.len() < 64 && (active.is_empty() || dice.chance(0.5)) {
            let req = MsgRecord {
                at,
                src: CLIENT,
                dst: SERVER,
                kind: MsgKind::Request,
                conn: ConnId((next % 16) as u32),
                class: ClassId((next % 4) as u16),
                bytes: 200,
                truth: None,
            };
            recs.push(req);
            active.push(req);
            next += 1;
        } else {
            let i = dice.index(active.len());
            let req = active.swap_remove(i);
            recs.push(MsgRecord {
                at,
                src: SERVER,
                dst: CLIENT,
                kind: MsgKind::Response,
                ..req
            });
        }
    }
    recs.sort_by_key(|r| r.at);
    recs
}

fn services() -> ServiceTimeTable {
    let mut t = ServiceTimeTable::new();
    for class in 0..4 {
        t.insert(
            SERVER,
            ClassId(class),
            SimDuration::from_micros(300 + u64::from(class) * 150),
        );
    }
    t
}

fn online_config(live_window: usize) -> OnlineConfig {
    let mut cfg = OnlineConfig::new(
        SimTime::ZERO,
        SimDuration::from_micros(INTERVAL_US),
        SimDuration::from_micros(WORK_UNIT_US),
    );
    cfg.live_window = live_window;
    cfg
}

/// Streaming push throughput (elements = records) vs the batch detector
/// over the materialized capture. `scripts/bench.sh` folds this group into
/// `BENCH_analysis.json` as `online_detect/*`.
fn bench_online_detect(c: &mut Criterion) {
    let recs = synthetic_records(100_000, 20130708);
    let end = SimTime::from_micros(recs.last().unwrap().at.as_micros() + INTERVAL_US);
    let mut group = c.benchmark_group("online_detect");
    group.throughput(criterion::Throughput::Elements(recs.len() as u64));
    for live_window in [64usize, 1024] {
        group.bench_function(format!("push_window_{live_window}"), |b| {
            b.iter(|| {
                let mut det = OnlineDetector::new(online_config(live_window), services());
                for r in &recs {
                    det.push(black_box(r));
                }
                det.finish(end)
            });
        });
    }
    group.bench_function("push_no_retain", |b| {
        b.iter(|| {
            let mut cfg = online_config(64);
            cfg.retain = false;
            let mut det = OnlineDetector::new(cfg, services());
            for r in &recs {
                det.push(black_box(r));
            }
            det.finish(end)
        });
    });
    group.bench_function("batch_baseline", |b| {
        let nodes = vec![
            NodeMeta {
                id: CLIENT,
                name: "clients".into(),
                kind: NodeKind::Client,
                tier: None,
            },
            NodeMeta {
                id: SERVER,
                name: "server".into(),
                kind: NodeKind::Server,
                tier: Some(0),
            },
        ];
        let mut log = TraceLog::new(nodes);
        for r in &recs {
            log.push(*r);
        }
        let window = Window::new(SimTime::ZERO, end, SimDuration::from_micros(INTERVAL_US));
        let dcfg = DetectorConfig::default();
        b.iter(|| {
            let spans = SpanSet::extract(black_box(&log));
            analyze_server(
                spans.server(SERVER),
                SERVER,
                window,
                &services(),
                SimDuration::from_micros(WORK_UNIT_US),
                &dcfg,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_online_detect);
criterion_main!(benches);
