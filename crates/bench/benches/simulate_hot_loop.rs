//! Per-event throughput of the single-core simulate hot loop — the
//! fused-pop dispatch, slab visit arena, packed segment plans, and
//! completion-token rescheduling measured together, end to end, as events
//! per second. The three scenarios pick the schedules that stress each
//! rework: the baseline covers the common path, SpeedStep covers DVFS
//! rescheduling (the exact-match completion-token reuse), and serial GC
//! covers freeze churn (stale tokens plus PS spill inserts).
//!
//! `simulator.rs` benches wall time per *run* across workload levels; this
//! group normalizes by event count so a change to per-event cost is
//! visible regardless of how many events a scenario generates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgbd_des::{SimDuration, SimTime, Simulation};
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::system::{Ev, NTierSystem};

const USERS: u32 = 1_000;

fn config(jdk: Jdk, speedstep: bool) -> SystemConfig {
    let mut cfg = SystemConfig::paper_1l2s1l2s(USERS, jdk, speedstep, 42);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.duration = SimDuration::from_secs(4);
    cfg.capture = false;
    cfg
}

/// Runs one scenario to its horizon, returning events dispatched.
fn run(jdk: Jdk, speedstep: bool) -> u64 {
    let cfg = config(jdk, speedstep);
    let horizon = SimTime::ZERO + cfg.warmup + cfg.duration;
    let mut sim = Simulation::new(NTierSystem::new(cfg));
    sim.prime(SimTime::ZERO, Ev::Boot);
    sim.run_until(horizon);
    sim.events_processed()
}

fn bench_simulate_hot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_hot_loop");
    group.sample_size(10);
    for (name, jdk, speedstep) in [
        ("baseline_jdk16", Jdk::Jdk16, false),
        ("speedstep_dvfs", Jdk::Jdk16, true),
        ("serial_gc_jdk15", Jdk::Jdk15, false),
    ] {
        let events = run(jdk, speedstep);
        group.throughput(Throughput::Elements(events));
        group.bench_function(name, |b| {
            b.iter(|| black_box(run(jdk, speedstep)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate_hot_loop);
criterion_main!(benches);
