//! Criterion benchmarks of the zero-copy capture path: the lazy chunk
//! cursor against the batch `FGBDCAP2` reader on the same 200k-record
//! fixture, isolating the two pushdown wins — column projection (skip
//! the `bytes` and ground-truth columns detection never reads) and
//! time-range chunk pruning — plus the full mmap-backed pass the
//! `FGBD_CAPTURE_MMAP=1` pipeline runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgbd_des::SimTime;
use fgbd_trace::capture2::ChunkCursor;
use fgbd_trace::mmapio::Mapping;
use fgbd_trace::{
    read_capture2_parallel, write_capture2, ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind,
    NodeMeta, Projection, TraceLog, TxnId,
};

/// The `capture_format` 200k-record fixture, rebuilt here so the two
/// groups stay independently runnable.
fn fixture() -> TraceLog {
    let mut log = TraceLog::new(vec![
        NodeMeta {
            id: NodeId(0),
            name: "clients".into(),
            kind: NodeKind::Client,
            tier: None,
        },
        NodeMeta {
            id: NodeId(1),
            name: "web-1".into(),
            kind: NodeKind::Server,
            tier: Some(0),
        },
    ]);
    for i in 0..200_000u64 {
        log.push(MsgRecord {
            at: SimTime::from_micros(i * 3),
            src: NodeId((i % 2) as u16),
            dst: NodeId(((i + 1) % 2) as u16),
            kind: if i % 2 == 0 {
                MsgKind::Request
            } else {
                MsgKind::Response
            },
            conn: ConnId((i % 512) as u32),
            class: ClassId((i % 24) as u16),
            bytes: 512,
            truth: Some(TxnId(i / 2)),
        });
    }
    log
}

/// Drains a cursor, returning the total record count (the consumer work
/// the analysis pipeline would do, minus the detector).
fn drain(mut cursor: ChunkCursor<'_>) -> usize {
    let mut total = 0;
    let mut buf = Vec::new();
    while cursor.next_chunk(&mut buf).expect("decode chunk") {
        total += buf.len();
    }
    total
}

fn bench_cursor(c: &mut Criterion) {
    let log = fixture();
    let mut chunked = Vec::new();
    write_capture2(&mut chunked, &log).expect("encode chunked");
    let path =
        std::env::temp_dir().join(format!("fgbd_bench_cursor_{}.fgbdcap", std::process::id()));
    std::fs::write(&path, &chunked).expect("write capture file");
    let map = Mapping::open(&path).expect("map capture file");

    let mut group = c.benchmark_group("capture_cursor");
    group.throughput(criterion::Throughput::Bytes(chunked.len() as u64));
    // Reference: the batch reader materializing the whole TraceLog.
    group.bench_function("batch_read_200k", |b| {
        b.iter(|| read_capture2_parallel(black_box(chunked.as_slice()), 1).expect("decode"));
    });
    // The cursor decoding every column — same work, chunk at a time.
    group.bench_function("cursor_full_200k", |b| {
        b.iter(|| drain(ChunkCursor::new(black_box(chunked.as_slice())).expect("open")));
    });
    // Column projection: bytes + truth skipped, the detection profile.
    group.bench_function("cursor_projected_200k", |b| {
        b.iter(|| {
            drain(
                ChunkCursor::new(black_box(chunked.as_slice()))
                    .expect("open")
                    .with_projection(Projection::DETECT),
            )
        });
    });
    // Time-range pushdown: decode only the middle tenth of the capture —
    // whole-chunk pruning via the footer index, no column touched in
    // pruned chunks.
    let (lo, hi) = (
        SimTime::from_micros(200_000 * 3 * 45 / 100),
        SimTime::from_micros(200_000 * 3 * 55 / 100),
    );
    group.bench_function("cursor_projected_middle_tenth", |b| {
        b.iter(|| {
            drain(
                ChunkCursor::new(black_box(chunked.as_slice()))
                    .expect("open")
                    .with_projection(Projection::DETECT)
                    .with_time_range(lo, hi),
            )
        });
    });
    // The real zero-copy read: projected cursor over the mmap'd file.
    group.bench_function("mmap_cursor_projected_200k", |b| {
        b.iter(|| {
            drain(
                ChunkCursor::new(black_box(&map))
                    .expect("open")
                    .with_projection(Projection::DETECT),
            )
        });
    });
    group.finish();
    drop(map);
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_cursor);
criterion_main!(benches);
