//! Criterion benchmarks of the n-tier simulator itself: events per second
//! across workload levels and transient-event models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fgbd_bench::short_run;
use fgbd_des::{SimDuration, SimTime, Simulation};
use fgbd_ntier::config::{Jdk, SystemConfig};
use fgbd_ntier::system::{Ev, NTierSystem};

fn events_for(users: u32, jdk: Jdk, speedstep: bool) -> u64 {
    let mut cfg = SystemConfig::paper_1l2s1l2s(users, jdk, speedstep, 42);
    cfg.warmup = SimDuration::from_secs(2);
    cfg.duration = SimDuration::from_secs(10);
    cfg.capture = false;
    let horizon = SimTime::ZERO + cfg.warmup + cfg.duration;
    let mut sim = Simulation::new(NTierSystem::new(cfg));
    sim.prime(SimTime::ZERO, Ev::Boot);
    sim.run_until(horizon);
    sim.events_processed()
}

fn bench_event_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_event_rate");
    group.sample_size(10);
    for users in [500u32, 2_000, 4_000] {
        let events = events_for(users, Jdk::Jdk16, false);
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("wl", users), &users, |b, &users| {
            b.iter(|| black_box(short_run(users, Jdk::Jdk16, false, false)));
        });
    }
    group.finish();
}

fn bench_transient_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_models");
    group.sample_size(10);
    group.bench_function("baseline_jdk16", |b| {
        b.iter(|| black_box(short_run(2_000, Jdk::Jdk16, false, false)));
    });
    group.bench_function("with_serial_gc", |b| {
        b.iter(|| black_box(short_run(2_000, Jdk::Jdk15, false, false)));
    });
    group.bench_function("with_speedstep", |b| {
        b.iter(|| black_box(short_run(2_000, Jdk::Jdk16, true, false)));
    });
    group.bench_function("with_capture", |b| {
        b.iter(|| black_box(short_run(2_000, Jdk::Jdk16, false, true)));
    });
    group.finish();
}

criterion_group!(benches, bench_event_rate, bench_transient_models);
criterion_main!(benches);
