//! Criterion benchmarks of the fine-grained analysis pipeline: how fast can
//! the detector chew through a capture? (The paper's method must keep up
//! with production traces; SysViz processed multi-tier traffic online.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fgbd_core::detect::{analyze_server, DetectorConfig};
use fgbd_core::interval::{auto_interval, IntervalSelectConfig};
use fgbd_core::nstar::{self, NStarConfig};
use fgbd_core::plateau::{find_plateaus, PlateauConfig};
use fgbd_core::series::{reference, LoadSeries, SeriesSet, ThroughputSeries, Window};
use fgbd_core::stats;
use fgbd_des::{Dice, SimDuration, SimTime};
use fgbd_ntier::Jdk;
use fgbd_repro::pipeline::{Analysis, Calibration};
use fgbd_trace::capture::{read_capture, write_capture};
use fgbd_trace::reconstruct::{reference as rec_reference, Heuristic, Reconstruction};
use fgbd_trace::servicetime::ServiceTimeTable;
use fgbd_trace::span::reference as span_reference;
use fgbd_trace::{read_capture2_parallel, write_capture2};
use fgbd_trace::{
    ClassId, ConnId, MsgKind, MsgRecord, NodeId, NodeKind, NodeMeta, Span, SpanSet, TraceLog, TxnId,
};

/// Builds a synthetic 60-second span log at roughly `rate` requests/s with
/// bursty congestion episodes.
fn synthetic_spans(rate: u64, seed: u64) -> Vec<Span> {
    let mut dice = Dice::seed(seed);
    let mut spans = Vec::new();
    let horizon_us = 60_000_000u64;
    let mut t = 0u64;
    while t < horizon_us {
        // Bursty arrivals: occasionally pack 30 requests together.
        let batch = if dice.chance(0.02) { 30 } else { 1 };
        for _ in 0..batch {
            let service_us = (dice.exp(1_500.0)) as u64 + 100;
            spans.push(Span {
                server: NodeId(1),
                class: ClassId(dice.index(8) as u16),
                arrival: SimTime::from_micros(t),
                departure: SimTime::from_micros(t + service_us + dice.index(5_000) as u64),
                conn: ConnId(0),
                truth: None,
            });
        }
        t += 1_000_000 / rate;
    }
    spans
}

fn services() -> ServiceTimeTable {
    let mut t = ServiceTimeTable::new();
    for c in 0..8u16 {
        t.insert(
            NodeId(1),
            ClassId(c),
            SimDuration::from_micros(800 + 300 * u64::from(c)),
        );
    }
    t
}

fn bench_series(c: &mut Criterion) {
    let spans = synthetic_spans(2_000, 7);
    let window = Window::new(
        SimTime::ZERO,
        SimTime::from_secs(60),
        SimDuration::from_millis(50),
    );
    let svc = services();
    c.bench_function("load_series_120k_spans", |b| {
        b.iter(|| LoadSeries::from_spans(black_box(&spans), window));
    });
    c.bench_function("throughput_series_120k_spans", |b| {
        b.iter(|| {
            ThroughputSeries::from_spans(
                black_box(&spans),
                window,
                &svc,
                SimDuration::from_micros(400),
            )
        });
    });
}

/// 60 s of ~1,000 req/s background traffic plus stop-the-world freezes:
/// every second a pause parks ~200 in-flight requests for ~3 s. Each parked
/// span crosses ~300 intervals of a 10 ms grid, so the naive per-interval
/// walk pays `residence / interval` per span while the sweep-line builder
/// pays O(1) — the workload where the asymptotic gap shows.
fn gc_freeze_spans(seed: u64) -> Vec<Span> {
    let mut dice = Dice::seed(seed);
    let mut spans = Vec::new();
    let horizon_us = 60_000_000u64;
    let mut t = 0u64;
    let mut next_freeze = 1_000_000u64;
    while t < horizon_us {
        if t >= next_freeze {
            for _ in 0..200 {
                let arrival = t + dice.index(50_000) as u64;
                let residence = 2_500_000 + dice.index(1_000_000) as u64;
                spans.push(Span {
                    server: NodeId(1),
                    class: ClassId(dice.index(8) as u16),
                    arrival: SimTime::from_micros(arrival),
                    departure: SimTime::from_micros(arrival + residence),
                    conn: ConnId(0),
                    truth: None,
                });
            }
            next_freeze += 1_000_000;
        }
        let service_us = (dice.exp(1_500.0)) as u64 + 100;
        spans.push(Span {
            server: NodeId(1),
            class: ClassId(dice.index(8) as u16),
            arrival: SimTime::from_micros(t),
            departure: SimTime::from_micros(t + service_us),
            conn: ConnId(0),
            truth: None,
        });
        t += 1_000;
    }
    spans
}

/// Sweep-line vs the naive per-interval reference on the finest paper grid
/// (10 ms over 60 s = 6,000 intervals) under the GC-freeze workload, plus
/// the fused one-pass `SeriesSet` against two separate builds.
fn bench_sweep_vs_reference(c: &mut Criterion) {
    let spans = gc_freeze_spans(17);
    let window = Window::new(
        SimTime::ZERO,
        SimTime::from_secs(60),
        SimDuration::from_millis(10),
    );
    let svc = services();
    let wu = SimDuration::from_micros(400);
    let mut group = c.benchmark_group("series_10ms_gc_freeze");
    group.bench_function("sweep_load", |b| {
        b.iter(|| LoadSeries::from_spans(black_box(&spans), window));
    });
    group.bench_function("reference_load", |b| {
        b.iter(|| reference::load_series(black_box(&spans), window));
    });
    group.bench_function("sweep_tput", |b| {
        b.iter(|| ThroughputSeries::from_spans(black_box(&spans), window, &svc, wu));
    });
    group.bench_function("reference_tput", |b| {
        b.iter(|| reference::throughput_series(black_box(&spans), window, &svc, wu));
    });
    group.bench_function("fused_series_set", |b| {
        b.iter(|| SeriesSet::from_spans(black_box(&spans), window, &svc, wu));
    });
    group.bench_function("separate_load_plus_tput", |b| {
        b.iter(|| {
            (
                LoadSeries::from_spans(black_box(&spans), window),
                ThroughputSeries::from_spans(black_box(&spans), window, &svc, wu),
            )
        });
    });
    group.finish();
}

/// The old interval-selection inner loop: build every candidate grid from
/// the spans directly, then score it exactly like `auto_interval` does.
/// Kept here as the baseline the coarsening path is measured against.
fn auto_interval_rebuild_baseline(
    spans: &[Span],
    start: SimTime,
    end: SimTime,
    svc: &ServiceTimeTable,
    wu: SimDuration,
    cfg: &IntervalSelectConfig,
) -> Option<SimDuration> {
    let mut finest_peak: Option<f64> = None;
    let mut best: Option<(f64, f64, SimDuration)> = None;
    let mut chosen: Option<SimDuration> = None;
    for &interval in &cfg.candidates {
        let window = Window::new(start, end, interval);
        if window.len() < 20 {
            continue;
        }
        let set = SeriesSet::from_spans(spans, window, svc, wu);
        let (load, tput) = (set.load(), set.tput());
        let peak = load.values().iter().copied().fold(0.0, f64::max);
        if finest_peak.is_none() {
            finest_peak = Some(peak);
        }
        let retention = match finest_peak {
            Some(p) if p > 0.0 => peak / p,
            _ => 1.0,
        };
        let mut order: Vec<usize> = (0..load.len()).collect();
        order.sort_by(|&a, &b| load.get(b).partial_cmp(&load.get(a)).expect("finite"));
        let busy_n = ((load.len() as f64 * cfg.busy_fraction).ceil() as usize).max(5);
        let busy_tputs: Vec<f64> = order
            .iter()
            .take(busy_n)
            .map(|&i| tput.unit_rate(i))
            .filter(|&t| t > 0.0)
            .collect();
        if busy_tputs.len() < 5 {
            continue;
        }
        let noise = stats::std_dev(&busy_tputs) / stats::mean(&busy_tputs).max(1e-9);
        if chosen.is_none() && noise <= cfg.max_noise {
            chosen = Some(interval);
        }
        let balance = noise + (1.0 - retention);
        if best.is_none_or(|(b, _, _)| balance < b) {
            best = Some((balance, noise, interval));
        }
    }
    chosen.or(best.map(|(_, _, i)| i))
}

/// Interval selection over the default 7-candidate ladder: the shipping
/// `auto_interval` (one fine build + exact coarsening) against the
/// rebuild-every-candidate baseline.
fn bench_interval_selection(c: &mut Criterion) {
    let spans = gc_freeze_spans(19);
    let svc = services();
    let wu = SimDuration::from_micros(400);
    let cfg = IntervalSelectConfig::default();
    let (start, end) = (SimTime::ZERO, SimTime::from_secs(60));
    let mut group = c.benchmark_group("interval_selection");
    group.sample_size(20);
    group.bench_function("auto_interval_coarsen", |b| {
        b.iter(|| auto_interval(black_box(&spans), start, end, &svc, wu, &cfg));
    });
    group.bench_function("rebuild_each_candidate", |b| {
        b.iter(|| auto_interval_rebuild_baseline(black_box(&spans), start, end, &svc, wu, &cfg));
    });
    group.finish();
}

fn bench_nstar(c: &mut Criterion) {
    // Pre-computed (load, tput) samples with a knee.
    let n = 10_000;
    let mut loads = Vec::with_capacity(n);
    let mut tputs = Vec::with_capacity(n);
    for i in 0..n {
        let ld = 50.0 * ((i * 2_654_435_761usize) % 1_000) as f64 / 1_000.0 + 0.05;
        let tp = if ld < 12.0 { 300.0 * ld } else { 3_600.0 };
        loads.push(ld);
        tputs.push(tp * (1.0 + 0.05 * (((i * 40_503) % 100) as f64 / 100.0 - 0.5)));
    }
    c.bench_function("nstar_estimate_10k_samples", |b| {
        b.iter(|| {
            nstar::estimate(
                black_box(&loads),
                black_box(&tputs),
                &NStarConfig::default(),
            )
        });
    });
}

fn bench_detector(c: &mut Criterion) {
    let spans = synthetic_spans(2_000, 11);
    let window = Window::new(
        SimTime::ZERO,
        SimTime::from_secs(60),
        SimDuration::from_millis(50),
    );
    let svc = services();
    c.bench_function("full_detector_pipeline_60s_capture", |b| {
        b.iter(|| {
            analyze_server(
                black_box(&spans),
                NodeId(1),
                window,
                &svc,
                SimDuration::from_micros(400),
                &DetectorConfig::default(),
            )
        });
    });
}

fn bench_plateau(c: &mut Criterion) {
    let mut dice = Dice::seed(13);
    let values: Vec<f64> = (0..3_000)
        .map(|_| {
            let level = [3_700.0, 5_000.0, 7_000.0][dice.index(3)];
            level + dice.normal(0.0, 120.0)
        })
        .collect();
    c.bench_function("plateau_modes_3k_samples", |b| {
        b.iter_batched(
            || values.clone(),
            |v| find_plateaus(black_box(&v), &PlateauConfig::default()),
            BatchSize::SmallInput,
        );
    });
}

fn bench_capture(c: &mut Criterion) {
    // A 200k-record synthetic capture (~6 MB on disk).
    let mut log = TraceLog::new(vec![
        NodeMeta {
            id: NodeId(0),
            name: "clients".into(),
            kind: NodeKind::Client,
            tier: None,
        },
        NodeMeta {
            id: NodeId(1),
            name: "web-1".into(),
            kind: NodeKind::Server,
            tier: Some(0),
        },
    ]);
    for i in 0..200_000u64 {
        log.push(MsgRecord {
            at: SimTime::from_micros(i * 3),
            src: NodeId((i % 2) as u16),
            dst: NodeId(((i + 1) % 2) as u16),
            kind: if i % 2 == 0 {
                MsgKind::Request
            } else {
                MsgKind::Response
            },
            conn: ConnId((i % 512) as u32),
            class: ClassId((i % 24) as u16),
            bytes: 512,
            truth: Some(TxnId(i / 2)),
        });
    }
    let mut encoded = Vec::new();
    write_capture(&mut encoded, &log).expect("encode");
    let mut group = c.benchmark_group("capture_format");
    group.throughput(criterion::Throughput::Bytes(encoded.len() as u64));
    group.bench_function("write_200k_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_capture(&mut buf, black_box(&log)).expect("encode");
            buf
        });
    });
    group.bench_function("read_200k_records", |b| {
        b.iter(|| read_capture(black_box(encoded.as_slice())).expect("decode"));
    });

    // The chunked columnar format on the same 200k-record fixture. The
    // acceptance targets live here: parallel read ≥3x the flat sequential
    // read at 4 threads (on multi-core hosts) and ≤0.7x the on-disk bytes.
    let mut chunked = Vec::new();
    write_capture2(&mut chunked, &log).expect("encode chunked");
    println!(
        "capture_format: flat {} B, chunked {} B ({:.2}x)",
        encoded.len(),
        chunked.len(),
        chunked.len() as f64 / encoded.len() as f64
    );
    assert!(
        chunked.len() * 10 <= encoded.len() * 7,
        "chunked capture must stay ≤0.7x the flat size"
    );
    group.bench_function("chunked_write_200k_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(chunked.len());
            write_capture2(&mut buf, black_box(&log)).expect("encode chunked");
            buf
        });
    });
    group.bench_function("chunked_read_200k_records_t1", |b| {
        b.iter(|| read_capture2_parallel(black_box(chunked.as_slice()), 1).expect("decode"));
    });
    group.bench_function("chunked_read_200k_records_t4", |b| {
        b.iter(|| read_capture2_parallel(black_box(chunked.as_slice()), 4).expect("decode"));
    });
    group.finish();
}

/// A high-concurrency, ambiguity-heavy capture: up to 64 transactions in
/// flight on one web server, all of the *same class*, each issuing several
/// app calls at random interleavings. Nearly every downstream call has many
/// unblocked same-class candidate parents — the worst case for parent
/// attribution, and the workload where the dense-index fast path's
/// per-record cost dominates.
fn ambiguous_log(txns: u64, seed: u64) -> TraceLog {
    const CLIENT: NodeId = NodeId(0);
    const WEB: NodeId = NodeId(1);
    const APP: NodeId = NodeId(2);
    let nodes = vec![
        NodeMeta {
            id: CLIENT,
            name: "clients".into(),
            kind: NodeKind::Client,
            tier: None,
        },
        NodeMeta {
            id: WEB,
            name: "web-1".into(),
            kind: NodeKind::Server,
            tier: Some(0),
        },
        NodeMeta {
            id: APP,
            name: "app-1".into(),
            kind: NodeKind::Server,
            tier: Some(1),
        },
    ];
    let mut dice = Dice::seed(seed);
    let mut log = TraceLog::new(nodes);
    // Per active txn: (id, calls remaining, waiting-on-response flag,
    // current call conn).
    let mut active: Vec<(u64, u32, bool, u32)> = Vec::new();
    let mut next_txn = 0u64;
    let mut t = 0u64;
    while next_txn < txns || !active.is_empty() {
        t += 1 + dice.index(4) as u64;
        let at = SimTime::from_micros(t);
        if next_txn < txns && (active.len() < 64 && (active.is_empty() || dice.chance(0.4))) {
            let id = next_txn;
            next_txn += 1;
            log.push(MsgRecord {
                at,
                src: CLIENT,
                dst: WEB,
                kind: MsgKind::Request,
                conn: ConnId(id as u32),
                class: ClassId(0),
                bytes: 100,
                truth: Some(TxnId(id)),
            });
            active.push((id, 2 + dice.index(4) as u32, false, 0));
            continue;
        }
        let i = dice.index(active.len());
        let (id, calls_left, waiting, conn) = active[i];
        if waiting {
            log.push(MsgRecord {
                at,
                src: APP,
                dst: WEB,
                kind: MsgKind::Response,
                conn: ConnId(conn),
                class: ClassId(0),
                bytes: 400,
                truth: Some(TxnId(id)),
            });
            active[i] = (id, calls_left - 1, false, 0);
        } else if calls_left > 0 {
            let cc = 1_000_000 + (id * 16 + u64::from(calls_left)) as u32;
            log.push(MsgRecord {
                at,
                src: WEB,
                dst: APP,
                kind: MsgKind::Request,
                conn: ConnId(cc),
                class: ClassId(0),
                bytes: 200,
                truth: Some(TxnId(id)),
            });
            active[i] = (id, calls_left, true, cc);
        } else {
            log.push(MsgRecord {
                at,
                src: WEB,
                dst: CLIENT,
                kind: MsgKind::Response,
                conn: ConnId(id as u32),
                class: ClassId(0),
                bytes: 800,
                truth: Some(TxnId(id)),
            });
            active.swap_remove(i);
        }
    }
    log
}

/// Dense-index fast path vs the `HashMap`-keyed reference on the
/// high-concurrency ambiguity-heavy workload, for the default heuristic and
/// the profile-guided one (which additionally exercises the learned fan-out
/// table).
fn bench_reconstruction(c: &mut Criterion) {
    let log = ambiguous_log(10_000, 23);
    let mut group = c.benchmark_group("reconstruction");
    group.throughput(criterion::Throughput::Elements(log.records.len() as u64));
    group.bench_function("fast_longest_quiescent", |b| {
        b.iter(|| Reconstruction::run(black_box(&log), Heuristic::LongestQuiescent));
    });
    group.bench_function("reference_longest_quiescent", |b| {
        b.iter(|| rec_reference::run(black_box(&log), Heuristic::LongestQuiescent));
    });
    group.bench_function("fast_profile_guided", |b| {
        b.iter(|| Reconstruction::run(black_box(&log), Heuristic::ProfileGuided));
    });
    group.bench_function("reference_profile_guided", |b| {
        b.iter(|| rec_reference::run(black_box(&log), Heuristic::ProfileGuided));
    });
    group.finish();
}

/// Dense-index span extraction vs the `HashMap`-keyed reference on the
/// high-concurrency workload — the `extract_spans` manifest stage in
/// miniature.
fn bench_extract_spans(c: &mut Criterion) {
    let log = ambiguous_log(10_000, 23);
    let mut group = c.benchmark_group("extract_spans");
    group.throughput(criterion::Throughput::Elements(log.records.len() as u64));
    group.bench_function("fast", |b| {
        b.iter(|| SpanSet::extract(black_box(&log)));
    });
    group.bench_function("reference", |b| {
        b.iter(|| span_reference::extract(black_box(&log)));
    });
    group.finish();
}

/// End-to-end pipeline at benchmark scale: simulate the paper topology,
/// reconstruct the capture, calibrate service times, and run the detector
/// over every server — the unit of work every sweep point and figure driver
/// repeats.
fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("simulate_reconstruct_calibrate_detect", |b| {
        b.iter(|| {
            let run = fgbd_bench::short_run(150, Jdk::Jdk16, false, true);
            let cal = Calibration::from_run(&run);
            let analysis = Analysis::new(run, cal);
            let window = analysis.window(SimDuration::from_millis(50));
            analysis.report_all(window, &DetectorConfig::default())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_series,
    bench_sweep_vs_reference,
    bench_interval_selection,
    bench_nstar,
    bench_detector,
    bench_plateau,
    bench_capture,
    bench_reconstruction,
    bench_extract_spans,
    bench_pipeline
);
criterion_main!(benches);
